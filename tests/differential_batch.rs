//! Differential tests for the indexes migrated onto the SoA batch kernel:
//! the batched/sink paths must return id-sets identical to the seed scalar
//! reference paths on random *and* degenerate datasets.
//!
//! Reference paths under test:
//! * `MultiGrid::range_seed_reference` — per-level scalar grid path
//!   (raw cell dumps, sort + dedup, per-candidate filter-and-refine);
//! * `CrTree::range_scalar_reference` — per-child dequantize + scalar test;
//! * `Lsh::knn_scalar_reference` — exact-score-every-candidate;
//! * `UniformGrid::knn_scalar_reference` — unbatched expanding-ring scoring;
//! * KD-Tree / linear scan sink paths against the scan ground truth.

use simspatial::prelude::*;

fn sorted(mut v: Vec<ElementId>) -> Vec<ElementId> {
    v.sort_unstable();
    v
}

/// Mixed-size random soup: mostly small spheres plus some large ones.
fn mixed(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(2654435761);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let r = if i % 31 == 0 { 5.0 } else { 0.3 };
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
        })
        .collect()
}

/// Degenerate datasets: empty, a single point, all elements coincident,
/// and a line of touching spheres.
fn degenerate_sets() -> Vec<Vec<Element>> {
    let coincident: Vec<Element> = (0..64)
        .map(|i| {
            Element::new(
                i,
                Shape::Sphere(Sphere::new(Point3::new(5.0, 5.0, 5.0), 0.25)),
            )
        })
        .collect();
    let line: Vec<Element> = (0..40)
        .map(|i| {
            Element::new(
                i,
                Shape::Sphere(Sphere::new(Point3::new(i as f32 * 0.5, 0.0, 0.0), 0.25)),
            )
        })
        .collect();
    vec![
        Vec::new(),
        vec![Element::new(
            0,
            Shape::Sphere(Sphere::new(Point3::ORIGIN, 0.0)),
        )],
        coincident,
        line,
    ]
}

fn queries() -> Vec<Aabb> {
    let mut qs: Vec<Aabb> = (0..12)
        .map(|i| {
            let c = Point3::new((i * 7) as f32, (i * 6) as f32, (i * 5) as f32);
            Aabb::new(c, Point3::new(c.x + 13.0, c.y + 9.0, c.z + 11.0))
        })
        .collect();
    // Degenerate queries: a point box and an everything box.
    qs.push(Aabb::from_point(Point3::new(5.0, 5.0, 5.0)));
    qs.push(Aabb::new(
        Point3::new(-1e4, -1e4, -1e4),
        Point3::new(1e4, 1e4, 1e4),
    ));
    qs
}

fn all_datasets() -> Vec<Vec<Element>> {
    let mut sets = degenerate_sets();
    sets.push(mixed(2500, 0));
    sets.push(mixed(900, 0xBEEF));
    sets
}

#[test]
fn multigrid_batched_equals_seed_reference() {
    for data in all_datasets() {
        let mg = MultiGrid::build(&data, MultiGridConfig::auto(&data));
        for q in queries() {
            let a = sorted(mg.range(&data, &q));
            let b = sorted(mg.range_seed_reference(&data, &q));
            assert_eq!(a, b, "multigrid diverged on {q:?} (n={})", data.len());
        }
    }
}

#[test]
fn crtree_batched_equals_seed_reference() {
    for data in all_datasets() {
        let cr = CrTree::build(&data, CrTreeConfig::default());
        for q in queries() {
            let a = sorted(cr.range(&data, &q));
            let b = sorted(cr.range_scalar_reference(&data, &q));
            assert_eq!(a, b, "crtree diverged on {q:?} (n={})", data.len());
        }
    }
}

#[test]
fn lsh_deferred_scoring_equals_seed_reference() {
    for data in all_datasets() {
        let lsh = Lsh::build(&data, LshConfig::auto(&data));
        for i in 0..10 {
            let p = Point3::new((i * 11) as f32, (i * 9) as f32, (i * 7) as f32);
            for k in [1usize, 5, 17] {
                let a = lsh.knn(&data, &p, k);
                let b = lsh.knn_scalar_reference(&data, &p, k);
                assert_eq!(a, b, "lsh diverged at {p:?} k={k} (n={})", data.len());
            }
        }
    }
}

#[test]
fn grid_batched_knn_equals_seed_reference() {
    for data in all_datasets() {
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let cfg = GridConfig::with_cell_side(GridConfig::auto(&data).cell_side, placement);
            let grid = UniformGrid::build(&data, cfg);
            for i in 0..8 {
                let p = Point3::new((i * 13) as f32, (i * 11) as f32, (i * 7) as f32);
                for k in [1usize, 6] {
                    let a = grid.knn(&data, &p, k);
                    let b = grid.knn_scalar_reference(&data, &p, k);
                    assert_eq!(
                        a,
                        b,
                        "grid knn diverged at {p:?} k={k} {placement:?} (n={})",
                        data.len()
                    );
                }
            }
        }
    }
}

#[test]
fn kdtree_and_scan_sink_paths_match_ground_truth() {
    for data in all_datasets() {
        let kd = KdTree::build(&data);
        let scan = LinearScan::build(&data);
        let mut engine = QueryEngine::new();
        let mut results = BatchResults::new();
        let qs = queries();
        engine.range_collect(&kd, &data, &qs, &mut results);
        for (qi, q) in qs.iter().enumerate() {
            let truth = sorted(scan.range(&data, q));
            assert_eq!(
                sorted(results.query_results(qi).to_vec()),
                truth,
                "kdtree sink path diverged on {q:?} (n={})",
                data.len()
            );
        }
        // The scan's one-pass batched plan against its own sequential path.
        engine.range_collect(&scan, &data, &qs, &mut results);
        for (qi, q) in qs.iter().enumerate() {
            assert_eq!(
                sorted(results.query_results(qi).to_vec()),
                sorted(scan.range(&data, q)),
                "scan one-pass plan diverged on {q:?} (n={})",
                data.len()
            );
        }
    }
}
