//! Protocol robustness: hostile and broken clients must fail **typed**
//! (a `Fatal` frame naming the violation), must never wedge the server,
//! and must never leak a ticket — every request the server admitted
//! completes, even when its connection is already gone.

use simspatial::prelude::*;
use simspatial_net::wire::{self, FatalCode, ServerMsg};
use simspatial_net::RequestError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

fn tiny_service() -> SpatialService {
    let data: Vec<Element> = (0..200)
        .map(|i| {
            let x = (i % 50) as f32;
            Element::new(
                i,
                Shape::Sphere(Sphere::new(Point3::new(x, x * 0.5, 1.0), 0.5)),
            )
        })
        .collect();
    let backend = EngineBackend::build(data, |d| UniformGrid::build(d, GridConfig::auto(d)));
    SpatialService::spawn(backend, ServiceConfig::default())
}

fn writable_service() -> SpatialService {
    let data: Vec<Element> = (0..200)
        .map(|i| {
            let x = (i % 50) as f32;
            Element::new(
                i,
                Shape::Sphere(Sphere::new(Point3::new(x, x * 0.5, 1.0), 0.5)),
            )
        })
        .collect();
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let backend = ShardedBackend::spawn(ShardedEngine::build(&data, 2, build).with_rebuild(build));
    SpatialService::spawn(backend, ServiceConfig::default())
}

struct Raw {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    stream: TcpStream,
}

impl Raw {
    fn connect(addr: std::net::SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Raw {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream.try_clone().unwrap()),
            stream,
        }
    }

    fn hello(mut self, tenant: &str) -> Raw {
        let mut buf = Vec::new();
        wire::encode_hello(&mut buf, tenant);
        self.send(&buf);
        match self.recv() {
            ServerMsg::HelloAck { .. } => self,
            other => panic!("handshake failed: {other:?}"),
        }
    }

    fn send(&mut self, payload: &[u8]) {
        wire::write_frame(&mut self.writer, payload).unwrap();
        self.writer.flush().unwrap();
    }

    /// Ships raw bytes without framing — for forging broken frames.
    fn send_bytes(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> ServerMsg {
        let mut frame = Vec::new();
        assert!(
            wire::read_frame(&mut self.reader, 64 << 20, &mut frame).expect("readable"),
            "server closed without the expected frame"
        );
        wire::decode_server_msg(&frame).expect("decodable")
    }

    /// Asserts the server answers with `Fatal { code }` then closes.
    fn expect_fatal(mut self, code: FatalCode) {
        match self.recv() {
            ServerMsg::Fatal { code: got, .. } => {
                assert_eq!(got, code, "wrong fatal code");
            }
            other => panic!("expected Fatal({code:?}), got {other:?}"),
        }
        // The connection must be closed afterwards (EOF, not a hang).
        let mut rest = Vec::new();
        assert_eq!(self.reader.read_to_end(&mut rest).unwrap_or(0), 0);
    }
}

fn range_req(corr: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::encode_request(
        &mut buf,
        corr,
        None,
        &Request::Range(vec![Aabb::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(60.0, 60.0, 60.0),
        )]),
    );
    buf
}

#[test]
fn malformed_handshakes_fail_typed() {
    let server = NetServer::bind(tiny_service(), "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();

    // Bad magic.
    let mut conn = Raw::connect(addr);
    let mut hello = Vec::new();
    wire::encode_hello(&mut hello, "t");
    hello[1] ^= 0xFF;
    conn.send(&hello);
    conn.expect_fatal(FatalCode::BadHandshake);

    // First frame is not Hello.
    let mut conn = Raw::connect(addr);
    let req = range_req(1);
    conn.send(&req);
    conn.expect_fatal(FatalCode::BadHandshake);

    // Duplicate Hello after a successful handshake.
    let mut conn = Raw::connect(addr).hello("t");
    let mut hello = Vec::new();
    wire::encode_hello(&mut hello, "t");
    conn.send(&hello);
    conn.expect_fatal(FatalCode::BadHandshake);

    // The server is still healthy for well-behaved clients.
    let mut client = NetClient::connect(addr, "ok").unwrap();
    assert!(matches!(
        client.call(&Request::RangeCount(vec![Aabb::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(60.0, 60.0, 60.0),
        )])),
        Ok(CallOutcome::Reply { .. })
    ));
    drop(client);
    server.shutdown();
}

#[test]
fn unknown_tenant_rejected_when_defaults_disabled() {
    let cfg = NetConfig::default()
        .with_tenants(vec![TenantSpec::new("declared", 1)])
        .reject_unknown_tenants();
    let server = NetServer::bind(tiny_service(), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    let mut conn = Raw::connect(addr);
    let mut hello = Vec::new();
    wire::encode_hello(&mut hello, "undeclared");
    conn.send(&hello);
    conn.expect_fatal(FatalCode::UnknownTenant);

    // The declared tenant connects fine.
    let client = NetClient::connect(addr, "declared");
    assert!(client.is_ok(), "declared tenant must be admitted");
    drop(client);
    server.shutdown();
}

#[test]
fn oversized_and_truncated_frames_fail_typed() {
    let cfg = NetConfig::default().with_limits(1 << 12, 64);
    let server = NetServer::bind(tiny_service(), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    // A frame declaring more than max_frame: rejected from the length
    // prefix alone — the body is never read, never allocated.
    let mut conn = Raw::connect(addr).hello("t");
    conn.send_bytes(&(1u32 << 20).to_le_bytes());
    conn.expect_fatal(FatalCode::FrameTooLarge);

    // A frame that ends mid-payload (EOF inside a frame).
    let mut conn = Raw::connect(addr).hello("t");
    conn.send_bytes(&100u32.to_le_bytes());
    conn.send_bytes(&[0u8; 40]);
    conn.stream.shutdown(Shutdown::Write).unwrap();
    conn.expect_fatal(FatalCode::Malformed);

    // A complete frame whose payload is shorter than the message.
    let mut conn = Raw::connect(addr).hello("t");
    let req = range_req(1);
    conn.send(&req[..req.len() - 5]);
    conn.expect_fatal(FatalCode::Malformed);

    // Trailing bytes after a valid message.
    let mut conn = Raw::connect(addr).hello("t");
    let mut long = range_req(1);
    long.extend_from_slice(&[0xAA; 3]);
    conn.send(&long);
    conn.expect_fatal(FatalCode::Malformed);

    server.shutdown();
}

#[test]
fn unknown_opcodes_tags_and_limits_fail_typed() {
    let cfg = NetConfig::default().with_limits(1 << 20, 16);
    let server = NetServer::bind(tiny_service(), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    // Unknown opcode.
    let mut conn = Raw::connect(addr).hello("t");
    conn.send(&[0x5A]);
    conn.expect_fatal(FatalCode::UnknownOpcode);

    // Unknown request tag.
    let mut conn = Raw::connect(addr).hello("t");
    let mut bad = Vec::new();
    bad.push(0x02); // REQUEST
    bad.extend_from_slice(&7u64.to_le_bytes());
    bad.push(0); // tenant-default consistency
    bad.push(99); // no such tag
    conn.send(&bad);
    conn.expect_fatal(FatalCode::UnknownOpcode);

    // Item count over the advertised limit (16): a Remove with 17 ids.
    let mut conn = Raw::connect(addr).hello("t");
    let mut over = Vec::new();
    wire::encode_request(&mut over, 3, None, &Request::Remove((0..17).collect()));
    conn.send(&over);
    conn.expect_fatal(FatalCode::LimitExceeded);

    server.shutdown();
}

#[test]
fn writes_to_read_only_backend_fail_typed_over_the_wire() {
    let server = NetServer::bind(tiny_service(), "127.0.0.1:0", NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr(), "t").unwrap();
    let target = Aabb::new(Point3::new(1.0, 1.0, 1.0), Point3::new(2.0, 2.0, 2.0));
    match client.call(&Request::Update(vec![(5, target)])).unwrap() {
        CallOutcome::Rejected(RequestError::ReadOnly) => {}
        other => panic!("expected typed ReadOnly rejection, got {other:?}"),
    }
    // The connection survives a per-request rejection.
    assert!(matches!(
        client.call(&Request::RangeCount(vec![target])),
        Ok(CallOutcome::Reply { .. })
    ));
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.failed_requests, 0, "rejected before admission");
}

/// A client that pipelines requests and vanishes without reading a
/// single reply must not leak anything: the server completes every
/// admitted ticket, drops the unroutable frames, and shuts down cleanly
/// (this test hanging IS the regression signal).
#[test]
fn mid_request_connection_drop_leaks_nothing() {
    let server = NetServer::bind(writable_service(), "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();

    for round in 0..3 {
        let mut conn = Raw::connect(addr).hello("ghost");
        for corr in 0..20u64 {
            let payload = if corr % 4 == 3 {
                // Include write barriers so in-flight writes are covered.
                let mut buf = Vec::new();
                wire::encode_request(
                    &mut buf,
                    corr + 1,
                    None,
                    &Request::Update(vec![(
                        (round * 20 + corr as u32) % 200,
                        Aabb::new(Point3::new(1.0, 1.0, 1.0), Point3::new(2.0, 2.0, 2.0)),
                    )]),
                );
                buf
            } else {
                range_req(corr + 1)
            };
            wire::write_frame(&mut conn.writer, &payload).unwrap();
        }
        conn.writer.flush().unwrap();
        // Vanish abruptly: no reads, reset on drop.
        drop(conn);
    }

    // One extra connection drops *mid-frame*, with requests already
    // staged ahead of the break.
    let mut conn = Raw::connect(addr).hello("ghost");
    let req = range_req(100);
    wire::write_frame(&mut conn.writer, &req).unwrap();
    conn.writer.flush().unwrap();
    conn.send_bytes(&((req.len() as u32).to_le_bytes()));
    conn.send_bytes(&req[..4]); // frame never finishes
    drop(conn);

    // A healthy client still gets service while the ghosts' tickets
    // resolve in the background.
    let mut client = NetClient::connect(addr, "live").unwrap();
    assert!(matches!(
        client.call(&Request::RangeCount(vec![Aabb::new(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(60.0, 60.0, 60.0),
        )])),
        Ok(CallOutcome::Reply { .. })
    ));
    drop(client);

    // Shutdown drains everything the ghosts staged: if a ticket leaked,
    // the collector (and therefore this join) would hang.
    let stats = server.shutdown();
    let ghost = stats
        .tenants
        .iter()
        .find(|t| t.name == "ghost")
        .expect("ghost tenant tracked");
    assert_eq!(
        ghost.admitted,
        ghost.completed + ghost.failed,
        "every admitted ghost request resolved exactly once"
    );
    assert!(ghost.admitted >= 1, "ghost requests were admitted");
    assert_eq!(
        stats.completed + stats.failed_requests,
        stats.submitted,
        "service-side: nothing in flight after drain"
    );
}
