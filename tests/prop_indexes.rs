//! Property-based equivalence of *every* range index with the linear scan,
//! over arbitrary element soups and query boxes — the workspace-wide
//! correctness net.

use proptest::prelude::*;
use simspatial::prelude::*;

fn arb_elements() -> impl Strategy<Value = Vec<Element>> {
    prop::collection::vec(
        prop_oneof![
            // Spheres.
            (
                (-40.0f32..40.0, -40.0f32..40.0, -40.0f32..40.0),
                0.05f32..3.0
            )
                .prop_map(|((x, y, z), r)| Shape::Sphere(Sphere::new(Point3::new(x, y, z), r))),
            // Capsules (the neuron geometry).
            (
                (-40.0f32..40.0, -40.0f32..40.0, -40.0f32..40.0),
                (-4.0f32..4.0, -4.0f32..4.0, -4.0f32..4.0),
                0.05f32..1.0
            )
                .prop_map(|((x, y, z), (dx, dy, dz), r)| {
                    let a = Point3::new(x, y, z);
                    Shape::Capsule(Capsule::new(a, a + Vec3::new(dx, dy, dz), r))
                }),
        ],
        1..150,
    )
    .prop_map(|shapes| {
        shapes
            .into_iter()
            .enumerate()
            .map(|(i, s)| Element::new(i as ElementId, s))
            .collect()
    })
}

fn arb_query() -> impl Strategy<Value = Aabb> {
    (
        (-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0),
        0.5f32..40.0,
    )
        .prop_map(|((x, y, z), s)| {
            let min = Point3::new(x, y, z);
            Aabb::new(min, Point3::new(x + s, y + s, z + s))
        })
}

fn sorted(mut v: Vec<ElementId>) -> Vec<ElementId> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_index_equals_scan(elements in arb_elements(), q in arb_query()) {
        let scan = LinearScan::build(&elements);
        let truth = sorted(scan.range(&elements, &q));

        let rtree = RTree::bulk_load(&elements, RTreeConfig::default());
        let hilbert = RTree::bulk_load_sfc(&elements, RTreeConfig::default(), Curve::Hilbert);
        let morton = RTree::bulk_load_sfc(&elements, RTreeConfig::default(), Curve::Morton);
        let crtree = CrTree::build(&elements, CrTreeConfig::default());
        let kd = KdTree::build(&elements);
        let oct = Octree::build(&elements, OctreeConfig::default());
        let grid = UniformGrid::build(&elements, GridConfig::auto(&elements));
        let multi = MultiGrid::build(&elements, MultiGridConfig::auto(&elements));
        let flat = Flat::build(&elements, FlatConfig::auto(&elements));

        let contenders: Vec<(&str, &dyn SpatialIndex)> = vec![
            ("rtree", &rtree),
            ("rtree-hilbert", &hilbert),
            ("rtree-morton", &morton),
            ("crtree", &crtree),
            ("kdtree", &kd),
            ("octree", &oct),
            ("grid", &grid),
            ("multigrid", &multi),
            ("flat", &flat),
        ];
        for (name, idx) in contenders {
            prop_assert_eq!(sorted(idx.range(&elements, &q)), truth.clone(),
                            "{} diverged on {:?}", name, q);
        }
    }

    #[test]
    fn range_batch_equals_looped_range_into_equals_legacy_range(
        elements in arb_elements(),
        queries in prop::collection::vec(arb_query(), 1..6),
    ) {
        // The three entry points of the batch-first API must agree for
        // every index: the batched plan (`range_batch` through the
        // engine), a hand loop over the sink core (`range_into`), and the
        // legacy allocating wrapper (`range`).
        let rtree = RTree::bulk_load(&elements, RTreeConfig::default());
        let crtree = CrTree::build(&elements, CrTreeConfig::default());
        let kd = KdTree::build(&elements);
        let oct = Octree::build(&elements, OctreeConfig::default());
        let grid = UniformGrid::build(&elements, GridConfig::auto(&elements));
        let multi = MultiGrid::build(&elements, MultiGridConfig::auto(&elements));
        let flat = Flat::build(&elements, FlatConfig::auto(&elements));
        let scan = LinearScan::build(&elements);

        let contenders: Vec<(&str, &dyn SpatialIndex)> = vec![
            ("rtree", &rtree),
            ("crtree", &crtree),
            ("kdtree", &kd),
            ("octree", &oct),
            ("grid", &grid),
            ("multigrid", &multi),
            ("flat", &flat),
            ("scan", &scan),
        ];
        let mut engine = QueryEngine::new();
        let mut batched = BatchResults::new();
        let mut scratch = simspatial::geom::QueryScratch::default();
        for (name, idx) in contenders {
            let stats = engine.range_collect(idx, &elements, &queries, &mut batched);
            prop_assert_eq!(batched.len(), queries.len(), "{}: batch width", name);
            prop_assert_eq!(stats.results as usize, batched.total(), "{}: tally", name);
            for (qi, q) in queries.iter().enumerate() {
                let from_batch = sorted(batched.query_results(qi).to_vec());
                let mut looped = Vec::new();
                idx.range_into(&elements, q, &mut scratch, &mut looped);
                prop_assert_eq!(&from_batch, &sorted(looped),
                                "{}: batch vs looped range_into on {:?}", name, q);
                prop_assert_eq!(&from_batch, &sorted(idx.range(&elements, q)),
                                "{}: batch vs legacy range on {:?}", name, q);
            }
        }
    }

    #[test]
    fn knn_indexes_equal_scan_distances(elements in arb_elements(), k in 1usize..20,
                                        p in (-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0)) {
        let p = Point3::new(p.0, p.1, p.2);
        let scan = LinearScan::build(&elements);
        let truth = scan.knn(&elements, &p, k);

        let rtree = RTree::bulk_load(&elements, RTreeConfig::default());
        let kd = KdTree::build(&elements);
        let oct = Octree::build(&elements, OctreeConfig::default());
        let grid = UniformGrid::build(&elements, GridConfig::auto(&elements));

        let contenders: Vec<(&str, &dyn KnnIndex)> =
            vec![("rtree", &rtree), ("kdtree", &kd), ("octree", &oct), ("grid", &grid)];
        for (name, idx) in contenders {
            let got = idx.knn(&elements, &p, k);
            prop_assert_eq!(got.len(), truth.len(), "{} count", name);
            for (g, t) in got.iter().zip(truth.iter()) {
                prop_assert!((g.1 - t.1).abs() < 1e-2,
                             "{}: distance {} vs {}", name, g.1, t.1);
            }
        }
    }

    #[test]
    fn flat_survives_arbitrary_drift(elements in arb_elements(),
                                     drifts in prop::collection::vec(
                                         (-0.3f32..0.3, -0.3f32..0.3, -0.3f32..0.3), 1..4),
                                     q in arb_query()) {
        let mut live = elements.clone();
        let mut flat = Flat::build(&live, FlatConfig::auto(&live));
        for d in &drifts {
            let v = Vec3::new(d.0, d.1, d.2);
            for e in live.iter_mut() {
                // Per-element variation derived from the id keeps the moves
                // heterogeneous without another RNG.
                let s = 1.0 - (e.id % 7) as f32 / 14.0;
                e.translate(v * s);
            }
            flat.note_drift(v.length());
        }
        let scan = LinearScan::build(&live);
        prop_assert_eq!(sorted(flat.range(&live, &q)), sorted(scan.range(&live, &q)));
    }

    #[test]
    fn rtree_stays_valid_under_mixed_bulk_then_dynamic(elements in arb_elements(),
                                                       removals in prop::collection::vec(any::<usize>(), 0..40)) {
        let mut tree = RTree::bulk_load(&elements, RTreeConfig::default());
        let mut live: Vec<Element> = elements.clone();
        for r in removals {
            if live.is_empty() {
                break;
            }
            let i = r % live.len();
            let e = live.swap_remove(i);
            prop_assert!(tree.delete(e.id, &e.aabb()), "bulk-loaded entry not deletable");
        }
        tree.validate();
        prop_assert_eq!(tree.len(), live.len());
    }
}
