//! Concurrency coverage for the query service.
//!
//! * **Differential**: concurrent submissions from ≥4 producer threads
//!   must return results *identical* — same id ordering per range query,
//!   same `(id, distance)` lists per kNN probe — to a serial
//!   `QueryEngine` (resp. `ShardedEngine`) run over the same requests,
//!   with micro-batch coalescing both on and off.
//! * **Lifecycle**: orderly shutdown drains and completes everything
//!   already admitted; submissions after shutdown fail cleanly with
//!   `SubmitError::ShutDown`.
//! * **Backpressure**: with the dispatcher wedged, the bounded intake
//!   queue fills and `try_submit` reports `Full` instead of blocking.
//! * **Write barrier**: interleaved update/query streams — pipelined from
//!   one producer and concurrent from 2 query + 2 update producers — are
//!   byte-identical to a serial interleaving honoring the write barrier,
//!   on the single-engine backend and on sharded backends (uniform and
//!   median-cut) including cross-shard migrations.

use simspatial::prelude::*;
use simspatial_geom::QueryScratch;
use simspatial_service::{BatchReport, RecvError, ServiceBackend, UpdateReport};
use std::sync::mpsc;
use std::time::Duration;

/// Mixed-size random soup (same recipe as the engine differential tests).
fn soup(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(2654435761);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let r = if i % 29 == 0 { 4.0 } else { 0.35 };
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
        })
        .collect()
}

fn mix(h: u32) -> u32 {
    let mut h = h.wrapping_mul(0x9E3779B9) ^ 0xABCD_1234;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^ (h >> 13)
}

/// Deterministic request stream for producer `tid`: a mix of `Range`,
/// `RangeCount` and `Knn` (per-probe k varying 1..9, including k=0 and a
/// far-outside probe), so coalescing sees all families and k-groups.
fn requests_for(tid: u32, count: u32) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let h = mix(tid.wrapping_mul(1000) + i);
            let cx = (h % 90) as f32;
            let cy = ((h >> 8) % 90) as f32;
            let cz = ((h >> 16) % 90) as f32;
            match h % 3 {
                0 => Request::Range(
                    (0..(h % 4 + 1))
                        .map(|q| {
                            let o = q as f32 * 7.0;
                            Aabb::new(
                                Point3::new(cx - o, cy, cz),
                                Point3::new(cx + 9.0, cy + 12.0, cz + 8.0 + o),
                            )
                        })
                        .collect(),
                ),
                1 => Request::RangeCount(vec![Aabb::new(
                    Point3::new(cx, cy, cz),
                    Point3::new(cx + 20.0, cy + 20.0, cz + 20.0),
                )]),
                _ => Request::Knn(
                    (0..(h % 3 + 1))
                        .map(|q| {
                            let k = ((h >> (q * 4)) % 9) as usize; // 0..=8, k=0 included
                            let p = if q == 2 {
                                Point3::new(-500.0, -500.0, -500.0)
                            } else {
                                Point3::new(cx + q as f32, cy, cz)
                            };
                            (p, k)
                        })
                        .collect(),
                ),
            }
        })
        .collect()
}

/// The serial oracle: one request at a time through a caller-owned engine.
/// Writable oracles additionally apply write batches with the same
/// semantics as the service (geometry replaced, last write wins).
trait SerialOracle {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>>;
    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)>;
    fn apply(&mut self, updates: &[(ElementId, Shape)]) {
        let _ = updates;
        panic!("read-only oracle received a write");
    }
}

struct EngineOracle<'a, I> {
    engine: QueryEngine,
    index: &'a I,
    data: &'a [Element],
}

impl<I: SpatialIndex + KnnIndex> SerialOracle for EngineOracle<'_, I> {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>> {
        let mut out = BatchResults::new();
        self.engine
            .range_collect(self.index, self.data, qs, &mut out);
        (0..qs.len())
            .map(|q| out.query_results(q).to_vec())
            .collect()
    }

    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        let mut out = KnnBatchResults::new();
        self.engine
            .knn_collect(self.index, self.data, &[*p], k, &mut out);
        out.query_results(0).to_vec()
    }
}

struct ShardedOracle<I>(ShardedEngine<I>);

impl<I: SpatialIndex + KnnIndex + Send> SerialOracle for ShardedOracle<I> {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>> {
        let mut out = BatchResults::new();
        self.0.range_collect(qs, &mut out);
        (0..qs.len())
            .map(|q| out.query_results(q).to_vec())
            .collect()
    }

    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        let mut out = KnnBatchResults::new();
        self.0.knn_collect(&[*p], k, &mut out);
        out.query_results(0).to_vec()
    }

    fn apply(&mut self, updates: &[(ElementId, Shape)]) {
        self.0.update_batch(updates);
    }
}

/// A writable single-engine oracle: owns the data, applies writes, rebuilds
/// its index — the serial mirror of `EngineBackend::build_writable`.
struct RebuildOracle<I, F: Fn(&[Element]) -> I> {
    engine: QueryEngine,
    data: Vec<Element>,
    index: I,
    build: F,
}

impl<I: SpatialIndex + KnnIndex, F: Fn(&[Element]) -> I> RebuildOracle<I, F> {
    fn new(data: Vec<Element>, build: F) -> Self {
        let index = build(&data);
        Self {
            engine: QueryEngine::new(),
            data,
            index,
            build,
        }
    }
}

impl<I: SpatialIndex + KnnIndex, F: Fn(&[Element]) -> I> SerialOracle for RebuildOracle<I, F> {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>> {
        let mut out = BatchResults::new();
        self.engine
            .range_collect(&self.index, &self.data, qs, &mut out);
        (0..qs.len())
            .map(|q| out.query_results(q).to_vec())
            .collect()
    }

    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        let mut out = KnnBatchResults::new();
        self.engine
            .knn_collect(&self.index, &self.data, &[*p], k, &mut out);
        out.query_results(0).to_vec()
    }

    fn apply(&mut self, updates: &[(ElementId, Shape)]) {
        for &(id, shape) in updates {
            if let Some(e) = self.data.get_mut(id as usize) {
                e.shape = shape;
            }
        }
        self.index = (self.build)(&self.data);
    }
}

/// A strategy-backed oracle: the serial mirror of
/// `simspatial_moving::strategy_backend` (same structure, same sparse
/// maintenance path).
struct StrategyOracle {
    data: Vec<Element>,
    strategy: Box<dyn UpdateStrategy>,
    scratch: QueryScratch,
}

impl SerialOracle for StrategyOracle {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>> {
        qs.iter()
            .map(|q| {
                let mut out = Vec::new();
                self.strategy
                    .range_into(&self.data, q, &mut self.scratch, &mut out);
                out
            })
            .collect()
    }

    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        let mut out = Vec::new();
        self.strategy
            .knn_into(&self.data, p, k, &mut self.scratch, &mut out);
        out
    }

    fn apply(&mut self, updates: &[(ElementId, Shape)]) {
        self.strategy.update_batch(&mut self.data, updates);
    }
}

fn expected(oracle: &mut dyn SerialOracle, request: &Request) -> Response {
    match request {
        Request::Range(qs) => Response::Range(oracle.range(qs)),
        Request::RangeCount(qs) => Response::RangeCount(
            oracle
                .range(qs)
                .into_iter()
                .map(|l| l.len() as u64)
                .collect(),
        ),
        Request::Knn(probes) => {
            Response::Knn(probes.iter().map(|(p, k)| oracle.knn(p, *k)).collect())
        }
        Request::Update(pairs) => {
            let updates: Vec<(ElementId, Shape)> =
                pairs.iter().map(|&(id, bb)| (id, Shape::Box(bb))).collect();
            oracle.apply(&updates);
            Response::Update(pairs.len() as u64)
        }
        Request::Step(envs) => {
            let updates: Vec<(ElementId, Shape)> = envs
                .iter()
                .enumerate()
                .map(|(id, &bb)| (id as ElementId, Shape::Box(bb)))
                .collect();
            oracle.apply(&updates);
            Response::Step(envs.len() as u64)
        }
        Request::StepDelta(moves) => {
            let updates: Vec<(ElementId, Shape)> =
                moves.iter().map(|&(id, bb)| (id, Shape::Box(bb))).collect();
            oracle.apply(&updates);
            Response::StepDelta(moves.len() as u64)
        }
        Request::Insert(_) | Request::Remove(_) => {
            unimplemented!("membership requests are exercised by tests/incremental_differential.rs")
        }
    }
}

const PRODUCERS: u32 = 4;
const REQUESTS_PER_PRODUCER: u32 = 40;

/// Drives `service` from `PRODUCERS` threads (pipelined submissions, so the
/// scheduler has something to coalesce) and checks every response against
/// the serial oracle.
fn drive_and_verify(service: SpatialService, oracle: &mut dyn SerialOracle, label: &str) {
    let collected: Vec<(u32, Vec<Response>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|tid| {
                let h = service.handle();
                scope.spawn(move || {
                    let requests = requests_for(tid, REQUESTS_PER_PRODUCER);
                    // Pipeline: submit everything, then collect in order.
                    let tickets: Vec<Ticket> = requests
                        .iter()
                        .map(|r| h.submit(r.clone()).expect("open service accepts"))
                        .collect();
                    let responses: Vec<Response> = tickets
                        .into_iter()
                        .map(|t| t.recv().expect("response arrives"))
                        .collect();
                    (tid, responses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = service.shutdown();
    assert_eq!(
        stats.completed,
        u64::from(PRODUCERS * REQUESTS_PER_PRODUCER),
        "{label}: all requests complete"
    );
    assert_eq!(
        stats.latency.count, stats.completed,
        "{label}: latency per request"
    );
    assert!(stats.dispatches >= 1);
    assert!(stats.memory_bytes > 0, "{label}: backend memory surfaced");
    assert!(
        !stats.shard_sizes.is_empty(),
        "{label}: shard sizes surfaced"
    );
    for (tid, responses) in collected {
        let requests = requests_for(tid, REQUESTS_PER_PRODUCER);
        assert_eq!(responses.len(), requests.len());
        for (i, (request, got)) in requests.iter().zip(&responses).enumerate() {
            let want = expected(oracle, request);
            assert_eq!(got, &want, "{label}: producer {tid} request {i} diverged");
        }
    }
}

#[test]
fn service_matches_serial_engine() {
    let data = soup(2500, 0xBEEF);
    let index = UniformGrid::build(&data, GridConfig::auto(&data));
    let mut oracle = EngineOracle {
        engine: QueryEngine::new(),
        index: &index,
        data: &data,
    };
    for coalesce in [true, false] {
        let backend =
            EngineBackend::build(data.clone(), |d| UniformGrid::build(d, GridConfig::auto(d)));
        let cfg = if coalesce {
            ServiceConfig::default()
        } else {
            ServiceConfig::default().no_coalesce()
        };
        let service = SpatialService::spawn(backend, cfg);
        let label = format!("engine/grid coalesce={coalesce}");
        drive_and_verify(service, &mut oracle, &label);
    }
}

#[test]
fn service_matches_serial_sharded() {
    let data = soup(2000, 0xCAFE);
    let build = |part: &[Element]| RTree::bulk_load(part, RTreeConfig::default());
    let mut oracle = ShardedOracle(ShardedEngine::build(&data, 3, build));
    for coalesce in [true, false] {
        let backend = ShardedBackend::spawn(ShardedEngine::build(&data, 3, build));
        assert_eq!(backend.shard_count(), 3);
        let cfg = if coalesce {
            ServiceConfig::default()
        } else {
            ServiceConfig::default().no_coalesce()
        };
        let service = SpatialService::spawn(backend, cfg);
        let label = format!("sharded/rtree coalesce={coalesce}");
        drive_and_verify(service, &mut oracle, &label);
    }
}

#[test]
fn service_on_median_cut_shards_matches_serial() {
    let data = soup(1500, 0x5EED);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let mut oracle = ShardedOracle(ShardedEngine::build_median(&data, 4, build));
    let backend = ShardedBackend::spawn(ShardedEngine::build_median(&data, 4, build));
    let service = SpatialService::spawn(backend, ServiceConfig::default());
    drive_and_verify(service, &mut oracle, "sharded/grid median-cut");
}

/// A backend whose FIRST dispatch blocks until the test releases a gate —
/// the deterministic way to wedge the scheduler and observe queueing,
/// backpressure and drain-during-shutdown.
struct GatedBackend<B: ServiceBackend> {
    inner: B,
    gate: Option<mpsc::Receiver<()>>,
}

impl<B: ServiceBackend> GatedBackend<B> {
    fn new(inner: B) -> (Self, mpsc::Sender<()>) {
        let (tx, rx) = mpsc::channel();
        (
            Self {
                inner,
                gate: Some(rx),
            },
            tx,
        )
    }

    fn wait_gate(&mut self) {
        if let Some(gate) = self.gate.take() {
            let _ = gate.recv();
        }
    }
}

impl<B: ServiceBackend> ServiceBackend for GatedBackend<B> {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport {
        self.wait_gate();
        self.inner.range_batch(queries, out)
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport {
        self.wait_gate();
        self.inner.knn_batch(points, k, out)
    }

    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateReport {
        self.wait_gate();
        self.inner.update_batch(updates)
    }

    fn supports_updates(&self) -> bool {
        self.inner.supports_updates()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.inner.shard_sizes()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

fn small_backend(data: &[Element]) -> EngineBackend<LinearScan> {
    EngineBackend::build(data.to_vec(), LinearScan::build)
}

fn one_box() -> Request {
    Request::Range(vec![Aabb::new(
        Point3::ORIGIN,
        Point3::new(50.0, 50.0, 50.0),
    )])
}

#[test]
fn shutdown_drains_queue_and_rejects_new_submissions() {
    let data = soup(300, 1);
    let (backend, gate) = GatedBackend::new(small_backend(&data));
    let service = SpatialService::spawn(backend, ServiceConfig::default().no_coalesce());
    let handle = service.handle();
    // Admit a backlog; the first dispatch wedges on the gate, the rest queue.
    let tickets: Vec<Ticket> = (0..6)
        .map(|_| handle.submit(one_box()).expect("open service accepts"))
        .collect();
    // Shut down from another thread (it blocks joining the dispatcher).
    let closer = std::thread::spawn(move || service.shutdown());
    // The admission flag flips before the drain finishes…
    while handle.is_open() {
        std::thread::sleep(Duration::from_millis(1));
    }
    // …so new submissions already fail, while the backlog is still queued.
    match handle.submit(one_box()) {
        Err(SubmitError::ShutDown(_)) => {}
        other => panic!("submit after shutdown must fail cleanly, got {other:?}"),
    }
    // Release the gate: the drain completes every admitted request.
    gate.send(()).unwrap();
    let stats = closer.join().unwrap();
    assert_eq!(stats.completed, 6, "orderly shutdown drains the queue");
    for (i, t) in tickets.into_iter().enumerate() {
        let lists = t
            .recv()
            .unwrap_or_else(|_| panic!("admitted request {i} must be completed"))
            .into_range()
            .unwrap();
        assert_eq!(lists.len(), 1);
    }
    // A ticket for a request that was never admitted errors, not hangs.
    match handle.try_submit(one_box()) {
        Err(SubmitError::ShutDown(_)) => {}
        other => panic!("try_submit after shutdown must fail cleanly, got {other:?}"),
    }
}

#[test]
fn bounded_queue_reports_backpressure() {
    let data = soup(200, 2);
    let (backend, gate) = GatedBackend::new(small_backend(&data));
    let service = SpatialService::spawn(
        backend,
        ServiceConfig::default().no_coalesce().with_queue_cap(2),
    );
    let handle = service.handle();
    // Wedge the dispatcher, then fill the bounded queue without blocking.
    let mut accepted = Vec::new();
    let mut saw_full = false;
    for _ in 0..5 {
        match handle.try_submit(one_box()) {
            Ok(t) => accepted.push(t),
            Err(SubmitError::Full {
                request: req,
                depth,
                capacity,
                high_water,
            }) => {
                saw_full = true;
                // The request comes back for retry, and the rejection
                // carries honest congestion gauges for backoff scaling.
                assert_eq!(req.len(), 1);
                assert_eq!(capacity, 2, "capacity mirrors the configured cap");
                assert!(depth >= 1, "a full queue reports its depth");
                assert!(high_water >= depth, "high-water dominates depth");
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        saw_full,
        "cap-2 queue must reject within 5 wedged submissions"
    );
    assert!(accepted.len() >= 2, "the queue accepts up to its bound");
    let pre = handle.stats();
    assert!(pre.rejected >= 1, "rejections are counted");
    gate.send(()).unwrap();
    let stats = service.shutdown();
    assert_eq!(stats.completed, accepted.len() as u64);
    for t in accepted {
        assert!(t.recv().is_ok(), "accepted requests complete");
    }
    assert_eq!(stats.queue_depth, 0, "drained queue gauge returns to zero");
}

#[test]
fn dropped_service_errors_outstanding_tickets_cleanly() {
    // A ticket whose service vanished reports ShutDown rather than hanging.
    let data = soup(100, 3);
    let (backend, gate) = GatedBackend::new(small_backend(&data));
    // With the sender gone, wait_gate's recv errors and returns, so the
    // backend is NOT wedged; this test only checks lifecycle.
    drop(gate);
    let service = SpatialService::spawn(backend, ServiceConfig::default());
    let handle = service.handle();
    let t = handle.submit(one_box()).unwrap();
    t.recv().expect("live service completes the request");
    drop(service); // Drop shuts the service down.
    match handle.submit(one_box()) {
        Err(SubmitError::ShutDown(_)) => {}
        other => panic!("submit into dropped service must fail, got {other:?}"),
    }
    // recv on a never-admitted ticket path: construct via try_submit race is
    // not reachable deterministically; instead check RecvError Display.
    assert_eq!(
        RecvError::ShutDown.to_string(),
        "service shut down before completing the request"
    );
}

// ---------------------------------------------------------------------------
// Write path: barrier ordering, mixed producers, migrations.
// ---------------------------------------------------------------------------

/// Number of dataset elements used by the write-path tests.
const WRITE_SOUP: u32 = 1200;

/// A box far outside the data universe (soup coordinates span ~0..100):
/// updates move elements *into* it, so a range query over it decodes
/// exactly which updates are visible.
fn beacon_all() -> Aabb {
    Aabb::new(
        Point3::new(150.0, 150.0, 150.0),
        Point3::new(175.0, 175.0, 175.0),
    )
}

/// The distinct in-beacon target envelope of update slot `slot`.
fn beacon_target(slot: u32) -> Aabb {
    let x = 151.0 + (slot % 40) as f32 * 0.5;
    let y = 151.0 + ((slot / 40) % 40) as f32 * 0.5;
    Aabb::new(
        Point3::new(x, y, 151.0),
        Point3::new(x + 0.3, y + 0.3, 151.5),
    )
}

/// Deterministic interleaved read/write request stream: ranges, sparse
/// updates (with cross-request last-write-wins collisions), kNN probes,
/// counts and full-tick `Step`s.
fn barrier_requests(count: u32) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let h = mix(0xD00D + i);
            let cx = (h % 80) as f32;
            let data_box = Aabb::new(
                Point3::new(cx, (h >> 8) as f32 % 80.0, 5.0),
                Point3::new(cx + 18.0, (h >> 8) as f32 % 80.0 + 15.0, 60.0),
            );
            match i % 4 {
                0 => Request::Range(vec![beacon_all(), data_box]),
                1 => {
                    // Two updates per request; id collisions across requests
                    // exercise last-write-wins at the barriers.
                    let a = h % WRITE_SOUP;
                    let b = (h >> 7) % WRITE_SOUP;
                    Request::Update(vec![(a, beacon_target(i)), (b, beacon_target(i + 500))])
                }
                2 => Request::Knn(vec![
                    (Point3::new(160.0, 160.0, 151.0), 5),
                    (Point3::new(cx, cx, cx), 4),
                ]),
                _ => {
                    if i % 8 == 3 {
                        // A whole simulation tick: every element re-placed at
                        // a deterministic position inside the universe.
                        Request::Step(
                            (0..WRITE_SOUP)
                                .map(|id| {
                                    let g = mix(id.wrapping_mul(31) ^ i);
                                    let p = Point3::new(
                                        (g % 997) as f32 / 10.0,
                                        ((g >> 10) % 997) as f32 / 10.0,
                                        ((g >> 20) % 997) as f32 / 10.0,
                                    );
                                    Aabb::new(p, Point3::new(p.x + 0.6, p.y + 0.6, p.z + 0.6))
                                })
                                .collect(),
                        )
                    } else {
                        Request::RangeCount(vec![beacon_all(), data_box])
                    }
                }
            }
        })
        .collect()
}

/// Pipelines the interleaved stream from one producer (so the scheduler
/// coalesces read runs and write runs within dispatches) and asserts every
/// response is byte-identical to the serial oracle run in admission order.
fn drive_barrier_and_verify(
    service: SpatialService,
    oracle: &mut dyn SerialOracle,
    pipelined: bool,
    label: &str,
) {
    let requests = barrier_requests(48);
    let handle = service.handle();
    let responses: Vec<Response> = if pipelined {
        let tickets: Vec<Ticket> = requests
            .iter()
            .map(|r| handle.submit(r.clone()).expect("open service accepts"))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.recv().expect("response arrives"))
            .collect()
    } else {
        requests
            .iter()
            .map(|r| {
                handle
                    .submit(r.clone())
                    .expect("open service accepts")
                    .recv()
                    .expect("response arrives")
            })
            .collect()
    };
    let stats = service.shutdown();
    assert!(stats.updates_applied > 0, "{label}: updates flowed");
    assert!(stats.update_dispatches > 0, "{label}: write runs executed");
    for (i, (request, got)) in requests.iter().zip(&responses).enumerate() {
        let want = expected(oracle, request);
        assert_eq!(got, &want, "{label}: request {i} diverged from serial");
    }
}

#[test]
fn write_barrier_matches_serial_on_engine_backend() {
    let data = soup(WRITE_SOUP, 0xF00D);
    let build = |d: &[Element]| UniformGrid::build(d, GridConfig::auto(d));
    for pipelined in [false, true] {
        let backend = EngineBackend::build_writable(data.clone(), build);
        let service = SpatialService::spawn(backend, ServiceConfig::default());
        assert!(service.handle().is_writable());
        let mut oracle = RebuildOracle::new(data.clone(), build);
        drive_barrier_and_verify(
            service,
            &mut oracle,
            pipelined,
            &format!("engine/grid writable pipelined={pipelined}"),
        );
    }
}

#[test]
fn write_barrier_matches_serial_on_sharded_backends() {
    let data = soup(WRITE_SOUP, 0xFEED);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    for median in [false, true] {
        let make = || {
            if median {
                ShardedEngine::build_median(&data, 4, build).with_rebuild(build)
            } else {
                ShardedEngine::build(&data, 3, build).with_rebuild(build)
            }
        };
        let backend = ShardedBackend::spawn(make());
        assert!(backend.supports_updates());
        let service = SpatialService::spawn(backend, ServiceConfig::default());
        let mut oracle = ShardedOracle(make());
        drive_barrier_and_verify(
            service,
            &mut oracle,
            true,
            &format!("sharded/grid median={median}"),
        );
    }
}

#[test]
fn write_barrier_matches_serial_on_strategy_backend() {
    // Strategy structures are history-dependent (a migrated grid's cell
    // lists differ from a rebuilt one's), so the oracle must see the same
    // update groupings: disable coalescing and run strictly sequentially —
    // one dispatch, one `update_batch`, per request, both sides.
    let data = soup(WRITE_SOUP, 0xD1CE);
    let backend = strategy_backend(data.clone(), UpdateStrategyKind::GridMigrate);
    let service = SpatialService::spawn(backend, ServiceConfig::default().no_coalesce());
    let mut oracle = StrategyOracle {
        strategy: UpdateStrategyKind::GridMigrate.create(&data),
        data,
        scratch: QueryScratch::default(),
    };
    drive_barrier_and_verify(service, &mut oracle, false, "engine/grid-migrate strategy");
}

#[test]
fn read_only_backend_rejects_writes_at_admission() {
    let data = soup(200, 5);
    let service = SpatialService::spawn(
        EngineBackend::build(data.clone(), LinearScan::build),
        ServiceConfig::default(),
    );
    let handle = service.handle();
    assert!(!handle.is_writable());
    match handle.submit(Request::Update(vec![(0, beacon_target(0))])) {
        Err(SubmitError::ReadOnly(req)) => assert_eq!(req.len(), 1),
        other => panic!("write into read-only backend must be rejected, got {other:?}"),
    }
    match handle.try_submit(Request::Step(vec![beacon_target(1)])) {
        Err(SubmitError::ReadOnly(_)) => {}
        other => panic!("try_submit write must be rejected, got {other:?}"),
    }
    // Reads still flow.
    assert!(handle.submit(one_box()).unwrap().recv().is_ok());
    service.shutdown();
}

/// One recorded observation of a query producer: the bracket of the
/// updates-applied counter around the request, and the response.
struct Observation {
    lo: u64,
    hi: u64,
    response: Response,
}

/// Builds the serial oracle for a given set of applied updates.
type OracleAt<'a> = dyn FnMut(&[(ElementId, Aabb)]) -> Box<dyn SerialOracle> + 'a;

const MIXED_UPDATES_PER_PRODUCER: u32 = 60;
const MIXED_QUERIES_PER_PRODUCER: u32 = 25;

/// Update slot of producer `p` (0/1), step `i`: element id and its target.
/// Ids are disjoint between producers (even/odd), so every interleaving of
/// the two submission orders is decodable from the visible id set.
fn mixed_update(p: u32, i: u32) -> (ElementId, Aabb) {
    let id = i * 2 + p;
    (id, beacon_target(id))
}

/// Drives 2 update producers + 2 query producers concurrently, then checks
/// every query response was byte-identical to the serial oracle state for
/// the *decoded* set of visible updates, and that the visible set respects
/// per-producer admission order (prefix-closed) and the stats bracket —
/// i.e. each response matches a serial interleaving honoring the write
/// barrier.
fn drive_mixed_and_verify(service: SpatialService, oracle_at: &mut OracleAt, label: &str) {
    let boxes = vec![
        beacon_all(),
        Aabb::new(Point3::new(10.0, 10.0, 10.0), Point3::new(55.0, 55.0, 55.0)),
    ];
    let observations: Vec<Vec<Observation>> = std::thread::scope(|scope| {
        // Update producers: pipelined single-update requests in fixed order.
        for p in 0..2u32 {
            let h = service.handle();
            scope.spawn(move || {
                let mut inflight = std::collections::VecDeque::new();
                for i in 0..MIXED_UPDATES_PER_PRODUCER {
                    let (id, bb) = mixed_update(p, i);
                    if inflight.len() == 4 {
                        let t: Ticket = inflight.pop_front().unwrap();
                        t.recv().expect("update completes");
                    }
                    inflight.push_back(h.submit(Request::Update(vec![(id, bb)])).unwrap());
                }
                for t in inflight {
                    t.recv().expect("update completes");
                }
            });
        }
        // Query producers: bracket every request with the applied counter.
        let queriers: Vec<_> = (0..2u32)
            .map(|_| {
                let h = service.handle();
                let boxes = boxes.clone();
                scope.spawn(move || {
                    (0..MIXED_QUERIES_PER_PRODUCER)
                        .map(|_| {
                            let lo = h.stats().updates_applied;
                            let response = h
                                .submit(Request::Range(boxes.clone()))
                                .unwrap()
                                .recv()
                                .expect("query completes");
                            let hi = h.stats().updates_applied;
                            Observation { lo, hi, response }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        queriers.into_iter().map(|q| q.join().unwrap()).collect()
    });
    let stats = service.shutdown();
    assert_eq!(
        stats.updates_applied,
        u64::from(2 * MIXED_UPDATES_PER_PRODUCER),
        "{label}: every update applied exactly once"
    );

    for (q, obs) in observations.into_iter().enumerate() {
        for (i, ob) in obs.into_iter().enumerate() {
            let lists = match &ob.response {
                Response::Range(lists) => lists,
                other => panic!("{label}: unexpected response {other:?}"),
            };
            // Decode which updates this query saw from the beacon hits.
            let visible = &lists[0];
            assert!(
                (ob.lo..=ob.hi).contains(&(visible.len() as u64)),
                "{label}: query {q}/{i} saw {} updates outside bracket [{}, {}]",
                visible.len(),
                ob.lo,
                ob.hi
            );
            // Per-producer prefix-closedness: the visible ids of each
            // producer must be exactly its first k submissions.
            for p in 0..2u32 {
                let seen: Vec<u32> = visible
                    .iter()
                    .filter(|&&id| id % 2 == p)
                    .map(|&id| id / 2)
                    .collect();
                let max = seen.iter().copied().max().map_or(0, |m| m + 1);
                assert_eq!(
                    seen.len() as u32,
                    max,
                    "{label}: query {q}/{i} producer {p} visibility not prefix-closed: {seen:?}"
                );
            }
            // Byte-identical to the serial oracle at the decoded state.
            let applied: Vec<(ElementId, Aabb)> =
                visible.iter().map(|&id| (id, beacon_target(id))).collect();
            let mut oracle = oracle_at(&applied);
            let want = oracle.range(&boxes);
            assert_eq!(
                lists,
                &want,
                "{label}: query {q}/{i} diverged from serial oracle at {} updates",
                applied.len()
            );
        }
    }
}

#[test]
fn mixed_producers_match_serial_on_engine_backend() {
    let data = soup(WRITE_SOUP, 0xAB1E);
    let build = |d: &[Element]| UniformGrid::build(d, GridConfig::auto(d));
    let service = SpatialService::spawn(
        EngineBackend::build_writable(data.clone(), build),
        ServiceConfig::default(),
    );
    let mut oracle_at = |applied: &[(ElementId, Aabb)]| {
        let mut oracle = RebuildOracle::new(data.clone(), build);
        let updates: Vec<(ElementId, Shape)> = applied
            .iter()
            .map(|&(id, bb)| (id, Shape::Box(bb)))
            .collect();
        oracle.apply(&updates);
        Box::new(oracle) as Box<dyn SerialOracle>
    };
    drive_mixed_and_verify(service, &mut oracle_at, "mixed engine/grid");
}

#[test]
fn mixed_producers_match_serial_on_sharded_backends() {
    let data = soup(WRITE_SOUP, 0xB0B0);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    for median in [false, true] {
        let make = || {
            if median {
                ShardedEngine::build_median(&data, 4, build).with_rebuild(build)
            } else {
                ShardedEngine::build(&data, 3, build).with_rebuild(build)
            }
        };
        let service =
            SpatialService::spawn(ShardedBackend::spawn(make()), ServiceConfig::default());
        let handle = service.handle();
        let mut oracle_at = |applied: &[(ElementId, Aabb)]| {
            let mut oracle = ShardedOracle(make());
            let updates: Vec<(ElementId, Shape)> = applied
                .iter()
                .map(|&(id, bb)| (id, Shape::Box(bb)))
                .collect();
            oracle.apply(&updates);
            Box::new(oracle) as Box<dyn SerialOracle>
        };
        drive_mixed_and_verify(
            service,
            &mut oracle_at,
            &format!("mixed sharded median={median}"),
        );
        // The beacon sits in one slab while sources span all of them:
        // updates must have crossed shard boundaries.
        let _ = handle;
    }
}

#[test]
fn sharded_service_reflects_post_migration_sizes() {
    // Drain most elements into the beacon slab through the service and
    // check the surfaced gauges follow the migrations.
    let data = soup(1000, 0xCAB5);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let service = SpatialService::spawn(
        ShardedBackend::spawn(ShardedEngine::build(&data, 4, build).with_rebuild(build)),
        ServiceConfig::default(),
    );
    let handle = service.handle();
    let before = handle.stats();
    let updates: Vec<(ElementId, Aabb)> = (0..1000u32).map(|id| (id, beacon_target(id))).collect();
    handle
        .submit(Request::Update(updates))
        .unwrap()
        .recv()
        .unwrap();
    let after = handle.stats();
    assert_eq!(after.updates_applied, 1000);
    assert!(after.migrations > 0, "beacon drain must migrate");
    assert_ne!(
        before.shard_sizes, after.shard_sizes,
        "shard sizes must be refreshed after migration"
    );
    // Everything now lives in the slab the beacon routes to: exactly one
    // non-empty shard, and the surfaced sizes say so.
    let nonempty: Vec<usize> = after
        .shard_sizes
        .iter()
        .copied()
        .filter(|&s| s > 0)
        .collect();
    assert_eq!(nonempty, vec![1000], "{:?}", after.shard_sizes);
    // The gauge is live, not a spawn-time snapshot (index sizes may grow or
    // shrink with the new layout; the clone/id-map shrink itself is proven
    // at the executor level in the index crate's tests).
    assert_ne!(
        after.memory_bytes, before.memory_bytes,
        "memory gauge must be refreshed after migration"
    );
    service.shutdown();
}

#[test]
fn coalescing_forms_multi_request_batches() {
    // With a wedged first dispatch and pipelined submissions, the second
    // dispatch must coalesce several requests into one batch.
    let data = soup(400, 4);
    let (backend, gate) = GatedBackend::new(small_backend(&data));
    let service = SpatialService::spawn(
        backend,
        ServiceConfig::default().with_batching(64, Duration::from_micros(50)),
    );
    let handle = service.handle();
    let first = handle.submit(one_box()).unwrap();
    // Wait until the dispatcher has the first request in hand (queue empty),
    // then pile up a burst behind the gate.
    while handle.stats().queue_depth > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let burst: Vec<Ticket> = (0..12).map(|_| handle.submit(one_box()).unwrap()).collect();
    gate.send(()).unwrap();
    first.recv().unwrap();
    for t in burst {
        t.recv().unwrap();
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 13);
    assert!(
        stats.dispatches < 13,
        "burst must coalesce: {} dispatches for 13 requests",
        stats.dispatches
    );
    assert!(stats.mean_batch() > 1.0);
    assert!(stats.max_queue_depth >= 2);
}
