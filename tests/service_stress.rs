//! Concurrency coverage for the query service.
//!
//! * **Differential**: concurrent submissions from ≥4 producer threads
//!   must return results *identical* — same id ordering per range query,
//!   same `(id, distance)` lists per kNN probe — to a serial
//!   `QueryEngine` (resp. `ShardedEngine`) run over the same requests,
//!   with micro-batch coalescing both on and off.
//! * **Lifecycle**: orderly shutdown drains and completes everything
//!   already admitted; submissions after shutdown fail cleanly with
//!   `SubmitError::ShutDown`.
//! * **Backpressure**: with the dispatcher wedged, the bounded intake
//!   queue fills and `try_submit` reports `Full` instead of blocking.

use simspatial::prelude::*;
use simspatial_service::{RecvError, ServiceBackend};
use std::sync::mpsc;
use std::time::Duration;

/// Mixed-size random soup (same recipe as the engine differential tests).
fn soup(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(2654435761);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let r = if i % 29 == 0 { 4.0 } else { 0.35 };
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
        })
        .collect()
}

fn mix(h: u32) -> u32 {
    let mut h = h.wrapping_mul(0x9E3779B9) ^ 0xABCD_1234;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^ (h >> 13)
}

/// Deterministic request stream for producer `tid`: a mix of `Range`,
/// `RangeCount` and `Knn` (per-probe k varying 1..9, including k=0 and a
/// far-outside probe), so coalescing sees all families and k-groups.
fn requests_for(tid: u32, count: u32) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let h = mix(tid.wrapping_mul(1000) + i);
            let cx = (h % 90) as f32;
            let cy = ((h >> 8) % 90) as f32;
            let cz = ((h >> 16) % 90) as f32;
            match h % 3 {
                0 => Request::Range(
                    (0..(h % 4 + 1))
                        .map(|q| {
                            let o = q as f32 * 7.0;
                            Aabb::new(
                                Point3::new(cx - o, cy, cz),
                                Point3::new(cx + 9.0, cy + 12.0, cz + 8.0 + o),
                            )
                        })
                        .collect(),
                ),
                1 => Request::RangeCount(vec![Aabb::new(
                    Point3::new(cx, cy, cz),
                    Point3::new(cx + 20.0, cy + 20.0, cz + 20.0),
                )]),
                _ => Request::Knn(
                    (0..(h % 3 + 1))
                        .map(|q| {
                            let k = ((h >> (q * 4)) % 9) as usize; // 0..=8, k=0 included
                            let p = if q == 2 {
                                Point3::new(-500.0, -500.0, -500.0)
                            } else {
                                Point3::new(cx + q as f32, cy, cz)
                            };
                            (p, k)
                        })
                        .collect(),
                ),
            }
        })
        .collect()
}

/// The serial oracle: one request at a time through a caller-owned engine.
trait SerialOracle {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>>;
    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)>;
}

struct EngineOracle<'a, I> {
    engine: QueryEngine,
    index: &'a I,
    data: &'a [Element],
}

impl<I: SpatialIndex + KnnIndex> SerialOracle for EngineOracle<'_, I> {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>> {
        let mut out = BatchResults::new();
        self.engine
            .range_collect(self.index, self.data, qs, &mut out);
        (0..qs.len())
            .map(|q| out.query_results(q).to_vec())
            .collect()
    }

    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        let mut out = KnnBatchResults::new();
        self.engine
            .knn_collect(self.index, self.data, &[*p], k, &mut out);
        out.query_results(0).to_vec()
    }
}

struct ShardedOracle<I>(ShardedEngine<I>);

impl<I: SpatialIndex + KnnIndex + Send> SerialOracle for ShardedOracle<I> {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>> {
        let mut out = BatchResults::new();
        self.0.range_collect(qs, &mut out);
        (0..qs.len())
            .map(|q| out.query_results(q).to_vec())
            .collect()
    }

    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        let mut out = KnnBatchResults::new();
        self.0.knn_collect(&[*p], k, &mut out);
        out.query_results(0).to_vec()
    }
}

fn expected(oracle: &mut dyn SerialOracle, request: &Request) -> Response {
    match request {
        Request::Range(qs) => Response::Range(oracle.range(qs)),
        Request::RangeCount(qs) => Response::RangeCount(
            oracle
                .range(qs)
                .into_iter()
                .map(|l| l.len() as u64)
                .collect(),
        ),
        Request::Knn(probes) => {
            Response::Knn(probes.iter().map(|(p, k)| oracle.knn(p, *k)).collect())
        }
    }
}

const PRODUCERS: u32 = 4;
const REQUESTS_PER_PRODUCER: u32 = 40;

/// Drives `service` from `PRODUCERS` threads (pipelined submissions, so the
/// scheduler has something to coalesce) and checks every response against
/// the serial oracle.
fn drive_and_verify(service: SpatialService, oracle: &mut dyn SerialOracle, label: &str) {
    let collected: Vec<(u32, Vec<Response>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|tid| {
                let h = service.handle();
                scope.spawn(move || {
                    let requests = requests_for(tid, REQUESTS_PER_PRODUCER);
                    // Pipeline: submit everything, then collect in order.
                    let tickets: Vec<Ticket> = requests
                        .iter()
                        .map(|r| h.submit(r.clone()).expect("open service accepts"))
                        .collect();
                    let responses: Vec<Response> = tickets
                        .into_iter()
                        .map(|t| t.recv().expect("response arrives"))
                        .collect();
                    (tid, responses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = service.shutdown();
    assert_eq!(
        stats.completed,
        u64::from(PRODUCERS * REQUESTS_PER_PRODUCER),
        "{label}: all requests complete"
    );
    assert_eq!(
        stats.latency.count, stats.completed,
        "{label}: latency per request"
    );
    assert!(stats.dispatches >= 1);
    assert!(stats.memory_bytes > 0, "{label}: backend memory surfaced");
    assert!(
        !stats.shard_sizes.is_empty(),
        "{label}: shard sizes surfaced"
    );
    for (tid, responses) in collected {
        let requests = requests_for(tid, REQUESTS_PER_PRODUCER);
        assert_eq!(responses.len(), requests.len());
        for (i, (request, got)) in requests.iter().zip(&responses).enumerate() {
            let want = expected(oracle, request);
            assert_eq!(got, &want, "{label}: producer {tid} request {i} diverged");
        }
    }
}

#[test]
fn service_matches_serial_engine() {
    let data = soup(2500, 0xBEEF);
    let index = UniformGrid::build(&data, GridConfig::auto(&data));
    let mut oracle = EngineOracle {
        engine: QueryEngine::new(),
        index: &index,
        data: &data,
    };
    for coalesce in [true, false] {
        let backend =
            EngineBackend::build(data.clone(), |d| UniformGrid::build(d, GridConfig::auto(d)));
        let cfg = if coalesce {
            ServiceConfig::default()
        } else {
            ServiceConfig::default().no_coalesce()
        };
        let service = SpatialService::spawn(backend, cfg);
        let label = format!("engine/grid coalesce={coalesce}");
        drive_and_verify(service, &mut oracle, &label);
    }
}

#[test]
fn service_matches_serial_sharded() {
    let data = soup(2000, 0xCAFE);
    let build = |part: &[Element]| RTree::bulk_load(part, RTreeConfig::default());
    let mut oracle = ShardedOracle(ShardedEngine::build(&data, 3, build));
    for coalesce in [true, false] {
        let backend = ShardedBackend::spawn(ShardedEngine::build(&data, 3, build));
        assert_eq!(backend.shard_count(), 3);
        let cfg = if coalesce {
            ServiceConfig::default()
        } else {
            ServiceConfig::default().no_coalesce()
        };
        let service = SpatialService::spawn(backend, cfg);
        let label = format!("sharded/rtree coalesce={coalesce}");
        drive_and_verify(service, &mut oracle, &label);
    }
}

#[test]
fn service_on_median_cut_shards_matches_serial() {
    let data = soup(1500, 0x5EED);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let mut oracle = ShardedOracle(ShardedEngine::build_median(&data, 4, build));
    let backend = ShardedBackend::spawn(ShardedEngine::build_median(&data, 4, build));
    let service = SpatialService::spawn(backend, ServiceConfig::default());
    drive_and_verify(service, &mut oracle, "sharded/grid median-cut");
}

/// A backend whose FIRST dispatch blocks until the test releases a gate —
/// the deterministic way to wedge the scheduler and observe queueing,
/// backpressure and drain-during-shutdown.
struct GatedBackend<B: ServiceBackend> {
    inner: B,
    gate: Option<mpsc::Receiver<()>>,
}

impl<B: ServiceBackend> GatedBackend<B> {
    fn new(inner: B) -> (Self, mpsc::Sender<()>) {
        let (tx, rx) = mpsc::channel();
        (
            Self {
                inner,
                gate: Some(rx),
            },
            tx,
        )
    }

    fn wait_gate(&mut self) {
        if let Some(gate) = self.gate.take() {
            let _ = gate.recv();
        }
    }
}

impl<B: ServiceBackend> ServiceBackend for GatedBackend<B> {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> QueryStats {
        self.wait_gate();
        self.inner.range_batch(queries, out)
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> QueryStats {
        self.wait_gate();
        self.inner.knn_batch(points, k, out)
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.inner.shard_sizes()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

fn small_backend(data: &[Element]) -> EngineBackend<LinearScan> {
    EngineBackend::build(data.to_vec(), LinearScan::build)
}

fn one_box() -> Request {
    Request::Range(vec![Aabb::new(
        Point3::ORIGIN,
        Point3::new(50.0, 50.0, 50.0),
    )])
}

#[test]
fn shutdown_drains_queue_and_rejects_new_submissions() {
    let data = soup(300, 1);
    let (backend, gate) = GatedBackend::new(small_backend(&data));
    let service = SpatialService::spawn(backend, ServiceConfig::default().no_coalesce());
    let handle = service.handle();
    // Admit a backlog; the first dispatch wedges on the gate, the rest queue.
    let tickets: Vec<Ticket> = (0..6)
        .map(|_| handle.submit(one_box()).expect("open service accepts"))
        .collect();
    // Shut down from another thread (it blocks joining the dispatcher).
    let closer = std::thread::spawn(move || service.shutdown());
    // The admission flag flips before the drain finishes…
    while handle.is_open() {
        std::thread::sleep(Duration::from_millis(1));
    }
    // …so new submissions already fail, while the backlog is still queued.
    match handle.submit(one_box()) {
        Err(SubmitError::ShutDown(_)) => {}
        other => panic!("submit after shutdown must fail cleanly, got {other:?}"),
    }
    // Release the gate: the drain completes every admitted request.
    gate.send(()).unwrap();
    let stats = closer.join().unwrap();
    assert_eq!(stats.completed, 6, "orderly shutdown drains the queue");
    for (i, t) in tickets.into_iter().enumerate() {
        let lists = t
            .recv()
            .unwrap_or_else(|_| panic!("admitted request {i} must be completed"))
            .into_range()
            .unwrap();
        assert_eq!(lists.len(), 1);
    }
    // A ticket for a request that was never admitted errors, not hangs.
    match handle.try_submit(one_box()) {
        Err(SubmitError::ShutDown(_)) => {}
        other => panic!("try_submit after shutdown must fail cleanly, got {other:?}"),
    }
}

#[test]
fn bounded_queue_reports_backpressure() {
    let data = soup(200, 2);
    let (backend, gate) = GatedBackend::new(small_backend(&data));
    let service = SpatialService::spawn(
        backend,
        ServiceConfig::default().no_coalesce().with_queue_cap(2),
    );
    let handle = service.handle();
    // Wedge the dispatcher, then fill the bounded queue without blocking.
    let mut accepted = Vec::new();
    let mut saw_full = false;
    for _ in 0..5 {
        match handle.try_submit(one_box()) {
            Ok(t) => accepted.push(t),
            Err(SubmitError::Full(req)) => {
                saw_full = true;
                // The request comes back for retry.
                assert_eq!(req.len(), 1);
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        saw_full,
        "cap-2 queue must reject within 5 wedged submissions"
    );
    assert!(accepted.len() >= 2, "the queue accepts up to its bound");
    let pre = handle.stats();
    assert!(pre.rejected >= 1, "rejections are counted");
    gate.send(()).unwrap();
    let stats = service.shutdown();
    assert_eq!(stats.completed, accepted.len() as u64);
    for t in accepted {
        assert!(t.recv().is_ok(), "accepted requests complete");
    }
    assert_eq!(stats.queue_depth, 0, "drained queue gauge returns to zero");
}

#[test]
fn dropped_service_errors_outstanding_tickets_cleanly() {
    // A ticket whose service vanished reports ShutDown rather than hanging.
    let data = soup(100, 3);
    let (backend, gate) = GatedBackend::new(small_backend(&data));
    // With the sender gone, wait_gate's recv errors and returns, so the
    // backend is NOT wedged; this test only checks lifecycle.
    drop(gate);
    let service = SpatialService::spawn(backend, ServiceConfig::default());
    let handle = service.handle();
    let t = handle.submit(one_box()).unwrap();
    t.recv().expect("live service completes the request");
    drop(service); // Drop shuts the service down.
    match handle.submit(one_box()) {
        Err(SubmitError::ShutDown(_)) => {}
        other => panic!("submit into dropped service must fail, got {other:?}"),
    }
    // recv on a never-admitted ticket path: construct via try_submit race is
    // not reachable deterministically; instead check RecvError Display.
    assert_eq!(
        RecvError::ShutDown.to_string(),
        "service shut down before completing the request"
    );
}

#[test]
fn coalescing_forms_multi_request_batches() {
    // With a wedged first dispatch and pipelined submissions, the second
    // dispatch must coalesce several requests into one batch.
    let data = soup(400, 4);
    let (backend, gate) = GatedBackend::new(small_backend(&data));
    let service = SpatialService::spawn(
        backend,
        ServiceConfig::default().with_batching(64, Duration::from_micros(50)),
    );
    let handle = service.handle();
    let first = handle.submit(one_box()).unwrap();
    // Wait until the dispatcher has the first request in hand (queue empty),
    // then pile up a burst behind the gate.
    while handle.stats().queue_depth > 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let burst: Vec<Ticket> = (0..12).map(|_| handle.submit(one_box()).unwrap()).collect();
    gate.send(()).unwrap();
    first.recv().unwrap();
    for t in burst {
        t.recv().unwrap();
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 13);
    assert!(
        stats.dispatches < 13,
        "burst must coalesce: {} dispatches for 13 requests",
        stats.dispatches
    );
    assert!(stats.mean_batch() > 1.0);
    assert!(stats.max_queue_depth >= 2);
}
