//! Differential coverage for the incremental write path.
//!
//! Three executions of the same write stream must stay **byte-identical**
//! through every query:
//!
//! * a sharded engine in **incremental** mode (strategy-backed shards,
//!   in-place lane application, rebuild fallback on migration),
//! * the same engine in **rebuild** mode (every lane rebuilds — the
//!   differential oracle for the incremental fast path), and
//! * a **single unsharded** linear scan over the serially-updated element
//!   vector (removed ids tombstoned with empty boxes, which no range query
//!   intersects and every kNN probe ranks at infinite distance).
//!
//! The stream exercises the paths that differ between the modes: in-place
//! jitter (incremental-eligible lanes), long teleports (cross-shard
//! migrations force the fallback), planner-side insert and remove
//! (membership lanes always rebuild), writes to dead ids (skipped, not
//! resurrected), and the k=0 / empty-region / shrink-to-empty edge cases.

use simspatial::prelude::*;

fn mix(h: u32) -> u32 {
    let mut h = h.wrapping_mul(0x9E3779B9) ^ 0x1D1F_F001;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^ (h >> 13)
}

/// Mixed sphere/box soup in a ~[0, 100)³ universe.
fn soup(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = mix(i ^ seed);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let p = Point3::new(x, y, z);
            let shape = if i % 3 == 0 {
                Shape::Box(Aabb::new(p, Point3::new(x + 0.9, y + 0.7, z + 0.8)))
            } else {
                Shape::Sphere(Sphere::new(p, 0.4))
            };
            Element::new(i, shape)
        })
        .collect()
}

/// The unsharded oracle: a full-length element vector (id == position)
/// queried through a freshly built [`LinearScan`]. Removals tombstone the
/// slot with an empty box instead of compacting, mirroring the planner's
/// id discipline; updates to tombstoned or out-of-range ids are skipped,
/// mirroring [`ShardPlanner::route_updates`].
struct Oracle {
    data: Vec<Element>,
    engine: QueryEngine,
}

fn tombstone() -> Shape {
    Shape::Box(Aabb::empty())
}

impl Oracle {
    fn new(data: Vec<Element>) -> Self {
        Self {
            data,
            engine: QueryEngine::new(),
        }
    }

    fn is_dead(&self, id: u32) -> bool {
        self.data[id as usize].aabb().is_empty()
    }

    fn live(&self) -> usize {
        self.data.iter().filter(|e| !e.aabb().is_empty()).count()
    }

    fn update(&mut self, updates: &[(u32, Shape)]) {
        for &(id, shape) in updates {
            if (id as usize) < self.data.len() && !self.is_dead(id) {
                self.data[id as usize].shape = shape;
            }
        }
    }

    fn insert(&mut self, shapes: &[Shape]) -> Vec<u32> {
        shapes
            .iter()
            .map(|&shape| {
                let id = self.data.len() as u32;
                self.data.push(Element::new(id, shape));
                id
            })
            .collect()
    }

    fn remove(&mut self, ids: &[u32]) {
        for &id in ids {
            if (id as usize) < self.data.len() {
                self.data[id as usize].shape = tombstone();
            }
        }
    }

    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<u32>> {
        let scan = LinearScan::build(&self.data);
        let mut out = BatchResults::new();
        self.engine.range_collect(&scan, &self.data, qs, &mut out);
        (0..qs.len())
            .map(|q| {
                let mut ids = out.query_results(q).to_vec();
                ids.sort_unstable();
                ids
            })
            .collect()
    }

    fn knn(&mut self, points: &[Point3], k: usize) -> Vec<Vec<(u32, f32)>> {
        let scan = LinearScan::build(&self.data);
        let mut out = KnnBatchResults::new();
        self.engine
            .knn_collect(&scan, &self.data, points, k, &mut out);
        (0..points.len())
            .map(|q| {
                // Tombstones rank at infinite distance; the sharded engines
                // never hold them at all, so they pad the oracle's lists
                // only when k exceeds the live count — drop them.
                out.query_results(q)
                    .iter()
                    .copied()
                    .filter(|&(_, d)| d.is_finite())
                    .collect()
            })
            .collect()
    }
}

fn probe_boxes() -> Vec<Aabb> {
    vec![
        // Full coverage.
        Aabb::new(
            Point3::new(-10.0, -10.0, -10.0),
            Point3::new(120.0, 120.0, 120.0),
        ),
        // A mid-universe slab crossing shard boundaries.
        Aabb::new(Point3::new(20.0, 0.0, 0.0), Point3::new(60.0, 100.0, 100.0)),
        // A small box.
        Aabb::new(Point3::new(40.0, 40.0, 40.0), Point3::new(48.0, 48.0, 48.0)),
        // Far outside the universe: must be empty everywhere.
        Aabb::new(
            Point3::new(500.0, 500.0, 500.0),
            Point3::new(501.0, 501.0, 501.0),
        ),
    ]
}

fn probe_points() -> Vec<Point3> {
    (0..6)
        .map(|i| {
            Point3::new(
                (i * 17 % 90) as f32,
                (i * 31 % 90) as f32,
                (i * 7 % 90) as f32,
            )
        })
        .collect()
}

/// Asserts that both sharded engines and the unsharded oracle answer every
/// probe identically — ranges as id sets, kNN lists byte-for-byte (the
/// merge's global `(distance, id)` order must match the single engine's).
fn check(
    inc: &mut ShardedEngine<StrategyIndex>,
    reb: &mut ShardedEngine<StrategyIndex>,
    oracle: &mut Oracle,
    label: &str,
) {
    let qs = probe_boxes();
    let want = oracle.range(&qs);
    for (name, eng) in [("incremental", &mut *inc), ("rebuild", &mut *reb)] {
        let mut got = BatchResults::new();
        eng.range_collect(&qs, &mut got);
        for (qi, want_ids) in want.iter().enumerate() {
            let mut ids = got.query_results(qi).to_vec();
            ids.sort_unstable();
            assert_eq!(&ids, want_ids, "{label}: {name} range query {qi}");
        }
    }
    let points = probe_points();
    // k = 0 (empty lists), a mid k, and k = live count (every surviving
    // element, which must exclude tombstones on the oracle side).
    for k in [0usize, 5, oracle.live()] {
        let want = oracle.knn(&points, k);
        for (name, eng) in [("incremental", &mut *inc), ("rebuild", &mut *reb)] {
            let mut got = KnnBatchResults::new();
            eng.knn_collect(&points, k, &mut got);
            for (qi, want_list) in want.iter().enumerate() {
                assert_eq!(
                    got.query_results(qi),
                    &want_list[..],
                    "{label}: {name} knn k={k} probe {qi}"
                );
            }
        }
    }
}

/// In-place jitter: small displacements that keep most elements inside
/// their shard — the incremental engine's fast path.
fn jitter(n: u32, seed: u32, count: u32) -> Vec<(u32, Shape)> {
    (0..count)
        .map(|j| {
            let id = mix(j ^ seed) % n;
            let g = mix(id ^ seed);
            let x = (g % 997) as f32 / 10.0 + 0.2;
            let y = ((g >> 10) % 997) as f32 / 10.0;
            let z = ((g >> 20) % 997) as f32 / 10.0;
            let p = Point3::new(x, y, z);
            (
                id,
                Shape::Box(Aabb::new(p, Point3::new(x + 0.8, y + 0.8, z + 0.8))),
            )
        })
        .collect()
}

/// Teleports: long moves that cross shard regions and force migrations
/// (and therefore the incremental engine's rebuild fallback).
fn teleport(n: u32, seed: u32, count: u32) -> Vec<(u32, Shape)> {
    (0..count)
        .map(|j| {
            let id = mix(j ^ seed ^ 0x7E1E) % n;
            let g = mix(id ^ seed);
            // Mirror across the universe: x → ~100 - x.
            let x = 99.0 - (g % 997) as f32 / 10.0;
            let y = ((g >> 10) % 997) as f32 / 10.0;
            let z = ((g >> 20) % 997) as f32 / 10.0;
            let p = Point3::new(x, y, z);
            (id, Shape::Sphere(Sphere::new(p, 0.5)))
        })
        .collect()
}

/// Runs the whole write stream against one strategy `kind` and shard
/// count, checking all three executions stay identical after every batch.
fn drive(kind: UpdateStrategyKind, shards: usize) {
    let n = 600u32;
    let seed = 0xD1FF ^ shards as u32;
    let data = soup(n, seed);
    let label = format!("{kind:?}/{shards}-shard");
    let mut inc = sharded_strategy_engine(&data, shards, kind, ShardWriteMode::Incremental);
    let mut reb = sharded_strategy_engine(&data, shards, kind, ShardWriteMode::Rebuild);
    assert!(inc.is_incremental());
    assert!(!reb.is_incremental());
    let mut oracle = Oracle::new(data);

    check(&mut inc, &mut reb, &mut oracle, &format!("{label}/seed"));

    // 1. Incremental-eligible jitter.
    let updates = jitter(n, seed, 80);
    let s_inc = inc.update_batch(&updates);
    let s_reb = reb.update_batch(&updates);
    oracle.update(&updates);
    check(&mut inc, &mut reb, &mut oracle, &format!("{label}/jitter"));
    assert_eq!(
        s_inc.applied, s_reb.applied,
        "{label}: both modes apply the same updates"
    );
    assert_eq!(
        s_reb.rebuilds_avoided, 0,
        "{label}: rebuild mode never avoids"
    );
    // Work bound: resident updates (same shard route) skip the
    // envelope-map write-back, so entries are rewritten exactly when the
    // route changed — never once per applied update.
    assert_eq!(
        s_inc.envelope_writebacks, s_inc.migrations,
        "{label}: write-backs track migrations, not applied updates"
    );
    assert_eq!(
        s_reb.envelope_writebacks, s_inc.envelope_writebacks,
        "{label}: both modes route (and write back) identically"
    );

    // 2. Cross-shard teleports: migrations force the rebuild fallback, and
    //    results must not care.
    let updates = teleport(n, seed, 60);
    let s_inc = inc.update_batch(&updates);
    reb.update_batch(&updates);
    oracle.update(&updates);
    check(
        &mut inc,
        &mut reb,
        &mut oracle,
        &format!("{label}/teleport"),
    );
    assert_eq!(
        s_inc.envelope_writebacks, s_inc.migrations,
        "{label}: teleports write back exactly the migrated entries"
    );
    if shards > 1 {
        assert!(
            s_inc.migrations > 0,
            "{label}: mirrored teleports must cross shard regions"
        );
    }

    // 3. Planner-side inserts: all three must allocate the same ids.
    let new_shapes: Vec<Shape> = (0..25u32)
        .map(|j| {
            let g = mix(j ^ seed ^ 0xADD);
            let x = (g % 900) as f32 / 10.0;
            let y = ((g >> 8) % 900) as f32 / 10.0;
            let z = ((g >> 16) % 900) as f32 / 10.0;
            let p = Point3::new(x, y, z);
            Shape::Box(Aabb::new(p, Point3::new(x + 1.2, y + 1.2, z + 1.2)))
        })
        .collect();
    let (ids_inc, s_inc) = inc.insert_batch(&new_shapes);
    let (ids_reb, _) = reb.insert_batch(&new_shapes);
    let ids_oracle = oracle.insert(&new_shapes);
    assert_eq!(ids_inc, ids_oracle, "{label}: planner id allocation");
    assert_eq!(ids_reb, ids_oracle, "{label}: planner id allocation");
    assert_eq!(s_inc.inserted, 25, "{label}: insert accounting");
    check(&mut inc, &mut reb, &mut oracle, &format!("{label}/insert"));

    // 4. Removes: original ids, one freshly inserted id, a duplicate in
    //    the same batch, and an out-of-range id (skipped).
    let dead = vec![3u32, 77, 150, ids_oracle[0], 77, n + 1000];
    let s_inc = inc.remove_batch(&dead);
    reb.remove_batch(&dead);
    oracle.remove(&[3, 77, 150, ids_oracle[0]]);
    assert_eq!(s_inc.removed, 4, "{label}: distinct live ids removed");
    assert!(
        s_inc.skipped >= 2,
        "{label}: duplicate + out-of-range skipped"
    );
    check(&mut inc, &mut reb, &mut oracle, &format!("{label}/remove"));

    // 5. Writes to dead ids are skipped, not resurrected; live ids in the
    //    same batch still apply.
    let probe = Aabb::new(Point3::new(50.0, 50.0, 50.0), Point3::new(51.0, 51.0, 51.0));
    let updates: Vec<(u32, Shape)> = vec![
        (3, Shape::Box(probe)), // dead: must stay invisible
        (9, Shape::Box(probe)), // live: must show up
    ];
    let s_inc = inc.update_batch(&updates);
    reb.update_batch(&updates);
    oracle.update(&updates);
    assert_eq!(s_inc.applied, 1, "{label}: only the live id applies");
    assert_eq!(s_inc.skipped, 1, "{label}: the dead id is skipped");
    let hits = &oracle.range(&[probe])[0];
    assert!(
        hits.contains(&9) && !hits.contains(&3),
        "{label}: no resurrection"
    );
    check(
        &mut inc,
        &mut reb,
        &mut oracle,
        &format!("{label}/dead-write"),
    );
}

/// The full stream across every registered strategy, single-shard (pure
/// in-shard write modes, no migration possible) and multi-shard.
#[test]
fn incremental_rebuild_and_unsharded_stay_identical() {
    for kind in UpdateStrategyKind::ALL {
        for shards in [1usize, 3] {
            drive(kind, shards);
        }
    }
}

/// The incremental fast path actually runs — and is observable in the
/// write-amplification counters: on a single shard a geometry-only batch
/// avoids the rebuild, touches fewer elements than a rebuild would, and
/// leaves results identical (checked above; this pins the accounting).
#[test]
fn incremental_mode_avoids_rebuilds_on_jitter() {
    let n = 600u32;
    let data = soup(n, 0xACC);
    let mut inc = sharded_strategy_engine(
        &data,
        1,
        UpdateStrategyKind::GridMigrate,
        ShardWriteMode::Incremental,
    );
    let mut reb = sharded_strategy_engine(
        &data,
        1,
        UpdateStrategyKind::GridMigrate,
        ShardWriteMode::Rebuild,
    );
    let updates = jitter(n, 0xACC, 30);
    let s_inc = inc.update_batch(&updates);
    let s_reb = reb.update_batch(&updates);
    assert_eq!(
        s_inc.rebuilds_avoided, 1,
        "single shard, one lane, in place"
    );
    assert_eq!(s_inc.rebuilds, 0);
    assert_eq!(s_reb.rebuilds, 1);
    assert_eq!(s_reb.rebuilds_avoided, 0);
    assert_eq!(
        s_reb.structural, n as u64,
        "a rebuild touches every element"
    );
    assert!(
        s_inc.structural + s_inc.absorbed <= s_inc.shipped,
        "incremental work is bounded by the lane itself: {} + {} vs {}",
        s_inc.structural,
        s_inc.absorbed,
        s_inc.shipped
    );
    assert!(
        s_inc.structural < s_reb.structural / 4,
        "in-place application touches far fewer elements ({} vs {})",
        s_inc.structural,
        s_reb.structural
    );
    // One shard means one possible route: every jitter update is resident,
    // so the envelope map is never rewritten — the write-back skip the
    // counter exists to prove.
    assert_eq!(
        s_inc.envelope_writebacks, 0,
        "single-shard jitter rewrites no envelope entries"
    );
    assert_eq!(s_reb.envelope_writebacks, 0);
}

/// Shrink-to-empty and regrow: removing every element leaves all three
/// executions serving empty results without panicking, and inserting into
/// the emptied engine resumes id allocation past the tombstones.
#[test]
fn shrink_to_empty_then_regrow() {
    let n = 40u32;
    let data = soup(n, 0x5E5E);
    let mut inc = sharded_strategy_engine(
        &data,
        2,
        UpdateStrategyKind::GridMigrate,
        ShardWriteMode::Incremental,
    );
    let mut reb = sharded_strategy_engine(
        &data,
        2,
        UpdateStrategyKind::GridMigrate,
        ShardWriteMode::Rebuild,
    );
    let mut oracle = Oracle::new(data);

    let all: Vec<u32> = (0..n).collect();
    inc.remove_batch(&all);
    reb.remove_batch(&all);
    oracle.remove(&all);
    assert_eq!(oracle.live(), 0);
    check(&mut inc, &mut reb, &mut oracle, "empty");

    let shapes = vec![
        Shape::Sphere(Sphere::new(Point3::new(5.0, 5.0, 5.0), 1.0)),
        Shape::Box(Aabb::new(
            Point3::new(80.0, 80.0, 80.0),
            Point3::new(82.0, 82.0, 82.0),
        )),
    ];
    let (ids, _) = inc.insert_batch(&shapes);
    let (ids_r, _) = reb.insert_batch(&shapes);
    let ids_o = oracle.insert(&shapes);
    assert_eq!(ids, vec![n, n + 1], "ids continue past the tombstones");
    assert_eq!(ids_r, ids_o);
    check(&mut inc, &mut reb, &mut oracle, "regrown");
}
