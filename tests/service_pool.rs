//! Multicore pool coverage for the sharded service backend.
//!
//! * **Work stealing**: with 2 pool workers and shard 0 wedged by an
//!   injected delay, the idle worker must steal shard 2's job from the
//!   wedged owner's queue — observable in `worker_steals` — and the batch
//!   still returns complete results.
//! * **Thread-count differential**: a coalesced mixed range/kNN run
//!   through `ShardedBackend::query_run` returns byte-identical results
//!   at 1, 2 and 4 pool workers, and matches the sequential per-sub-batch
//!   `range_batch`/`knn_batch` path.
//! * **Observability**: the pool gauges (`worker_busy_ns`,
//!   `worker_steals`) flow through `ServiceStats` and its `summary()`.

use simspatial::prelude::*;
use simspatial_geom::parallel;
use simspatial_service::{QueryRun, QueryRunResults, SubBatchOutcome};
use std::sync::Mutex;
use std::time::Duration;

/// `parallel::set_num_threads` is process-global, so tests that reconfigure
/// it serialize on this lock and restore the previous value before exit.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn soup(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(2654435761);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let r = if i % 29 == 0 { 4.0 } else { 0.35 };
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
        })
        .collect()
}

fn sharded_backend(shards: usize) -> ShardedBackend {
    let data = soup(4000, 7);
    let engine = ShardedEngine::build(&data, shards, |part| {
        UniformGrid::build(part, GridConfig::auto(part))
    });
    ShardedBackend::spawn(engine)
}

fn mix(h: u32) -> u32 {
    let mut h = h.wrapping_mul(0x9E37_79B9) ^ 0xABCD_1234;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^ (h >> 13)
}

/// A run with every sub-batch family: 12 range boxes plus three kNN
/// groups (k = 1, 5, 9) of 8 probes each, spread across all shards.
fn mixed_run() -> QueryRun {
    let mut run = QueryRun::default();
    for i in 0..12u32 {
        let h = mix(i);
        let c = Point3::new(
            (h % 90) as f32,
            ((h >> 8) % 90) as f32,
            ((h >> 16) % 90) as f32,
        );
        let w = 4.0 + (h % 5) as f32 * 6.0;
        run.range
            .push(Aabb::new(c, Point3::new(c.x + w, c.y + w, c.z + w)));
    }
    for k in [1usize, 5, 9] {
        let probes: Vec<Point3> = (0..8u32)
            .map(|i| {
                let h = mix(1000 + 31 * k as u32 + i);
                Point3::new(
                    (h % 97) as f32,
                    ((h >> 8) % 97) as f32,
                    ((h >> 16) % 97) as f32,
                )
            })
            .collect();
        run.knn.push((k, probes));
    }
    run
}

#[test]
fn idle_worker_steals_from_wedged_owner_queue() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let old = parallel::num_threads();
    parallel::set_num_threads(2);
    let mut backend = sharded_backend(4);
    assert_eq!(backend.pool_workers(), 2);
    // Shards 0 and 2 land on worker 0's queue, shards 1 and 3 on worker
    // 1's. Wedging shard 0's first job forces worker 1 (done with its own
    // queue long before the delay elapses) to steal shard 2's job.
    backend.install_worker_faults(&[(0, 0, FaultKind::Delay(Duration::from_millis(80)))]);
    let everything = Aabb::new(Point3::new(-1e6, -1e6, -1e6), Point3::new(1e6, 1e6, 1e6));
    let mut out = BatchResults::new();
    let report = backend.range_batch(&[everything], &mut out);
    assert!(report.failed.is_empty() && report.partial.is_empty());
    assert_eq!(out.query_results(0).len(), 4000);
    let t = backend.telemetry();
    assert!(t.worker_steals >= 1, "expected a steal, telemetry: {t:?}");
    assert_eq!(t.worker_busy_ns.len(), 2);
    assert!(t.worker_busy_ns.iter().sum::<u64>() > 0);
    parallel::set_num_threads(old);
}

#[test]
fn query_run_matches_sequential_at_every_thread_count() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let old = parallel::num_threads();
    let run = mixed_run();

    // Oracle: the per-sub-batch sequential path at one worker.
    parallel::set_num_threads(1);
    let mut oracle = sharded_backend(4);
    let mut range_out = BatchResults::new();
    oracle.range_batch(&run.range, &mut range_out);
    let oracle_range: Vec<Vec<ElementId>> = (0..run.range.len())
        .map(|q| range_out.query_results(q).to_vec())
        .collect();
    let mut oracle_knn = Vec::new();
    for (k, pts) in &run.knn {
        let mut out = KnnBatchResults::new();
        oracle.knn_batch(pts, *k, &mut out);
        oracle_knn.push(
            (0..pts.len())
                .map(|p| out.query_results(p).to_vec())
                .collect::<Vec<_>>(),
        );
    }

    for threads in [1usize, 2, 4] {
        parallel::set_num_threads(threads);
        let mut backend = sharded_backend(4);
        assert_eq!(backend.pool_workers(), threads);
        let mut out = QueryRunResults::default();
        let report = backend.query_run(&run, &mut out);
        assert_eq!(report.panics, 0);
        assert!(!report.poisoned);
        assert!(matches!(report.range, Some(SubBatchOutcome::Ran(_))));
        for g in 0..run.knn.len() {
            assert!(matches!(report.knn[g], SubBatchOutcome::Ran(_)));
        }
        for (q, expected) in oracle_range.iter().enumerate() {
            assert_eq!(
                out.range.query_results(q),
                &expected[..],
                "range query {q} diverged at {threads} threads"
            );
        }
        for (g, (k, _)) in run.knn.iter().enumerate() {
            for (p, expected) in oracle_knn[g].iter().enumerate() {
                assert_eq!(
                    out.knn[g].query_results(p),
                    &expected[..],
                    "kNN k={k} probe {p} diverged at {threads} threads"
                );
            }
        }
    }
    parallel::set_num_threads(old);
}

#[test]
fn service_stats_surface_pool_gauges() {
    let _g = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let old = parallel::num_threads();
    parallel::set_num_threads(2);
    let service = SpatialService::spawn(sharded_backend(4), ServiceConfig::default());
    let handle = service.handle();
    let tickets: Vec<_> = (0..16u32)
        .map(|i| {
            let c = i as f32 * 5.0;
            handle
                .submit(Request::Range(vec![Aabb::new(
                    Point3::new(c, c, c),
                    Point3::new(c + 20.0, c + 20.0, c + 20.0),
                )]))
                .unwrap()
        })
        .collect();
    for t in tickets {
        t.recv().unwrap();
    }
    let stats = service.shutdown();
    assert_eq!(stats.worker_busy_ns.len(), 2);
    assert!(stats.worker_busy_ns.iter().sum::<u64>() > 0);
    let summary = stats.summary();
    assert!(summary.contains("pool: 2 workers"), "summary:\n{summary}");
    parallel::set_num_threads(old);
}
