//! Cross-crate integration: every index agrees with the linear scan on
//! every dataset family, for range and kNN queries.

use simspatial::prelude::*;

fn sorted(mut v: Vec<ElementId>) -> Vec<ElementId> {
    v.sort_unstable();
    v
}

fn datasets() -> Vec<(&'static str, Dataset)> {
    vec![
        (
            "uniform",
            ElementSoupBuilder::new()
                .count(4000)
                .universe_side(60.0)
                .seed(1)
                .build(),
        ),
        (
            "clustered",
            ElementSoupBuilder::new()
                .count(4000)
                .universe_side(60.0)
                .clustered(ClusteredConfig {
                    clusters: 8,
                    sigma: 3.0,
                })
                .seed(2)
                .build(),
        ),
        (
            "neurons",
            NeuronDatasetBuilder::new()
                .neurons(12)
                .segments_per_neuron(300)
                .universe_side(50.0)
                .seed(3)
                .build(),
        ),
    ]
}

fn query_mix(universe: Aabb) -> Vec<Aabb> {
    let mut w = QueryWorkload::new(universe, 99);
    let mut qs = w.range_queries(1e-5, 5);
    qs.extend(w.range_queries(1e-3, 5));
    qs.extend(w.range_queries(1e-2, 5));
    qs
}

#[test]
fn all_range_indexes_agree_with_scan() {
    for (name, data) in datasets() {
        let elements = data.elements();
        let scan = LinearScan::build(elements);

        let rtree = RTree::bulk_load(elements, RTreeConfig::default());
        let rtree_inc = {
            let mut t = RTree::new(RTreeConfig::default());
            for e in elements {
                t.insert(e.id, e.aabb());
            }
            t
        };
        let crtree = CrTree::build(elements, CrTreeConfig::default());
        let kd = KdTree::build(elements);
        let oct = Octree::build(elements, OctreeConfig::default());
        let grid = UniformGrid::build(elements, GridConfig::auto(elements));
        let grid_rep = UniformGrid::build(
            elements,
            GridConfig {
                placement: GridPlacement::Replicate,
                ..GridConfig::auto(elements)
            },
        );
        let multi = MultiGrid::build(elements, MultiGridConfig::auto(elements));
        let flat = Flat::build(elements, FlatConfig::auto(elements));

        let contenders: Vec<(&str, &dyn SpatialIndex)> = vec![
            ("rtree-bulk", &rtree),
            ("rtree-incremental", &rtree_inc),
            ("crtree", &crtree),
            ("kdtree", &kd),
            ("octree", &oct),
            ("grid-center", &grid),
            ("grid-replicate", &grid_rep),
            ("multigrid", &multi),
            ("flat", &flat),
        ];

        for q in query_mix(data.universe()) {
            let truth = sorted(scan.range(elements, &q));
            for (iname, idx) in &contenders {
                assert_eq!(idx.len(), elements.len(), "{name}/{iname} len");
                let got = sorted(idx.range(elements, &q));
                assert_eq!(got, truth, "{name}/{iname} on {q:?}");
            }
        }
    }
}

#[test]
fn all_knn_indexes_agree_with_scan() {
    for (name, data) in datasets() {
        let elements = data.elements();
        let scan = LinearScan::build(elements);
        let rtree = RTree::bulk_load(elements, RTreeConfig::default());
        let kd = KdTree::build(elements);
        let oct = Octree::build(elements, OctreeConfig::default());
        let grid = UniformGrid::build(elements, GridConfig::auto(elements));
        let multi = MultiGrid::build(elements, MultiGridConfig::auto(elements));

        let contenders: Vec<(&str, &dyn KnnIndex)> = vec![
            ("rtree", &rtree),
            ("kdtree", &kd),
            ("octree", &oct),
            ("grid", &grid),
            ("multigrid", &multi),
        ];

        let mut w = QueryWorkload::new(data.universe(), 7);
        for p in w.knn_points(8) {
            for k in [1usize, 7, 64] {
                let truth = scan.knn(elements, &p, k);
                for (iname, idx) in &contenders {
                    let got = idx.knn(elements, &p, k);
                    assert_eq!(got.len(), truth.len(), "{name}/{iname} k={k}");
                    for (g, t) in got.iter().zip(truth.iter()) {
                        assert!(
                            (g.1 - t.1).abs() < 1e-3,
                            "{name}/{iname} k={k}: {got:?} vs {truth:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn disk_rtree_agrees_with_scan_through_buffer_pool() {
    let data = NeuronDatasetBuilder::new()
        .neurons(10)
        .segments_per_neuron(200)
        .universe_side(40.0)
        .seed(5)
        .build();
    let tree = DiskRTree::build(data.elements());
    let scan = LinearScan::build(data.elements());
    let mut pool = BufferPool::new(BufferPoolConfig {
        capacity_pages: 256,
        disk: DiskModel::sas_2014(),
    });
    for q in query_mix(data.universe()) {
        let got = sorted(tree.range_exact(&mut pool, data.elements(), &q));
        let truth = sorted(scan.range(data.elements(), &q));
        assert_eq!(got, truth);
    }
    assert!(
        pool.stats().disk_time_s > 0.0,
        "queries must have touched the disk model"
    );
}

#[test]
fn lsh_knn_recall_on_integration_data() {
    let data = ElementSoupBuilder::new()
        .count(5000)
        .universe_side(60.0)
        .seed(9)
        .build();
    let lsh = Lsh::build(data.elements(), LshConfig::auto(data.elements()));
    let scan = LinearScan::build(data.elements());
    let mut w = QueryWorkload::new(data.universe(), 3);
    let mut hit = 0;
    let mut total = 0;
    for p in w.knn_points(25) {
        let truth: std::collections::HashSet<ElementId> = scan
            .knn(data.elements(), &p, 10)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        for (id, _) in lsh.knn(data.elements(), &p, 10) {
            total += 1;
            if truth.contains(&id) {
                hit += 1;
            }
        }
    }
    let recall = hit as f64 / total as f64;
    assert!(recall > 0.6, "LSH recall {recall}");
}

#[test]
fn batched_scan_matches_sequential_on_neuron_data() {
    let data = NeuronDatasetBuilder::new()
        .neurons(8)
        .segments_per_neuron(150)
        .universe_side(35.0)
        .seed(71)
        .build();
    let scan = LinearScan::build(data.elements());
    let queries = QueryWorkload::new(data.universe(), 5).range_queries(1e-3, 12);
    let batched = scan.range_batch_one_pass(data.elements(), &queries);
    for (q, got) in queries.iter().zip(batched) {
        assert_eq!(sorted(got), sorted(scan.range(data.elements(), q)));
    }
}

#[test]
fn two_population_synapse_join() {
    // Two neuron populations grown in the same volume: candidate synapses
    // are the cross-population pairs within reach.
    let axons = NeuronDatasetBuilder::new()
        .neurons(5)
        .segments_per_neuron(120)
        .universe_side(25.0)
        .seed(81)
        .build();
    let dendrites = NeuronDatasetBuilder::new()
        .neurons(5)
        .segments_per_neuron(120)
        .universe_side(25.0)
        .seed(82)
        .build();
    let truth = join_pair(
        axons.elements(),
        dendrites.elements(),
        0.4,
        PairAlgorithm::NestedLoop,
    );
    let fast = join_pair(
        axons.elements(),
        dendrites.elements(),
        0.4,
        PairAlgorithm::Grid,
    );
    assert_eq!(truth, fast);
    assert!(
        !truth.is_empty(),
        "overlapping populations must touch somewhere"
    );
}
