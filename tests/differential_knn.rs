//! Differential coverage for the batch-first kNN side (`knn_into` +
//! `KnnSink`) and the region-sharded engine.
//!
//! * Every exact [`KnnIndex`] implementation must return results identical
//!   to [`LinearScan`]'s ground truth — selected and ordered under the
//!   ascending `(distance, id)` contract — on random and degenerate
//!   inputs (duplicate points, `k = 0`, `k > n`, empty dataset). LSH is
//!   approximate and is diffed against its own seed oracle in
//!   `differential_batch.rs` instead.
//! * `knn_batch_into` ≡ looped `knn_into` ≡ legacy `knn()` for every
//!   implementation.
//! * [`ShardedEngine`] with K ∈ {1, 2, 4} shards must return result sets
//!   byte-identical (after sort) to a single [`QueryEngine`] over the same
//!   index type, for both `range_batch` and `knn_batch_into`.

use simspatial::prelude::*;
use simspatial_geom::QueryScratch;

/// Mixed-size random soup: mostly small spheres plus some large ones.
fn mixed(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(2654435761);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let r = if i % 31 == 0 { 5.0 } else { 0.3 };
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
        })
        .collect()
}

/// Degenerate datasets: empty, a single point, all elements coincident
/// (distance ties resolved by id), and a line of touching spheres.
fn degenerate_sets() -> Vec<Vec<Element>> {
    let coincident: Vec<Element> = (0..64)
        .map(|i| {
            Element::new(
                i,
                Shape::Sphere(Sphere::new(Point3::new(5.0, 5.0, 5.0), 0.25)),
            )
        })
        .collect();
    let line: Vec<Element> = (0..40)
        .map(|i| {
            Element::new(
                i,
                Shape::Sphere(Sphere::new(Point3::new(i as f32 * 0.5, 0.0, 0.0), 0.25)),
            )
        })
        .collect();
    vec![
        Vec::new(),
        vec![Element::new(
            0,
            Shape::Sphere(Sphere::new(Point3::ORIGIN, 0.0)),
        )],
        coincident,
        line,
    ]
}

fn all_datasets() -> Vec<Vec<Element>> {
    let mut sets = degenerate_sets();
    sets.push(mixed(2000, 0));
    sets.push(mixed(700, 0xF00D));
    sets
}

fn probe_points() -> Vec<Point3> {
    let mut pts: Vec<Point3> = (0..8)
        .map(|i| Point3::new((i * 13) as f32, (i * 11) as f32, (i * 7) as f32))
        .collect();
    pts.push(Point3::new(5.0, 5.0, 5.0)); // on the coincident cluster
    pts.push(Point3::new(-100.0, -100.0, -100.0)); // far outside
    pts
}

/// ks covering the degenerate corners: 0, 1, mid, and k > n for the small
/// datasets.
const KS: [usize; 4] = [0, 1, 6, 100];

/// Diffs one implementation's `knn_into` against the scan ground truth and
/// checks batch ≡ looped ≡ legacy.
fn check_knn_impl<I: KnnIndex>(name: &str, index: &I, data: &[Element]) {
    let scan = LinearScan::build(data);
    let points = probe_points();
    let mut scratch = QueryScratch::default();
    let mut engine = QueryEngine::new();
    let mut batched = KnnBatchResults::new();
    for &k in &KS {
        engine.knn_collect(index, data, &points, k, &mut batched);
        assert_eq!(batched.len(), points.len(), "{name}: probe count");
        for (qi, p) in points.iter().enumerate() {
            let truth = scan.knn(data, p, k);
            let mut looped: Vec<(ElementId, f32)> = Vec::new();
            index.knn_into(data, p, k, &mut scratch, &mut looped);
            let legacy = index.knn(data, p, k);

            assert_eq!(
                looped,
                truth,
                "{name}: knn_into diverged from scan at {p:?} k={k} (n={})",
                data.len()
            );
            assert_eq!(legacy, looped, "{name}: legacy knn != knn_into");
            assert_eq!(
                batched.query_results(qi),
                looped.as_slice(),
                "{name}: knn_batch_into != looped knn_into at probe {qi} k={k}"
            );
            if k == 0 {
                assert!(truth.is_empty(), "k=0 must return nothing");
            } else {
                assert_eq!(truth.len(), k.min(data.len()), "{name}: result count");
            }
        }
    }
}

#[test]
fn every_exact_impl_matches_scan() {
    for data in all_datasets() {
        check_knn_impl("LinearScan", &LinearScan::build(&data), &data);
        check_knn_impl("KD-Tree", &KdTree::build(&data), &data);
        check_knn_impl(
            "Octree",
            &Octree::build(&data, OctreeConfig::default()),
            &data,
        );
        check_knn_impl(
            "R-Tree",
            &RTree::bulk_load(&data, RTreeConfig::default()),
            &data,
        );
        check_knn_impl(
            "CR-Tree",
            &CrTree::build(&data, CrTreeConfig::default()),
            &data,
        );
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let cfg = GridConfig::with_cell_side(GridConfig::auto(&data).cell_side, placement);
            check_knn_impl("Grid", &UniformGrid::build(&data, cfg), &data);
        }
        check_knn_impl(
            "MultiGrid",
            &MultiGrid::build(&data, MultiGridConfig::auto(&data)),
            &data,
        );
    }
}

#[test]
fn lsh_batch_equals_looped_and_legacy() {
    // LSH is approximate, so no scan diff — but its batch, looped and
    // legacy paths must agree with each other.
    for data in all_datasets() {
        let lsh = Lsh::build(&data, LshConfig::auto(&data));
        let points = probe_points();
        let mut scratch = QueryScratch::default();
        let mut engine = QueryEngine::new();
        let mut batched = KnnBatchResults::new();
        for k in [0usize, 1, 7, 100] {
            engine.knn_collect(&lsh, &data, &points, k, &mut batched);
            for (qi, p) in points.iter().enumerate() {
                let mut looped: Vec<(ElementId, f32)> = Vec::new();
                lsh.knn_into(&data, p, k, &mut scratch, &mut looped);
                assert_eq!(lsh.knn(&data, p, k), looped, "legacy != looped k={k}");
                assert_eq!(batched.query_results(qi), looped.as_slice(), "batch k={k}");
            }
        }
    }
}

fn queries() -> Vec<Aabb> {
    let mut qs: Vec<Aabb> = (0..10)
        .map(|i| {
            let c = Point3::new((i * 9) as f32, (i * 7) as f32, (i * 5) as f32);
            Aabb::new(c, Point3::new(c.x + 15.0, c.y + 11.0, c.z + 9.0))
        })
        .collect();
    qs.push(Aabb::from_point(Point3::new(5.0, 5.0, 5.0)));
    qs.push(Aabb::new(
        Point3::new(-1e4, -1e4, -1e4),
        Point3::new(1e4, 1e4, 1e4),
    ));
    qs
}

/// Sharded K ∈ {1, 2, 4} vs a single engine over the same index type:
/// byte-identical range result sets (after sort) and kNN lists. Runs with
/// either split mode — uniform slabs or median cuts — since the merge
/// contract is identical for both.
fn check_sharded_split<I, B>(name: &str, data: &[Element], build: B, median: bool)
where
    I: SpatialIndex + KnnIndex + Send,
    B: Fn(&[Element]) -> I,
{
    let single = build(data);
    let mut engine = QueryEngine::new();
    let qs = queries();
    let points = probe_points();
    let mut want_range = BatchResults::new();
    engine.range_collect(&single, data, &qs, &mut want_range);
    for shards in [1usize, 2, 4] {
        let mut sharded = if median {
            ShardedEngine::build_median(data, shards, &build)
        } else {
            ShardedEngine::build(data, shards, &build)
        };
        let mut got_range = BatchResults::new();
        let stats = sharded.range_collect(&qs, &mut got_range);
        assert_eq!(stats.results as usize, got_range.total());
        for qi in 0..qs.len() {
            let mut a = got_range.query_results(qi).to_vec();
            let mut b = want_range.query_results(qi).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{name}: sharded range K={shards} query {qi}");
        }
        // k covers the degenerate corners too: 0 and k > n.
        for k in [0usize, 5, 100] {
            let mut want_knn = KnnBatchResults::new();
            engine.knn_collect(&single, data, &points, k, &mut want_knn);
            let mut got_knn = KnnBatchResults::new();
            sharded.knn_collect(&points, k, &mut got_knn);
            for qi in 0..points.len() {
                assert_eq!(
                    got_knn.query_results(qi),
                    want_knn.query_results(qi),
                    "{name}: sharded knn K={shards} k={k} probe {qi}"
                );
            }
        }
    }
}

fn check_sharded<I, B>(name: &str, data: &[Element], build: B)
where
    I: SpatialIndex + KnnIndex + Send,
    B: Fn(&[Element]) -> I,
{
    check_sharded_split(name, data, build, false);
}

#[test]
fn median_cut_sharding_matches_single_engine() {
    // Median-cut routing must preserve the byte-identical merge guarantee,
    // on both the uniform soups and the clustered dataset shape it targets
    // (datagen's Gaussian-cluster soup; shard-balance numbers for it live
    // in the knn_engine bench, and the router's balance property is unit-
    // tested in engine/sharded.rs).
    let mut sets = all_datasets();
    sets.push(
        ElementSoupBuilder::new()
            .count(1800)
            .clustered(ClusteredConfig {
                clusters: 3,
                sigma: 2.5,
            })
            .seed(0x11)
            .build()
            .elements()
            .to_vec(),
    );
    for data in sets {
        check_sharded_split(
            "Grid/median",
            &data,
            |part| UniformGrid::build(part, GridConfig::auto(part)),
            true,
        );
        check_sharded_split(
            "R-Tree/median",
            &data,
            |part| RTree::bulk_load(part, RTreeConfig::default()),
            true,
        );
        check_sharded_split("LinearScan/median", &data, LinearScan::build, true);
    }
}

#[test]
fn sharded_engine_matches_single_engine_across_indexes() {
    for data in all_datasets() {
        check_sharded("LinearScan", &data, LinearScan::build);
        check_sharded("Grid", &data, |part| {
            UniformGrid::build(part, GridConfig::auto(part))
        });
        check_sharded("Grid/replicate", &data, |part| {
            UniformGrid::build(
                part,
                GridConfig::with_cell_side(
                    GridConfig::auto(part).cell_side,
                    GridPlacement::Replicate,
                ),
            )
        });
        check_sharded("MultiGrid", &data, |part| {
            MultiGrid::build(part, MultiGridConfig::auto(part))
        });
        check_sharded("KD-Tree", &data, KdTree::build);
        check_sharded("Octree", &data, |part| {
            Octree::build(part, OctreeConfig::default())
        });
        check_sharded("R-Tree", &data, |part| {
            RTree::bulk_load(part, RTreeConfig::default())
        });
        check_sharded("CR-Tree", &data, |part| {
            CrTree::build(part, CrTreeConfig::default())
        });
    }
}

#[test]
fn sharded_range_handles_flat() {
    // FLAT only implements range queries; it depends on the dataset slice
    // for execution, which is exactly what per-shard re-identified clones
    // make safe.
    let data = mixed(1500, 0xAB);
    let single = Flat::build(&data, FlatConfig::auto(&data));
    let mut engine = QueryEngine::new();
    let qs = queries();
    let mut want = BatchResults::new();
    engine.range_collect(&single, &data, &qs, &mut want);
    for shards in [2usize, 4] {
        let mut sharded = ShardedEngine::build(&data, shards, |part| {
            Flat::build(part, FlatConfig::auto(part))
        });
        let mut got = BatchResults::new();
        sharded.range_collect(&qs, &mut got);
        for qi in 0..qs.len() {
            let mut a = got.query_results(qi).to_vec();
            let mut b = want.query_results(qi).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "flat sharded K={shards} query {qi}");
        }
    }
}
