//! The consistency harness for epoch-published snapshot reads.
//!
//! The service publishes a monotonically increasing **epoch** after every
//! applied write barrier; [`Consistency::Snapshot`] reads run against the
//! last published epoch without waiting on in-flight writes, and
//! [`Consistency::ReadYourWrites`] reads wait until at least a caller-chosen
//! epoch is published. These tests pin down what that buys and what it
//! must never give up:
//!
//! * **Snapshot ≡ barrier oracle at the reported epoch**: while a writer
//!   mutates the dataset one barrier at a time, concurrent snapshot
//!   readers may observe *any* published epoch — but every reply must be
//!   byte-identical to a serial barrier oracle evaluated at exactly the
//!   epoch the reply reports. A stale answer is fine; a torn answer
//!   (mixing two epochs) or an unpublished epoch is a bug.
//! * **Read-your-writes**: a writer that feeds an acked write's epoch
//!   back as `ReadYourWrites { min_epoch }` always observes its own
//!   write, no matter how many other writers are racing it.
//! * **Epoch reclamation** (property test): replaced snapshot copies are
//!   freed once readers drain — an idle service holds at most one
//!   published snapshot per shard, so the clone-bytes gauge stays within
//!   a constant factor of its post-startup baseline and is stable across
//!   idle polls, no matter how many write rounds retired snapshots.
//!
//! Epoch accounting relies on the scheduler invariant that a healthy
//! snapshot service has published exactly `current_epoch + 1` epochs (the
//! startup epoch 0 plus one per write barrier) — checked after every run
//! here, and under injected publish-path panics by the chaos suite.

use proptest::prelude::*;
use simspatial::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Mixed-size random soup (same recipe as the chaos and stress suites).
fn soup(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(2654435761);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let r = if i % 29 == 0 { 4.0 } else { 0.35 };
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
        })
        .collect()
}

fn mix(h: u32) -> u32 {
    let mut h = h.wrapping_mul(0x9E3779B9) ^ 0xABCD_1234;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^ (h >> 13)
}

fn build(d: &[Element]) -> UniformGrid {
    UniformGrid::build(d, GridConfig::auto(d))
}

/// One deterministic update barrier: epoch `e` (1-based) moves a small,
/// e-dependent set of elements to fresh box envelopes.
fn write_batch(e: u64, data_len: u32) -> Vec<(ElementId, Aabb)> {
    (0..6u32)
        .map(|q| {
            let h = mix(e as u32 ^ q.wrapping_mul(0x9E37));
            let id = h % data_len;
            let x = (h % 880) as f32 / 10.0;
            let y = ((h >> 8) % 880) as f32 / 10.0;
            let z = ((h >> 16) % 880) as f32 / 10.0;
            (
                id,
                Aabb::new(Point3::new(x, y, z), Point3::new(x + 1.2, y + 1.2, z + 1.2)),
            )
        })
        .collect()
}

/// The fixed probe set every snapshot reader cycles through: ranges of
/// varying selectivity, counts, and kNN — everything a snapshot may serve.
fn probes() -> Vec<Request> {
    vec![
        Request::Range(vec![Aabb::new(
            Point3::new(10.0, 10.0, 10.0),
            Point3::new(30.0, 30.0, 30.0),
        )]),
        Request::Range(vec![
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(99.0, 99.0, 99.0)),
            Aabb::new(Point3::new(70.0, 5.0, 40.0), Point3::new(85.0, 25.0, 60.0)),
        ]),
        Request::RangeCount(vec![
            Aabb::new(Point3::new(20.0, 40.0, 20.0), Point3::new(60.0, 80.0, 55.0)),
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(15.0, 15.0, 15.0)),
        ]),
        Request::Knn(vec![(Point3::new(45.0, 45.0, 45.0), 6)]),
        Request::Knn(vec![
            (Point3::new(12.0, 80.0, 33.0), 3),
            (Point3::new(88.0, 8.0, 71.0), 9),
        ]),
    ]
}

/// Serial barrier oracle: the same sharded engine, driven one request at a
/// time on the caller's thread.
struct Oracle(ShardedEngine<UniformGrid>);

impl Oracle {
    fn new(data: &[Element], shards: usize) -> Oracle {
        Oracle(ShardedEngine::build(data, shards, build).with_rebuild(build))
    }

    fn apply(&mut self, batch: &[(ElementId, Aabb)]) {
        let updates: Vec<(ElementId, Shape)> =
            batch.iter().map(|&(id, bb)| (id, Shape::Box(bb))).collect();
        self.0.update_batch(&updates);
    }

    fn answer(&mut self, request: &Request) -> Response {
        match request {
            Request::Range(qs) => {
                let mut out = BatchResults::new();
                self.0.range_collect(qs, &mut out);
                Response::Range(
                    (0..qs.len())
                        .map(|q| out.query_results(q).to_vec())
                        .collect(),
                )
            }
            Request::RangeCount(qs) => {
                let mut out = BatchResults::new();
                self.0.range_collect(qs, &mut out);
                Response::RangeCount(
                    (0..qs.len())
                        .map(|q| out.query_results(q).len() as u64)
                        .collect(),
                )
            }
            Request::Knn(ps) => Response::Knn(
                ps.iter()
                    .map(|(p, k)| {
                        let mut out = KnnBatchResults::new();
                        self.0.knn_collect(&[*p], *k, &mut out);
                        out.query_results(0).to_vec()
                    })
                    .collect(),
            ),
            other => panic!("oracle cannot answer {other:?}"),
        }
    }
}

/// Snapshot replies are byte-identical to the barrier oracle **at the epoch
/// each reply reports** — stale is fine, torn or unpublished is not.
///
/// A writer applies `WRITES` update barriers strictly serially (submit,
/// redeem, next), so the published epoch `e` is exactly "the initial soup
/// plus the first `e` batches" and the oracle can precompute every epoch's
/// answer for every probe up front. Concurrent snapshot readers then race
/// the writer and check every reply against the precomputed table row its
/// reported epoch selects.
#[test]
fn snapshot_replies_match_barrier_oracle_at_reported_epoch() {
    const SHARDS: usize = 4;
    const WRITES: u64 = 32;
    const READERS: usize = 3;

    let data = soup(1200, 0x5EED);
    let probe_set = probes();

    // expected[e][p] = the barrier answer to probe p after the first e
    // write batches.
    let mut oracle = Oracle::new(&data, SHARDS);
    let mut expected: Vec<Vec<Response>> = Vec::with_capacity(WRITES as usize + 1);
    expected.push(probe_set.iter().map(|r| oracle.answer(r)).collect());
    for e in 1..=WRITES {
        oracle.apply(&write_batch(e, data.len() as u32));
        expected.push(probe_set.iter().map(|r| oracle.answer(r)).collect());
    }
    let expected = Arc::new(expected);

    let engine = ShardedEngine::build(&data, SHARDS, build).with_rebuild(build);
    let service = SpatialService::spawn(
        ShardedBackend::spawn_snapshot(engine),
        ServiceConfig::default().no_coalesce(),
    );
    let handle = service.handle();

    // Readers race the writer: any published epoch is acceptable, but the
    // payload must equal that exact epoch's oracle row.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let handle = handle.clone();
            let expected = Arc::clone(&expected);
            let probe_set = probes();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed = std::collections::BTreeSet::new();
                let mut i = r; // desynchronise the probe cycles
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let p = i % probe_set.len();
                    i += 1;
                    let ticket = handle
                        .submit_at(probe_set[p].clone(), Consistency::Snapshot)
                        .expect("snapshot submit");
                    let reply = ticket.recv_reply().expect("snapshot read failed");
                    assert!(
                        reply.epoch <= WRITES,
                        "reader {r} observed unpublished epoch {}",
                        reply.epoch
                    );
                    assert_eq!(
                        reply.response, expected[reply.epoch as usize][p],
                        "reader {r} probe {p}: reply at epoch {} is not the \
                         barrier answer at that epoch",
                        reply.epoch
                    );
                    observed.insert(reply.epoch);
                }
                observed
            })
        })
        .collect();

    // The serial writer: each barrier must ack with its own (consecutive)
    // epoch — that is what makes the precomputed table indexable by epoch.
    for e in 1..=WRITES {
        let ticket = handle
            .submit(Request::Update(write_batch(e, data.len() as u32)))
            .expect("write submit");
        let ack = ticket.recv_reply().expect("write failed");
        assert_eq!(
            ack.epoch, e,
            "serial write {e} was published under a different epoch"
        );
        // A short stall every few barriers gives readers epochs to observe
        // mid-stream (not only the final state) without timing assertions.
        if e % 4 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut observed = std::collections::BTreeSet::new();
    for r in readers {
        observed.extend(r.join().expect("reader panicked"));
    }
    assert!(
        !observed.is_empty(),
        "readers never completed a snapshot read"
    );

    // Quiesced: snapshot and barrier answers agree at the final epoch.
    for (p, probe) in probe_set.iter().enumerate() {
        let snap = handle
            .submit_at(probe.clone(), Consistency::Snapshot)
            .expect("submit")
            .recv_reply()
            .expect("snapshot read");
        assert_eq!(
            snap.epoch, WRITES,
            "quiesced snapshot is not at the head epoch"
        );
        assert_eq!(snap.response, expected[WRITES as usize][p]);
        let barrier = handle
            .submit_at(probe.clone(), Consistency::Barrier)
            .expect("submit")
            .recv_reply()
            .expect("barrier read");
        assert_eq!(barrier.epoch, WRITES);
        assert_eq!(barrier.response, expected[WRITES as usize][p]);
    }

    let stats = service.shutdown();
    assert_eq!(stats.current_epoch, WRITES);
    assert_eq!(
        stats.epochs_published,
        WRITES + 1,
        "every epoch must publish exactly once (startup 0 + one per barrier)"
    );
    assert!(stats.snapshot_reads >= observed.len() as u64);
    assert!(stats.snapshot_clone_bytes > 0);
    assert_eq!(stats.failed_requests, 0);
    assert_eq!(stats.panics_caught, 0);
}

/// `ReadYourWrites { min_epoch }` always observes the caller's own acked
/// write, however many other writers race it: each writer moves one of its
/// own elements, takes the ack's epoch as the floor, and the floored read
/// must return that element from the moved-to envelope.
#[test]
fn read_your_writes_observes_own_acked_writes_under_contention() {
    const WRITERS: u32 = 4;
    const ROUNDS: u32 = 12;

    let data = soup(900, 0x0B5E);
    let engine = ShardedEngine::build(&data, 4, build).with_rebuild(build);
    let service = SpatialService::spawn(
        ShardedBackend::spawn_snapshot(engine),
        ServiceConfig::default().no_coalesce(),
    );
    let handle = service.handle();

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                for r in 0..ROUNDS {
                    // A per-(writer, round) unique destination inside the
                    // soup's coordinate range.
                    let id = w * 101 + r; // disjoint per writer
                    let x = 5.0 + w as f32 * 21.0 + r as f32 * 1.4;
                    let y = 8.0 + w as f32 * 3.0;
                    let z = 12.0 + r as f32 * 5.0;
                    let dest =
                        Aabb::new(Point3::new(x, y, z), Point3::new(x + 0.8, y + 0.8, z + 0.8));
                    let ack = handle
                        .submit(Request::Update(vec![(id, dest)]))
                        .expect("write submit")
                        .recv_reply()
                        .expect("write failed");
                    assert!(ack.epoch > 0, "write acked without a published epoch");

                    let probe = Aabb::new(
                        Point3::new(x - 0.1, y - 0.1, z - 0.1),
                        Point3::new(x + 0.9, y + 0.9, z + 0.9),
                    );
                    let reply = handle
                        .submit_at(
                            Request::Range(vec![probe]),
                            Consistency::ReadYourWrites {
                                min_epoch: ack.epoch,
                            },
                        )
                        .expect("read submit")
                        .recv_reply()
                        .expect("read failed");
                    assert!(
                        reply.epoch >= ack.epoch,
                        "writer {w} round {r}: read ran at epoch {} < acked {}",
                        reply.epoch,
                        ack.epoch
                    );
                    let ids = match &reply.response {
                        Response::Range(per_query) => &per_query[0],
                        other => panic!("unexpected response {other:?}"),
                    };
                    assert!(
                        ids.contains(&id),
                        "writer {w} round {r}: own write (element {id}, acked at \
                         epoch {}) invisible to ReadYourWrites at epoch {}",
                        ack.epoch,
                        reply.epoch
                    );
                }
            })
        })
        .collect();
    for t in writers {
        t.join().expect("writer panicked");
    }

    let stats = service.shutdown();
    assert_eq!(stats.current_epoch, (WRITERS * ROUNDS) as u64);
    assert_eq!(stats.epochs_published, (WRITERS * ROUNDS) as u64 + 1);
    assert_eq!(stats.failed_requests, 0);
    assert_eq!(stats.panics_caught, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Epoch reclamation: update-only write rounds retire one snapshot per
    // touched shard each; once readers drain, only the latest per shard is
    // retained. The clone-bytes gauge therefore (a) stays within a
    // constant factor of the post-startup baseline regardless of how many
    // rounds ran, and (b) is identical across consecutive idle polls — an
    // idle service holds at most one published snapshot per shard, it
    // never accretes retired ones.
    #[test]
    fn retired_snapshots_are_reclaimed(seed in 0u32..10_000, rounds in 1u64..10) {
        let data = soup(400, 0xA11C ^ seed);
        let engine = ShardedEngine::build(&data, 2, build).with_rebuild(build);
        let service = SpatialService::spawn(
            ShardedBackend::spawn_snapshot(engine),
            ServiceConfig::default().no_coalesce(),
        );
        let handle = service.handle();

        // One redeemed snapshot read guarantees the startup publish
        // happened before the baseline sample.
        let first = handle
            .submit_at(Request::RangeCount(vec![Aabb::new(
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(99.0, 99.0, 99.0),
            )]), Consistency::Snapshot)
            .expect("submit")
            .recv_reply()
            .expect("snapshot read");
        prop_assert_eq!(first.epoch, 0);
        let baseline = handle.stats().snapshot_clone_bytes;
        prop_assert!(baseline > 0, "startup publish retained no snapshot bytes");

        for e in 1..=rounds {
            let ack = handle
                .submit(Request::Update(write_batch(e, data.len() as u32)))
                .expect("write submit")
                .recv_reply()
                .expect("write failed");
            prop_assert_eq!(ack.epoch, e);
            let read = handle
                .submit_at(Request::RangeCount(vec![Aabb::new(
                    Point3::new(0.0, 0.0, 0.0),
                    Point3::new(99.0, 99.0, 99.0),
                )]), Consistency::Snapshot)
                .expect("submit")
                .recv_reply()
                .expect("snapshot read");
            prop_assert_eq!(read.epoch, e);
        }

        // Readers drained; the gauge must be stable and baseline-sized.
        let g1 = handle.stats().snapshot_clone_bytes;
        let g2 = handle.stats().snapshot_clone_bytes;
        prop_assert_eq!(g1, g2, "idle clone-bytes gauge drifted with no traffic");
        prop_assert!(g1 > 0);
        prop_assert!(
            g1 <= baseline.saturating_mul(2),
            "clone bytes grew past 2x baseline after {} update-only rounds: \
             {} -> {} (retired snapshots not reclaimed?)",
            rounds, baseline, g1
        );

        let stats = service.shutdown();
        prop_assert_eq!(stats.current_epoch, rounds);
        prop_assert_eq!(stats.epochs_published, rounds + 1);
        prop_assert_eq!(stats.failed_requests, 0);
    }
}
