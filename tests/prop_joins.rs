//! Property-based tests of the join algorithms: all five produce the same
//! pair set as the nested-loop ground truth on arbitrary inputs, and the
//! result obeys the join semantics.

use proptest::prelude::*;
use simspatial::prelude::*;

fn arb_elements() -> impl Strategy<Value = Vec<Element>> {
    prop::collection::vec(
        (
            (-30.0f32..30.0, -30.0f32..30.0, -30.0f32..30.0),
            0.05f32..2.0,
        ),
        0..120,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), r))| {
                Element::new(
                    i as ElementId,
                    Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_agree(elements in arb_elements(), eps in 0.0f32..3.0) {
        let config = JoinConfig::within(eps);
        let truth = self_join(&elements, &config, JoinAlgorithm::NestedLoop);
        for algo in [
            JoinAlgorithm::PlaneSweep,
            JoinAlgorithm::PbsmGrid,
            JoinAlgorithm::TreeJoin,
            JoinAlgorithm::SmallCellGrid,
        ] {
            let got = self_join(&elements, &config, algo);
            prop_assert_eq!(&got, &truth, "{} diverged at eps {}", algo.name(), eps);
        }
    }

    #[test]
    fn join_semantics_hold(elements in arb_elements(), eps in 0.0f32..2.0) {
        let pairs = self_join(&elements, &JoinConfig::within(eps), JoinAlgorithm::PbsmGrid);
        // Every reported pair is genuinely within eps; canonical; unique.
        for w in pairs.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &(a, b) in &pairs {
            prop_assert!(a < b);
            let d = elements[a as usize].shape.distance_to_shape(&elements[b as usize].shape);
            prop_assert!(d <= eps + 1e-3, "pair ({a},{b}) at distance {d} > eps {eps}");
        }
    }

    #[test]
    fn join_is_monotone_in_eps(elements in arb_elements(), eps in 0.0f32..2.0) {
        let small = self_join(&elements, &JoinConfig::within(eps), JoinAlgorithm::PbsmGrid);
        let large = self_join(&elements, &JoinConfig::within(eps + 1.0), JoinAlgorithm::PbsmGrid);
        let large_set: std::collections::HashSet<_> = large.iter().collect();
        for p in &small {
            prop_assert!(large_set.contains(p), "pair {p:?} lost when eps grew");
        }
    }
}
