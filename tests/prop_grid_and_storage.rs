//! Property-based tests of the grid family and the storage substrate.

use proptest::prelude::*;
use simspatial::prelude::*;
use simspatial::storage::{PageId, PageStore, PAGE_SIZE};

fn arb_elements(max: usize) -> impl Strategy<Value = Vec<Element>> {
    prop::collection::vec(
        (
            (-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0),
            0.05f32..3.0,
        ),
        1..max,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), r))| {
                Element::new(
                    i as ElementId,
                    Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn grid_equals_scan_for_any_data_and_resolution(
        elements in arb_elements(200),
        cell in 0.5f32..40.0,
        replicate in any::<bool>(),
        q in ((-60.0f32..60.0, -60.0f32..60.0, -60.0f32..60.0), 1.0f32..40.0),
    ) {
        let placement = if replicate { GridPlacement::Replicate } else { GridPlacement::Center };
        let grid = UniformGrid::build(&elements, GridConfig::with_cell_side(cell, placement));
        let scan = LinearScan::build(&elements);
        let qmin = Point3::new(q.0 .0, q.0 .1, q.0 .2);
        let qbox = Aabb::new(qmin, Point3::new(qmin.x + q.1, qmin.y + q.1, qmin.z + q.1));
        let mut a = grid.range(&elements, &qbox);
        let mut b = scan.range(&elements, &qbox);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(&a, &b);
        // The batched SoA path must also agree with the seed's scalar
        // reference path on the same structure.
        let mut c = grid.range_scalar_reference(&elements, &qbox);
        c.sort_unstable();
        prop_assert_eq!(a, c);
    }

    #[test]
    fn grid_update_tracks_random_moves(
        elements in arb_elements(120),
        moves in prop::collection::vec((any::<usize>(), (-20.0f32..20.0, -20.0f32..20.0, -20.0f32..20.0)), 1..60),
    ) {
        let mut grid = UniformGrid::build(
            &elements,
            GridConfig::with_cell_side(5.0, GridPlacement::Center),
        );
        let mut live = elements.clone();
        for (i, d) in moves {
            let i = i % live.len();
            let old = live[i].clone();
            let mut new = old.clone();
            new.translate(Vec3::new(d.0, d.1, d.2));
            grid.update(&old, &new);
            live[i] = new;
        }
        prop_assert_eq!(grid.len(), live.len());
        let scan = LinearScan::build(&live);
        let q = Aabb::new(Point3::new(-80.0, -80.0, -80.0), Point3::new(80.0, 80.0, 80.0));
        let mut a = grid.range(&live, &q);
        let mut b = scan.range(&live, &q);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "full-universe query after moves must see everything");
    }

    #[test]
    fn multigrid_equals_scan(elements in arb_elements(150),
                             q in ((-60.0f32..60.0, -60.0f32..60.0, -60.0f32..60.0), 1.0f32..50.0)) {
        let mg = MultiGrid::build(&elements, MultiGridConfig::auto(&elements));
        let scan = LinearScan::build(&elements);
        let qmin = Point3::new(q.0 .0, q.0 .1, q.0 .2);
        let qbox = Aabb::new(qmin, Point3::new(qmin.x + q.1, qmin.y + q.1, qmin.z + q.1));
        let mut a = mg.range(&elements, &qbox);
        let mut b = scan.range(&elements, &qbox);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn buffer_pool_matches_model(capacity in 1usize..16,
                                 accesses in prop::collection::vec(0u32..32, 1..200)) {
        // Model: a simple LRU list; check hit/miss parity with the pool.
        let mut store = PageStore::new();
        for i in 0..32u32 {
            let id = store.allocate();
            store.write(id, &[i as u8]);
        }
        let mut pool = BufferPool::new(BufferPoolConfig {
            capacity_pages: capacity,
            disk: DiskModel::sas_2014(),
        });
        let mut lru: Vec<u32> = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for &page in &accesses {
            let data = pool.read(&store, PageId(page));
            prop_assert_eq!(data.len(), PAGE_SIZE);
            prop_assert_eq!(data[0], page as u8, "pool returned wrong page contents");
            if let Some(pos) = lru.iter().position(|&p| p == page) {
                lru.remove(pos);
                hits += 1;
            } else {
                misses += 1;
                if lru.len() == capacity {
                    lru.pop();
                }
            }
            lru.insert(0, page);
            prop_assert!(pool.cached_pages() <= capacity);
        }
        let s = pool.stats();
        prop_assert_eq!((s.hits, s.misses), (hits, misses), "pool diverged from LRU model");
    }

    #[test]
    fn plasticity_stats_hold_for_any_seed(seed in any::<u64>()) {
        let mut model = PlasticityModel::paper_calibrated(seed);
        let stats = DisplacementStats::measure(&model.sample_step(20_000));
        prop_assert!((stats.mean - 0.04).abs() < 0.004, "mean {}", stats.mean);
        prop_assert!(stats.tail_fraction < 0.005, "tail {}", stats.tail_fraction);
        prop_assert!(stats.moved_fraction > 0.999);
    }
}
