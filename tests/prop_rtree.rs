//! Property-based tests of the R-Tree: structural invariants and answer
//! equivalence with a model (brute-force) implementation under arbitrary
//! operation sequences — the discipline the paper's update experiments
//! depend on.

use proptest::prelude::*;
use simspatial::prelude::*;

/// A model index: just the live entry set.
#[derive(Default)]
struct Model {
    entries: Vec<(ElementId, Aabb)>,
}

impl Model {
    fn range(&self, q: &Aabb) -> Vec<ElementId> {
        let mut v: Vec<ElementId> = self
            .entries
            .iter()
            .filter(|(_, b)| b.intersects(q))
            .map(|(id, _)| *id)
            .collect();
        v.sort_unstable();
        v
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert((f32, f32, f32), (f32, f32, f32)),
    Delete(usize),
    Move(usize, (f32, f32, f32)),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let coord = -50.0f32..50.0;
    let ext = 0.1f32..5.0;
    prop_oneof![
        3 => ((coord.clone(), coord.clone(), coord.clone()),
              (ext.clone(), ext.clone(), ext.clone()))
            .prop_map(|(p, e)| Op::Insert(p, e)),
        1 => any::<usize>().prop_map(Op::Delete),
        2 => (any::<usize>(), (-2.0f32..2.0, -2.0f32..2.0, -2.0f32..2.0))
            .prop_map(|(i, d)| Op::Move(i, d)),
    ]
}

fn apply(ops: &[Op], tree: &mut RTree, model: &mut Model, bottom_up: bool) {
    let mut next_id = 0u32;
    for op in ops {
        match op {
            Op::Insert(p, e) => {
                let min = Point3::new(p.0, p.1, p.2);
                let bbox = Aabb::new(min, Point3::new(p.0 + e.0, p.1 + e.1, p.2 + e.2));
                let id = next_id;
                next_id += 1;
                tree.insert(id, bbox);
                model.entries.push((id, bbox));
            }
            Op::Delete(i) => {
                if model.entries.is_empty() {
                    continue;
                }
                let i = i % model.entries.len();
                let (id, bbox) = model.entries.swap_remove(i);
                assert!(tree.delete(id, &bbox), "delete of live entry {id} failed");
            }
            Op::Move(i, d) => {
                if model.entries.is_empty() {
                    continue;
                }
                let i = i % model.entries.len();
                let (id, old) = model.entries[i];
                let new = old.translate(Vec3::new(d.0, d.1, d.2));
                let ok = if bottom_up {
                    tree.update_bottom_up(id, &old, new)
                } else {
                    tree.update(id, &old, new)
                };
                assert!(ok, "update of live entry {id} failed");
                model.entries[i].1 = new;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_op_sequences_preserve_invariants(ops in prop::collection::vec(arb_op(), 1..120),
                                                  bottom_up in any::<bool>()) {
        let mut tree = RTree::new(RTreeConfig::default());
        let mut model = Model::default();
        apply(&ops, &mut tree, &mut model, bottom_up);

        tree.validate();
        prop_assert_eq!(tree.len(), model.entries.len());

        // Answers equal the model on a probe grid.
        for i in 0..5 {
            let c = -40.0 + 20.0 * i as f32;
            let q = Aabb::new(Point3::new(c, c, c), Point3::new(c + 25.0, c + 25.0, c + 25.0));
            let mut got = tree.range_bbox(&q);
            got.sort_unstable();
            prop_assert_eq!(got, model.range(&q), "query {} diverged", i);
        }
    }

    #[test]
    fn bulk_load_equals_incremental(seed in 0u64..1000, n in 1usize..400) {
        // Deterministic pseudo-random entries from the seed.
        let entries: Vec<(ElementId, Aabb)> = (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed;
                let x = (h % 1000) as f32 / 10.0;
                let y = ((h >> 10) % 1000) as f32 / 10.0;
                let z = ((h >> 20) % 1000) as f32 / 10.0;
                (i as ElementId, Aabb::new(
                    Point3::new(x, y, z),
                    Point3::new(x + 1.0, y + 1.0, z + 1.0),
                ))
            })
            .collect();
        let bulk = RTree::bulk_load_entries(
            entries.iter().map(|&(id, b)| (b, id)).collect(),
            RTreeConfig::default(),
        );
        bulk.validate();
        let mut inc = RTree::new(RTreeConfig::default());
        for &(id, b) in &entries {
            inc.insert(id, b);
        }
        prop_assert_eq!(bulk.len(), inc.len());
        for i in 0..4 {
            let c = 25.0 * i as f32;
            let q = Aabb::new(Point3::new(c, 0.0, 0.0), Point3::new(c + 30.0, 100.0, 100.0));
            let mut a = bulk.range_bbox(&q);
            let mut b = inc.range_bbox(&q);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn knn_distances_are_sorted_and_complete(seed in 0u64..500, k in 1usize..30) {
        let data: Vec<Element> = (0..200u32)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed;
                let x = (h % 500) as f32 / 10.0;
                let y = ((h >> 10) % 500) as f32 / 10.0;
                let z = ((h >> 20) % 500) as f32 / 10.0;
                Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), 0.3)))
            })
            .collect();
        let tree = RTree::bulk_load(&data, RTreeConfig::default());
        let p = Point3::new(25.0, 25.0, 25.0);
        let got = tree.knn(&data, &p, k);
        prop_assert_eq!(got.len(), k.min(200));
        for w in got.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-5);
        }
        // The k-th distance must match the brute-force k-th distance.
        let scan = LinearScan::build(&data);
        let truth = scan.knn(&data, &p, k);
        prop_assert!((got.last().unwrap().1 - truth.last().unwrap().1).abs() < 1e-3);
    }
}
