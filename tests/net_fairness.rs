//! Multi-tenant fairness under overload: a hot tenant flooding the
//! server open-loop must not starve a low-weight trickle tenant.
//!
//! The deterministic deficit-round-robin ratio (9:1 weights → 9:1
//! admissions) is pinned by unit tests inside `simspatial-net`; this
//! test proves the end-to-end property those ratios exist for: with the
//! backend deliberately slowed and the hot tenant provably overloading
//! its queues (sheds observed), every one of the trickle tenant's
//! requests — ~5% of demand at 10% weight — is admitted, completes
//! correctly, and is never shed. A starvation regression either hangs
//! this test (trickle call never returns) or trips the shed/latency
//! assertions.

use simspatial::prelude::*;
use simspatial_service::{BatchReport, ServiceBackend};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A backend that takes a fixed nap per query batch — slow enough that
/// an open-loop producer saturates admission, deterministic enough for
/// a test.
struct SlowBackend<B: ServiceBackend> {
    inner: B,
    nap: Duration,
}

impl<B: ServiceBackend> ServiceBackend for SlowBackend<B> {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport {
        std::thread::sleep(self.nap);
        self.inner.range_batch(queries, out)
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport {
        std::thread::sleep(self.nap);
        self.inner.knn_batch(points, k, out)
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.inner.shard_sizes()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

fn probe() -> Request {
    Request::RangeCount(vec![Aabb::new(
        Point3::new(0.0, 0.0, 0.0),
        Point3::new(30.0, 30.0, 30.0),
    )])
}

#[test]
fn hot_tenant_cannot_starve_trickle_tenant() {
    let data: Vec<Element> = (0..300)
        .map(|i| {
            let x = (i % 60) as f32;
            Element::new(
                i,
                Shape::Sphere(Sphere::new(Point3::new(x, x * 0.3, 2.0), 0.5)),
            )
        })
        .collect();
    let backend = SlowBackend {
        inner: EngineBackend::build(data, |d| UniformGrid::build(d, GridConfig::auto(d))),
        nap: Duration::from_millis(1),
    };
    // Small intake queue + no coalescing: each request costs a full nap,
    // so backlog forms in the per-tenant staging queues where the DRR
    // pump and the in-flight caps arbitrate.
    let service = SpatialService::spawn(
        backend,
        ServiceConfig::default().no_coalesce().with_queue_cap(8),
    );
    let cfg = NetConfig::default()
        .with_tenants(vec![
            TenantSpec::new("hot", 9).with_caps(6, 32),
            TenantSpec::new("trickle", 1).with_caps(2, 8),
        ])
        .reject_unknown_tenants();
    let server = NetServer::bind(service, "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    const TRICKLE_CALLS: u32 = 40;
    let stop = AtomicBool::new(false);
    let mut trickle_latencies: Vec<Duration> = Vec::new();

    std::thread::scope(|scope| {
        // Two hot connections flood open-loop: fire pipelined requests as
        // fast as the socket accepts, never waiting for replies, until
        // the trickle tenant is done.
        for _ in 0..2 {
            let stop = &stop;
            scope.spawn(move || {
                let mut conn = NetClient::connect(addr, "hot").unwrap();
                let mut fired = 0u32;
                while !stop.load(Ordering::Acquire) {
                    for _ in 0..16 {
                        conn.enqueue(&probe()).unwrap();
                        fired += 1;
                    }
                    conn.flush().unwrap();
                    // Never reads: replies and Retry frames pile up in
                    // the socket buffers — the worst-behaved client the
                    // protocol allows.
                    std::thread::sleep(Duration::from_millis(2));
                }
                // Closing mid-backlog is fine: staged requests resolve
                // server-side and their frames are dropped.
                fired
            });
        }

        // The trickle tenant: sequential, one request at a time — about
        // 5% of the hot tenants' demand.
        let trickle_latencies = &mut trickle_latencies;
        let stop = &stop;
        scope.spawn(move || {
            let mut conn = NetClient::connect(addr, "trickle").unwrap();
            for i in 0..TRICKLE_CALLS {
                let start = std::time::Instant::now();
                match conn.call(&probe()).unwrap() {
                    CallOutcome::Reply { response, .. } => {
                        let counts = response.into_range_counts().expect("count reply");
                        assert!(counts[0] > 0, "call {i}: wrong answer under contention");
                    }
                    other => panic!("trickle call {i} not served: {other:?}"),
                }
                trickle_latencies.push(start.elapsed());
            }
            stop.store(true, Ordering::Release);
        });
    });

    let stats = server.shutdown();
    let tenant = |name: &str| {
        stats
            .tenants
            .iter()
            .find(|t| t.name == name)
            .unwrap_or_else(|| panic!("tenant {name} missing from stats"))
            .clone()
    };
    let hot = tenant("hot");
    let trickle = tenant("trickle");

    // The hot tenant really overloaded its lane: its staging queue
    // overflowed into protocol-level sheds. Without overload this test
    // proves nothing, so it is an assertion, not a maybe.
    assert!(
        hot.shed > 0,
        "hot tenant was never shed — not an overload scenario (admitted {})",
        hot.admitted
    );
    assert!(
        hot.admitted > u64::from(TRICKLE_CALLS),
        "hot load dwarfs trickle"
    );

    // The trickle tenant rode through untouched: every call admitted,
    // completed, never shed.
    assert_eq!(trickle.shed, 0, "trickle tenant was shed under overload");
    assert_eq!(trickle.admitted, u64::from(TRICKLE_CALLS));
    assert_eq!(trickle.completed, u64::from(TRICKLE_CALLS));
    assert_eq!(trickle.failed, 0);

    // And not merely eventually: its median round trip stays within a
    // small multiple of the work it queues behind at its weighted share
    // (service queue ≤ 8 naps + DRR slack; 500ms is ~20x that ceiling,
    // loose enough for CI noise, tight enough to fail a starved run
    // where calls sit behind the hot backlog for seconds).
    let mut sorted = trickle_latencies.clone();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    assert!(
        median < Duration::from_millis(500),
        "trickle median latency {median:?} — starved behind the hot tenant"
    );
}
