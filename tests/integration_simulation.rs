//! Cross-crate integration: full simulation runs — every workload × every
//! update strategy — with per-step consistency checks against ground truth.

use simspatial::prelude::*;

fn sorted(mut v: Vec<ElementId>) -> Vec<ElementId> {
    v.sort_unstable();
    v
}

fn check_consistency(sim: &Simulation, label: &str) {
    let scan = LinearScan::build(sim.data().elements());
    let mut w = QueryWorkload::new(sim.data().universe(), 1234);
    for q in w.range_queries(1e-3, 5) {
        let got = sorted(sim.strategy().range(sim.data().elements(), &q));
        let truth = sorted(scan.range(sim.data().elements(), &q));
        assert_eq!(got, truth, "{label} diverged on {q:?}");
    }
}

#[test]
fn every_strategy_survives_a_plasticity_run() {
    for kind in UpdateStrategyKind::ALL {
        let data = ElementSoupBuilder::new()
            .count(1500)
            .universe_side(40.0)
            .seed(21)
            .build();
        let mut sim = Simulation::new(
            data,
            Box::new(PlasticityWorkload::with_sigma(0.05, 5)),
            SimulationConfig {
                strategy: kind,
                monitor_queries_per_step: 5,
                monitor_selectivity: 1e-3,
                seed: 2,
            },
        );
        let reports = sim.run(4);
        assert_eq!(reports.len(), 4);
        check_consistency(&sim, kind.name());
    }
}

#[test]
fn nbody_run_with_grid_strategy() {
    let n = 600;
    let data = ElementSoupBuilder::new()
        .count(n)
        .universe_side(80.0)
        .clustered(ClusteredConfig {
            clusters: 2,
            sigma: 8.0,
        })
        .seed(31)
        .build();
    let mut sim = Simulation::new(
        data,
        Box::new(NBodyWorkload::new(n)),
        SimulationConfig {
            strategy: UpdateStrategyKind::GridMigrate,
            monitor_queries_per_step: 5,
            monitor_selectivity: 1e-3,
            seed: 3,
        },
    );
    sim.run(4);
    check_consistency(&sim, "nbody/grid");
    // Everything must remain finite and inside the universe.
    for e in sim.data().elements() {
        assert!(e.center().is_finite());
        assert!(sim.data().universe().contains_point(&e.center()));
    }
}

#[test]
fn material_workload_queries_the_index_under_test() {
    let data = ElementSoupBuilder::new()
        .count(800)
        .universe_side(30.0)
        .seed(41)
        .build();
    let mut sim = Simulation::new(
        data,
        Box::new(MaterialWorkload::new(2.0, 0.2)),
        SimulationConfig {
            strategy: UpdateStrategyKind::LazyGraceWindow,
            monitor_queries_per_step: 5,
            monitor_selectivity: 1e-3,
            seed: 4,
        },
    );
    let reports = sim.run(3);
    // The update phase issues n range queries per step through the index;
    // it must take measurable time and stay correct.
    assert!(reports.iter().all(|r| r.update_s > 0.0));
    check_consistency(&sim, "material/grace-window");
}

#[test]
fn simulation_determinism_per_seed() {
    let run = || {
        let data = ElementSoupBuilder::new()
            .count(400)
            .universe_side(20.0)
            .seed(55)
            .build();
        let mut sim = Simulation::new(
            data,
            Box::new(PlasticityWorkload::with_sigma(0.1, 9)),
            SimulationConfig {
                strategy: UpdateStrategyKind::GridMigrate,
                monitor_queries_per_step: 0,
                monitor_selectivity: 1e-3,
                seed: 6,
            },
        );
        sim.run(3);
        sim.data().elements().to_vec()
    };
    assert_eq!(
        run(),
        run(),
        "same seeds must reproduce the same trajectory"
    );
}

#[test]
fn join_results_stay_consistent_across_steps() {
    let data = ElementSoupBuilder::new()
        .count(700)
        .universe_side(25.0)
        .seed(61)
        .build();
    let mut sim = Simulation::new(
        data,
        Box::new(PlasticityWorkload::with_sigma(0.05, 3)),
        SimulationConfig {
            strategy: UpdateStrategyKind::GridMigrate,
            monitor_queries_per_step: 0,
            monitor_selectivity: 1e-3,
            seed: 7,
        },
    );
    for _ in 0..3 {
        sim.run_step();
        let config = JoinConfig::within(0.5);
        let truth = self_join(sim.data().elements(), &config, JoinAlgorithm::NestedLoop);
        for algo in [
            JoinAlgorithm::PbsmGrid,
            JoinAlgorithm::SmallCellGrid,
            JoinAlgorithm::TreeJoin,
        ] {
            let got = self_join(sim.data().elements(), &config, algo);
            assert_eq!(got, truth, "{} diverged mid-simulation", algo.name());
        }
    }
}
