//! Deterministic chaos coverage for the fault-tolerant service.
//!
//! Every test drives the service **sequentially** (submit one request,
//! redeem its ticket, then submit the next) so each request maps to
//! exactly one backend call and a [`FaultPlan`]'s op indices line up with
//! request indices — the same plan and the same request stream reproduce
//! the exact same failures on every run. The properties checked:
//!
//! * **No hangs**: every admitted ticket resolves (all redemptions go
//!   through `recv_deadline` with a generous bound, so a lost completion
//!   fails the test instead of wedging it).
//! * **Differential**: requests untouched by dispatcher-level faults
//!   return responses *byte-identical* to a serial oracle over the same
//!   surviving write stream; faulted requests fail **typed**
//!   ([`RecvError::WorkerFailed`]) and their writes are provably not
//!   applied (the oracle skips them and later reads still agree).
//! * **Supervision**: a panicked shard worker is quarantined and
//!   restarted from the planner's element store (telemetry counters match
//!   the plan); with the restart budget exhausted the shard dies, after
//!   which range/count degrade to partial coverage
//!   ([`Reply::shards_skipped`]) and kNN fails typed.
//! * **Deadlines & retries**: expiry at admission and at completion, all
//!   four ticket-redemption flavours against a stalled backend, and
//!   `submit_with_retry` waiting out a full intake queue.
//! * **Poisoning**: a write panic with no recovery path fails fast — every
//!   queued and subsequent request completes typed, nothing hangs.

use simspatial::prelude::*;
use simspatial_service::{BatchReport, RecvError, ServiceBackend, UpdateReport};
use std::sync::Once;
use std::time::Duration;

/// Installs a panic hook that silences the *injected* panics (payloads
/// prefixed `"chaos:"`) so chaos runs don't spray expected backtraces over
/// the test output. Real panics still print through the default hook.
fn quiet_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<&str>()
                .map(|s| s.contains("chaos:"))
                .or_else(|| {
                    payload
                        .downcast_ref::<String>()
                        .map(|s| s.contains("chaos:"))
                })
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

/// Mixed-size random soup (same recipe as the service stress tests).
fn soup(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(2654435761);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let r = if i % 29 == 0 { 4.0 } else { 0.35 };
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
        })
        .collect()
}

fn mix(h: u32) -> u32 {
    let mut h = h.wrapping_mul(0x9E3779B9) ^ 0xABCD_1234;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^ (h >> 13)
}

/// A box covering the whole soup — routes to every shard of a region
/// decomposition, so each full-coverage request costs each live shard
/// exactly one worker job (what makes per-shard job sequences predictable).
fn full_cover() -> Aabb {
    Aabb::new(
        Point3::new(-10.0, -10.0, -10.0),
        Point3::new(120.0, 120.0, 120.0),
    )
}

/// A full simulation tick: every element gets a fresh envelope derived from
/// `h` — the bulk write that makes every shard's update lane non-empty and
/// forces cross-shard migrations.
fn step_envelopes(data_len: u32, h: u32) -> Vec<Aabb> {
    (0..data_len)
        .map(|id| {
            let g = mix(id ^ h);
            let x = (g % 900) as f32 / 10.0;
            let y = ((g >> 8) % 900) as f32 / 10.0;
            let z = ((g >> 16) % 900) as f32 / 10.0;
            Aabb::new(Point3::new(x, y, z), Point3::new(x + 1.0, y + 1.0, z + 1.0))
        })
        .collect()
}

/// Deterministic single-op request stream: every request coalesces into
/// exactly **one** backend call (kNN requests carry a single `k`, families
/// never mix), so request index `i` is dispatcher op index `i` and a
/// [`FaultPlan`] keyed on op indices is keyed on request indices.
fn chaos_requests(count: u32, data_len: u32, writable: bool, seed: u32) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let h = mix(i.wrapping_mul(31).wrapping_add(seed));
            let cx = (h % 90) as f32;
            let cy = ((h >> 8) % 90) as f32;
            let cz = ((h >> 16) % 90) as f32;
            let family = if writable { h % 6 } else { h % 3 };
            match family {
                0 | 5 => Request::Range(
                    (0..(h % 3 + 1))
                        .map(|q| {
                            let o = q as f32 * 5.0;
                            Aabb::new(
                                Point3::new(cx - o, cy, cz),
                                Point3::new(cx + 8.0, cy + 10.0, cz + 7.0 + o),
                            )
                        })
                        .collect(),
                ),
                1 => Request::RangeCount(vec![Aabb::new(
                    Point3::new(cx, cy, cz),
                    Point3::new(cx + 18.0, cy + 18.0, cz + 18.0),
                )]),
                2 => {
                    // One k per request: mixed ks would split into one
                    // backend call per distinct k and desynchronise the op
                    // indices the plan keys on.
                    let k = (h >> 20) as usize % 9;
                    Request::Knn(
                        (0..(h % 3 + 1))
                            .map(|q| (Point3::new(cx + q as f32, cy, cz), k))
                            .collect(),
                    )
                }
                3 => Request::Update(
                    (0..(h % 4 + 1))
                        .map(|q| {
                            let id = h.wrapping_add(q * 77) % data_len;
                            let bx = ((h >> (q % 8 + 3)) % 90) as f32;
                            (
                                id,
                                Aabb::new(
                                    Point3::new(bx, cy, cz),
                                    Point3::new(bx + 1.5, cy + 1.5, cz + 1.5),
                                ),
                            )
                        })
                        .collect(),
                ),
                _ => Request::Step(step_envelopes(data_len, h)),
            }
        })
        .collect()
}

/// The serial oracle: one request at a time through a caller-owned engine,
/// applying exactly the writes the service acknowledged.
trait SerialOracle {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>>;
    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)>;
    fn apply(&mut self, updates: &[(ElementId, Shape)]);
}

/// Serial mirror of a sharded backend: the same `ShardedEngine`, driven one
/// request at a time.
struct ShardedOracle<I>(ShardedEngine<I>);

impl<I: SpatialIndex + KnnIndex + Send> SerialOracle for ShardedOracle<I> {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>> {
        let mut out = BatchResults::new();
        self.0.range_collect(qs, &mut out);
        (0..qs.len())
            .map(|q| out.query_results(q).to_vec())
            .collect()
    }

    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        let mut out = KnnBatchResults::new();
        self.0.knn_collect(&[*p], k, &mut out);
        out.query_results(0).to_vec()
    }

    fn apply(&mut self, updates: &[(ElementId, Shape)]) {
        self.0.update_batch(updates);
    }
}

/// Serial mirror of `EngineBackend::build_writable`: owns the data, applies
/// writes, rebuilds its index.
struct RebuildOracle<I, F: Fn(&[Element]) -> I> {
    engine: QueryEngine,
    data: Vec<Element>,
    index: I,
    build: F,
}

impl<I: SpatialIndex + KnnIndex, F: Fn(&[Element]) -> I> RebuildOracle<I, F> {
    fn new(data: Vec<Element>, build: F) -> Self {
        let index = build(&data);
        Self {
            engine: QueryEngine::new(),
            data,
            index,
            build,
        }
    }
}

impl<I: SpatialIndex + KnnIndex, F: Fn(&[Element]) -> I> SerialOracle for RebuildOracle<I, F> {
    fn range(&mut self, qs: &[Aabb]) -> Vec<Vec<ElementId>> {
        let mut out = BatchResults::new();
        self.engine
            .range_collect(&self.index, &self.data, qs, &mut out);
        (0..qs.len())
            .map(|q| out.query_results(q).to_vec())
            .collect()
    }

    fn knn(&mut self, p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        let mut out = KnnBatchResults::new();
        self.engine
            .knn_collect(&self.index, &self.data, &[*p], k, &mut out);
        out.query_results(0).to_vec()
    }

    fn apply(&mut self, updates: &[(ElementId, Shape)]) {
        for &(id, shape) in updates {
            if let Some(e) = self.data.get_mut(id as usize) {
                e.shape = shape;
            }
        }
        self.index = (self.build)(&self.data);
    }
}

fn expected(oracle: &mut dyn SerialOracle, request: &Request) -> Response {
    match request {
        Request::Range(qs) => Response::Range(oracle.range(qs)),
        Request::RangeCount(qs) => Response::RangeCount(
            oracle
                .range(qs)
                .into_iter()
                .map(|l| l.len() as u64)
                .collect(),
        ),
        Request::Knn(probes) => {
            Response::Knn(probes.iter().map(|(p, k)| oracle.knn(p, *k)).collect())
        }
        Request::Update(pairs) => {
            let updates: Vec<(ElementId, Shape)> =
                pairs.iter().map(|&(id, bb)| (id, Shape::Box(bb))).collect();
            oracle.apply(&updates);
            Response::Update(pairs.len() as u64)
        }
        Request::Step(envs) => {
            let updates: Vec<(ElementId, Shape)> = envs
                .iter()
                .enumerate()
                .map(|(id, &bb)| (id as ElementId, Shape::Box(bb)))
                .collect();
            oracle.apply(&updates);
            Response::Step(envs.len() as u64)
        }
        Request::StepDelta(moves) => {
            let updates: Vec<(ElementId, Shape)> =
                moves.iter().map(|&(id, bb)| (id, Shape::Box(bb))).collect();
            oracle.apply(&updates);
            Response::StepDelta(moves.len() as u64)
        }
        Request::Insert(_) | Request::Remove(_) => {
            unimplemented!(
                "membership requests are exercised by the incremental differential suite"
            )
        }
    }
}

/// Redeems a ticket with a generous bound so a lost completion fails loudly
/// instead of wedging the test binary — the no-hang assertion every chaos
/// test makes on every single request.
fn recv_bounded(ticket: &Ticket, label: &str, op: usize) -> Result<Response, RecvError> {
    ticket
        .recv_deadline(Duration::from_secs(30))
        .unwrap_or_else(|| panic!("{label}: ticket for op {op} hung"))
}

/// Drives `requests` sequentially through `service` under `plan` and checks
/// every outcome against the serial oracle: requests whose dispatcher op is
/// scheduled to panic or lose its response must fail typed (and their
/// writes stay un-applied — the oracle skips them, so every later read
/// cross-checks that too); everything else must match the oracle
/// byte-for-byte. Returns the drained service stats.
fn drive_differential(
    service: SpatialService,
    oracle: &mut dyn SerialOracle,
    plan: &FaultPlan,
    requests: &[Request],
    label: &str,
) -> ServiceStats {
    let handle = service.handle();
    for (op, req) in requests.iter().enumerate() {
        let ticket = handle
            .submit(req.clone())
            .unwrap_or_else(|e| panic!("{label}: submit of op {op} rejected: {e:?}"));
        let got = recv_bounded(&ticket, label, op);
        match plan.dispatcher_fault(op as u64) {
            Some(FaultKind::Panic) | Some(FaultKind::DropResponse) => match got {
                Err(RecvError::WorkerFailed { .. }) => {}
                other => panic!("{label}: op {op} should fail typed, got {other:?}"),
            },
            _ => {
                let want = expected(oracle, req);
                match got {
                    Ok(resp) => {
                        assert_eq!(resp, want, "{label}: op {op} diverged from serial oracle")
                    }
                    Err(e) => panic!("{label}: op {op} unexpectedly failed: {e}"),
                }
            }
        }
    }
    service.shutdown()
}

/// Dispatcher-level faults on the single-engine backend: panic mid-query,
/// lost write, panic mid-write, slow call, lost query response — the
/// service keeps serving, failed requests complete typed, their writes are
/// not applied, and every surviving response matches the serial oracle.
#[test]
fn engine_dispatcher_faults_fail_typed_and_survivors_match_oracle() {
    quiet_panics();
    let data = soup(1500, 0xD15E);
    let build = |d: &[Element]| UniformGrid::build(d, GridConfig::auto(d));
    let t1 = Aabb::new(Point3::new(2.0, 2.0, 2.0), Point3::new(3.5, 3.5, 3.5));
    let t4 = Aabb::new(Point3::new(95.0, 95.0, 95.0), Point3::new(96.5, 96.5, 96.5));
    let requests = vec![
        Request::Range(vec![full_cover(), t1]),  // op 0: panics
        Request::Update(vec![(3, t1), (5, t1)]), // op 1: response lost
        Request::Range(vec![t1]),                // op 2: must NOT see op 1
        Request::Knn(vec![(Point3::new(40.0, 40.0, 40.0), 4)]), // op 3: delayed
        Request::Update(vec![(7, t1)]),          // op 4: panics
        Request::Range(vec![t1]),                // op 5: response lost
        Request::RangeCount(vec![full_cover()]), // op 6
        Request::Update(vec![(9, t4)]),          // op 7: applies
        Request::Range(vec![t4]),                // op 8: must see op 7
    ];
    let plan = FaultPlan::new()
        .panic_at(0)
        .drop_at(1)
        .delay_at(3, Duration::from_millis(2))
        .panic_at(4)
        .drop_at(5);
    let backend = ChaosBackend::new(
        EngineBackend::build_writable(data.clone(), build),
        plan.clone(),
    );
    let mut oracle = RebuildOracle::new(data, build);
    let stats = drive_differential(
        SpatialService::spawn(backend, ServiceConfig::default().no_coalesce()),
        &mut oracle,
        &plan,
        &requests,
        "engine/fixed-plan",
    );
    assert_eq!(stats.panics_caught, 2, "both injected panics were caught");
    assert_eq!(stats.failed_requests, 4, "ops 0, 1, 4, 5 failed typed");
    assert_eq!(stats.completed, requests.len() as u64, "no ticket was lost");
    assert_eq!(stats.deadline_expired, 0);
    assert_eq!(stats.shards_dead, 0);
}

/// A panicking shard worker is quarantined, restarted from the planner's
/// element store, and the interrupted read batch is re-run: every response
/// — including the one whose first attempt panicked — is byte-identical to
/// the serial oracle, and the telemetry counters equal the plan's.
#[test]
fn sharded_worker_panic_restarts_and_matches_oracle() {
    quiet_panics();
    let data = soup(2000, 0xABBA);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let engine = ShardedEngine::build(&data, 4, build).with_rebuild(build);
    let mut oracle = ShardedOracle(ShardedEngine::build(&data, 4, build).with_rebuild(build));
    // Every request routes one job to every shard (full-coverage reads,
    // whole-tick writes), so shard 2's job #1 is request #1.
    let requests = vec![
        Request::Range(vec![full_cover()]),
        Request::Range(vec![full_cover()]), // shard 2 panics mid-read here
        Request::RangeCount(vec![full_cover()]),
        Request::Step(step_envelopes(2000, 0x7E11)),
        Request::Range(vec![full_cover()]),
    ];
    let plan = FaultPlan::new().panic_on_shard(2, 1);
    let backend = ChaosBackend::new(ShardedBackend::spawn(engine), plan.clone());
    let stats = drive_differential(
        SpatialService::spawn(backend, ServiceConfig::default().no_coalesce()),
        &mut oracle,
        &plan,
        &requests,
        "sharded/worker-panic",
    );
    assert_eq!(
        stats.panics_caught,
        plan.planned_panics(),
        "counters match the plan"
    );
    assert_eq!(stats.shard_restarts, 1, "the shard came back");
    assert_eq!(stats.shards_dead, 0);
    assert_eq!(stats.failed_requests, 0, "restart + re-run hid the panic");
    assert_eq!(stats.partial_responses, 0);
}

/// A worker panic *mid-write* with restart budget left: the shard is
/// rebuilt from the planner's already-advanced element store, so the
/// interrupted write is fully applied and every query admitted after it
/// sees it — the write barrier holds across a restart.
#[test]
fn post_restart_writes_stay_barrier_ordered() {
    quiet_panics();
    let data = soup(2000, 0xF00D);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let engine = ShardedEngine::build(&data, 4, build).with_rebuild(build);
    let mut oracle = ShardedOracle(ShardedEngine::build(&data, 4, build).with_rebuild(build));
    let requests = vec![
        Request::Range(vec![full_cover()]),
        Request::Step(step_envelopes(2000, 0xAA01)),
        Request::Range(vec![full_cover()]),
        Request::Step(step_envelopes(2000, 0xAA02)), // shard 2 panics mid-write
        Request::Range(vec![full_cover()]),
    ];
    let plan = FaultPlan::new().panic_on_shard(2, 3);
    let backend = ChaosBackend::new(ShardedBackend::spawn(engine), plan.clone());
    let stats = drive_differential(
        SpatialService::spawn(backend, ServiceConfig::default().no_coalesce()),
        &mut oracle,
        &plan,
        &requests,
        "sharded/write-restart",
    );
    assert_eq!(stats.panics_caught, 1);
    assert_eq!(stats.shard_restarts, 1);
    assert_eq!(stats.shards_dead, 0);
    assert_eq!(
        stats.failed_requests, 0,
        "the interrupted write still applied in full"
    );
    assert!(stats.updates_applied > 0);
}

/// A worker panic *mid-write* on a backend running **incremental** shard
/// executors: the shard restarts **exactly once**, the restart rebuilds
/// from the planner's already-advanced element store (so the interrupted
/// write is fully applied), the apply hook is re-attached, and later
/// sparse writes go back to the in-place path — all byte-identical to a
/// rebuild-mode oracle over the same write stream.
#[test]
fn incremental_executor_mid_write_panic_restarts_exactly_once() {
    quiet_panics();
    let data = soup(2000, 0x17C5);
    let engine = sharded_strategy_engine(
        &data,
        4,
        UpdateStrategyKind::GridMigrate,
        ShardWriteMode::Incremental,
    );
    // The oracle runs the *rebuild* mode: the two write modes must be
    // indistinguishable through queries, panic or no panic.
    let mut oracle = ShardedOracle(sharded_strategy_engine(
        &data,
        4,
        UpdateStrategyKind::GridMigrate,
        ShardWriteMode::Rebuild,
    ));
    // A sparse jitter tick: a handful of elements nudged slightly from
    // where the *last full step* (h = 0xB2) left them — the lanes stay
    // geometry-only and resident, so incremental shards apply them
    // without rebuilding.
    let delta: Vec<(u32, Aabb)> = (0..12u32)
        .map(|j| {
            let id = mix(j ^ 0xD17) % 2000;
            let g = mix(id ^ 0xB2);
            let x = (g % 900) as f32 / 10.0 + 0.05;
            let y = ((g >> 8) % 900) as f32 / 10.0;
            let z = ((g >> 16) % 900) as f32 / 10.0;
            (
                id,
                Aabb::new(Point3::new(x, y, z), Point3::new(x + 1.0, y + 1.0, z + 1.0)),
            )
        })
        .collect();
    let requests = vec![
        Request::Range(vec![full_cover()]),        // job 0 on every shard
        Request::Step(step_envelopes(2000, 0xB1)), // job 1
        Request::Range(vec![full_cover()]),        // job 2
        Request::Step(step_envelopes(2000, 0xB2)), // job 3: shard 2 panics mid-write
        Request::Range(vec![full_cover()]),        // restarted shard serves reads
        Request::StepDelta(delta),                 // back on the in-place path
        Request::Range(vec![full_cover()]),
    ];
    let plan = FaultPlan::new().panic_on_shard(2, 3);
    let backend = ChaosBackend::new(ShardedBackend::spawn(engine), plan.clone());
    let stats = drive_differential(
        SpatialService::spawn(backend, ServiceConfig::default().no_coalesce()),
        &mut oracle,
        &plan,
        &requests,
        "sharded/incremental-write-restart",
    );
    assert_eq!(stats.panics_caught, 1);
    assert_eq!(stats.shard_restarts, 1, "exactly one restart");
    assert_eq!(stats.shards_dead, 0);
    assert_eq!(
        stats.failed_requests, 0,
        "the interrupted write still applied in full"
    );
    assert!(
        stats.rebuilds_avoided >= 1,
        "sparse lanes used the in-place path (got {})",
        stats.rebuilds_avoided
    );
    assert!(stats.updates_applied > 0);
}

/// With the restart budget exhausted the shard dies: range/count queries
/// degrade to partial coverage (reported per reply and in the stats), kNN
/// probes that need the dead shard fail typed, and writes keep flowing —
/// an element moved out of the dead region becomes visible again through
/// its new live shard.
#[test]
fn dead_shard_degrades_reads_and_fails_knn_typed() {
    quiet_panics();
    let data = soup(2000, 0xDEAD);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let engine = ShardedEngine::build(&data, 4, build).with_rebuild(build);
    let mut oracle = ShardedOracle(ShardedEngine::build(&data, 4, build).with_rebuild(build));
    let plan = FaultPlan::new().panic_on_shard(1, 1);
    let no_restarts = SupervisorPolicy {
        max_restarts: 0,
        ..SupervisorPolicy::default()
    };
    let backend = ChaosBackend::new(ShardedBackend::spawn_with(engine, no_restarts), plan);
    let service = SpatialService::spawn(backend, ServiceConfig::default().no_coalesce());
    let handle = service.handle();
    let label = "sharded/dead-shard";

    // Job 0 on every shard: full coverage, byte-identical.
    let t = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    let full = expected(&mut oracle, &Request::Range(vec![full_cover()]));
    let reply = t.recv_reply().expect("healthy read");
    assert_eq!(reply.response, full);
    assert_eq!(reply.shards_skipped, 0);
    let full_ids = match &full {
        Response::Range(lists) => lists[0].clone(),
        _ => unreachable!(),
    };

    // Job 1 kills shard 1; the re-run degrades to the surviving shards.
    let t = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    let reply = t.recv_reply().expect("degraded read still completes");
    assert_eq!(reply.shards_skipped, 1, "one shard's coverage is gone");
    let got_ids = match &reply.response {
        Response::Range(lists) => lists[0].clone(),
        other => panic!("{label}: expected a range response, got {other:?}"),
    };
    assert!(
        got_ids.iter().all(|id| full_ids.contains(id)),
        "{label}: partial result must be a subset of full coverage"
    );
    assert!(
        got_ids.len() < full_ids.len(),
        "{label}: the dead shard owned some of the full result"
    );

    // Counts degrade the same way.
    let t = handle
        .submit(Request::RangeCount(vec![full_cover()]))
        .unwrap();
    let reply = t.recv_reply().expect("degraded count completes");
    assert_eq!(reply.shards_skipped, 1);
    match reply.response {
        Response::RangeCount(counts) => assert!(
            counts[0] < full_ids.len() as u64,
            "{label}: partial count below full coverage"
        ),
        other => panic!("{label}: expected a count response, got {other:?}"),
    }

    // A kNN probe that must consult the dead shard (k = whole dataset
    // forces the fan-out everywhere) fails typed instead of returning a
    // silently short neighbour list.
    let t = handle
        .submit(Request::Knn(vec![(Point3::new(0.5, 0.5, 0.5), 2000)]))
        .unwrap();
    match recv_bounded(&t, label, 3) {
        Err(RecvError::WorkerFailed { shard }) => assert_eq!(shard, 1),
        other => panic!("{label}: kNN over a dead shard should fail typed, got {other:?}"),
    }

    // Writes keep flowing: moving an element into a live shard's region
    // makes it queryable again through that shard.
    let target = Aabb::new(Point3::new(0.5, 0.5, 0.5), Point3::new(1.5, 1.5, 1.5));
    let t = handle.submit(Request::Update(vec![(42, target)])).unwrap();
    assert!(
        recv_bounded(&t, label, 4).is_ok(),
        "write through a degraded backend"
    );
    let t = handle.submit(Request::Range(vec![target])).unwrap();
    let reply = t.recv_reply().expect("read-back completes");
    assert_eq!(
        reply.shards_skipped, 0,
        "the target box never touches the dead region"
    );
    match reply.response {
        Response::Range(lists) => assert!(
            lists[0].contains(&42),
            "{label}: the migrated element is visible through its new shard"
        ),
        other => panic!("{label}: expected a range response, got {other:?}"),
    }

    let stats = service.shutdown();
    assert_eq!(stats.panics_caught, 1);
    assert_eq!(stats.shard_restarts, 0, "no budget, no restart");
    assert_eq!(stats.shards_dead, 1);
    assert!(stats.partial_responses >= 2, "range + count were partial");
}

/// Randomized chaos differential: a seeded pseudo-random plan (fresh from
/// `SIMSPATIAL_FAULT_SEED` when set — CI's randomized row — fixed seeds
/// otherwise) mixing dispatcher panics, lost responses, delays and worker
/// crashes, against all three serving stacks. Every failure message echoes
/// the seed, so any red run reproduces locally.
#[test]
fn randomized_chaos_differential_across_backends() {
    quiet_panics();
    const OPS: u32 = 90;
    let generous = SupervisorPolicy {
        max_restarts: 1000,
        backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(2),
    };
    let seeds: Vec<u64> = match FaultPlan::from_env(u64::from(OPS), 4) {
        Some(plan) => vec![plan.seed()],
        None => vec![0xC0FFEE, 7, 0x5EED5EED],
    };
    for seed in seeds {
        let data = soup(1200, seed as u32 ^ 0x9E37);
        let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));

        // Single-engine backend: dispatcher-level faults only.
        let plan = FaultPlan::random(seed, u64::from(OPS), 0);
        let requests = chaos_requests(OPS, 1200, true, seed as u32);
        let mut oracle = RebuildOracle::new(data.clone(), build);
        let stats = drive_differential(
            SpatialService::spawn(
                ChaosBackend::new(
                    EngineBackend::build_writable(data.clone(), build),
                    plan.clone(),
                ),
                ServiceConfig::default().no_coalesce(),
            ),
            &mut oracle,
            &plan,
            &requests,
            &format!("random/engine SIMSPATIAL_FAULT_SEED={seed}"),
        );
        assert_eq!(
            stats.completed,
            u64::from(OPS),
            "seed {seed}: engine lost a ticket"
        );

        // Sharded backends (uniform slabs and median-cut regions): worker
        // crashes join the mix; a generous restart budget means every
        // worker-level panic is absorbed by quarantine + restart and only
        // dispatcher-level faults surface to clients.
        let plan = FaultPlan::random(seed, u64::from(OPS), 4);
        // Dispatcher panics fire deterministically (sequential driving, one
        // op per request, first fault per op wins); worker panics fire only
        // if their shard reaches the scheduled job sequence.
        let dispatcher_panics = (0..u64::from(OPS))
            .filter(|&op| plan.dispatcher_fault(op) == Some(FaultKind::Panic))
            .count() as u64;
        for median in [false, true] {
            let engine = if median {
                ShardedEngine::build_median(&data, 4, build).with_rebuild(build)
            } else {
                ShardedEngine::build(&data, 4, build).with_rebuild(build)
            };
            let oracle_engine = if median {
                ShardedEngine::build_median(&data, 4, build).with_rebuild(build)
            } else {
                ShardedEngine::build(&data, 4, build).with_rebuild(build)
            };
            let mut oracle = ShardedOracle(oracle_engine);
            let label = format!(
                "random/sharded{} SIMSPATIAL_FAULT_SEED={seed}",
                if median { "-median" } else { "-uniform" }
            );
            let backend = ChaosBackend::new(
                ShardedBackend::spawn_with(engine, generous.clone()),
                plan.clone(),
            );
            let stats = drive_differential(
                SpatialService::spawn(backend, ServiceConfig::default().no_coalesce()),
                &mut oracle,
                &plan,
                &requests,
                &label,
            );
            assert_eq!(stats.completed, u64::from(OPS), "{label}: lost a ticket");
            assert_eq!(stats.shards_dead, 0, "{label}: generous budget, no deaths");
            assert!(
                stats.panics_caught >= dispatcher_panics,
                "{label}: every scheduled dispatcher panic fired"
            );
            assert_eq!(
                stats.shard_restarts,
                stats.panics_caught - dispatcher_panics,
                "{label}: every worker panic was absorbed by a restart"
            );
        }
    }
}

/// Deadlines expire in both places they are checked: a request that goes
/// stale while queued behind a slow dispatch is shed at admission (the
/// backend never sees it), and a request whose own backend call outlives
/// its deadline completes with the same typed error.
#[test]
fn deadlines_expire_at_admission_and_completion() {
    quiet_panics();
    let data = soup(600, 0x7E57);
    let build = |d: &[Element]| UniformGrid::build(d, GridConfig::auto(d));

    // Completion-time expiry: the first dispatch itself is slow.
    let backend = ChaosBackend::new(
        EngineBackend::build(data.clone(), build),
        FaultPlan::new().delay_at(0, Duration::from_millis(120)),
    );
    let service = SpatialService::spawn(backend, ServiceConfig::default().no_coalesce());
    let handle = service.handle();
    let t = handle
        .submit_with_deadline(
            Request::Range(vec![full_cover()]),
            Duration::from_millis(20),
        )
        .unwrap();
    match recv_bounded(&t, "deadline/completion", 0) {
        Err(RecvError::DeadlineExceeded) => {}
        other => panic!("slow dispatch should expire the deadline, got {other:?}"),
    }
    let stats = service.shutdown();
    assert_eq!(stats.deadline_expired, 1);

    // Admission-time shed: a fresh request goes stale while the dispatcher
    // is stuck in the previous (slow) call; it is dropped before the
    // backend ever sees it. The config-level default deadline applies to
    // plain submits.
    let backend = ChaosBackend::new(
        EngineBackend::build(data, build),
        FaultPlan::new().delay_at(0, Duration::from_millis(150)),
    );
    let config = ServiceConfig::default()
        .no_coalesce()
        .with_default_deadline(Duration::from_millis(25));
    let service = SpatialService::spawn(backend, config);
    let handle = service.handle();
    let slow = handle
        .submit_with_deadline(Request::Range(vec![full_cover()]), Duration::from_secs(10))
        .unwrap();
    std::thread::sleep(Duration::from_millis(10)); // let the dispatcher grab `slow`
    let stale = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    assert!(recv_bounded(&slow, "deadline/admission", 0).is_ok());
    match recv_bounded(&stale, "deadline/admission", 1) {
        Err(RecvError::DeadlineExceeded) => {}
        other => panic!("queued-stale request should be shed, got {other:?}"),
    }
    let stats = service.shutdown();
    assert_eq!(stats.deadline_expired, 1);
    // The shed request never reached the backend: only `slow` consumed an op.
    assert_eq!(stats.completed, 2);
}

/// All four ticket-redemption flavours against a stalled backend: the
/// non-blocking probes report "not yet" without consuming the ticket, the
/// bounded wait times out and later succeeds, and the blocking flavours
/// deliver response, latency and coverage metadata.
#[test]
fn recv_flavours_resolve_against_a_stalled_backend() {
    quiet_panics();
    let data = soup(600, 0x51A7);
    let build = |d: &[Element]| UniformGrid::build(d, GridConfig::auto(d));
    let backend = ChaosBackend::new(
        EngineBackend::build(data, build),
        FaultPlan::new().delay_at(0, Duration::from_millis(150)),
    );
    let service = SpatialService::spawn(backend, ServiceConfig::default().no_coalesce());
    let handle = service.handle();

    // Stalled: the probe flavours observe "pending", the ticket survives.
    let t = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    assert!(t.try_recv().is_none(), "stalled ticket is still pending");
    assert!(
        t.recv_deadline(Duration::from_millis(10)).is_none(),
        "bounded wait times out while the backend stalls"
    );
    let got = t
        .recv_deadline(Duration::from_secs(30))
        .expect("stall ends well before the bound");
    assert!(got.is_ok());

    // Healthy: the consuming flavours deliver the metadata variants.
    let t = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    let (resp, latency) = t.recv_timed().expect("timed recv completes");
    assert!(matches!(resp, Response::Range(_)));
    assert!(latency > Duration::ZERO);
    let t = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    let reply = t.recv_reply().expect("reply recv completes");
    assert_eq!(reply.shards_skipped, 0);
    let t = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    assert!(t.recv().is_ok());
    service.shutdown();
}

/// `submit_with_retry` waits out a full intake queue with jittered backoff
/// instead of failing fast, and the attempts are counted. Only the
/// pre-admission `Full` rejection is retried — which is why this is safe
/// for writes too.
#[test]
fn submit_with_retry_waits_out_a_full_queue() {
    quiet_panics();
    let data = soup(600, 0xF011);
    let build = |d: &[Element]| UniformGrid::build(d, GridConfig::auto(d));
    let backend = ChaosBackend::new(
        EngineBackend::build(data, build),
        FaultPlan::new().delay_at(0, Duration::from_millis(120)),
    );
    let config = ServiceConfig::default().no_coalesce().with_queue_cap(1);
    let service = SpatialService::spawn(backend, config);
    let handle = service.handle();

    // Wedge the dispatcher in the slow op, then fill the 1-slot queue.
    let slow = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    // Let the dispatcher pick `slow` up before filling the queue, so the
    // retrying submit below observes `Full` for the rest of the stall (and
    // the retry counter provably moves).
    std::thread::sleep(Duration::from_millis(20));
    let mut queued = Vec::new();
    for attempt in 0.. {
        assert!(attempt < 1000, "queue never filled");
        match handle.try_submit(Request::Range(vec![full_cover()])) {
            Ok(t) => queued.push(t),
            Err(SubmitError::Full { .. }) => break,
            Err(e) => panic!("unexpected rejection: {e:?}"),
        }
    }

    // A plain try_submit bounces; the retrying submit rides out the stall.
    let policy = RetryPolicy {
        max_retries: 400,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        jitter_seed: 0xFA11,
    };
    let t = handle
        .submit_with_retry(Request::Range(vec![full_cover()]), &policy)
        .expect("retries outlast the stall");
    assert!(recv_bounded(&slow, "retry/full", 0).is_ok());
    for (i, t) in queued.iter().enumerate() {
        assert!(recv_bounded(t, "retry/full", 1 + i).is_ok());
    }
    assert!(recv_bounded(&t, "retry/full", 99).is_ok());
    let stats = service.shutdown();
    assert!(
        stats.retries_attempted >= 1,
        "the backoff path actually ran"
    );
}

/// A backend whose queries work but whose write path panics *inside* the
/// inner backend with no recovery override: the trait-default `recover`
/// refuses to vouch for a torn write, so the service poisons itself —
/// every in-flight and subsequent request completes typed, nothing hangs.
struct TornWriteBackend {
    inner: EngineBackend<UniformGrid>,
}

impl ServiceBackend for TornWriteBackend {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport {
        self.inner.range_batch(queries, out)
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport {
        self.inner.knn_batch(points, k, out)
    }

    fn update_batch(&mut self, _updates: &[(ElementId, Shape)]) -> UpdateReport {
        panic!("chaos: torn write without a recovery path");
    }

    fn supports_updates(&self) -> bool {
        true
    }

    // `recover` deliberately left at the trait default: `false` after a
    // write panic — the poisoning path under test.

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.inner.shard_sizes()
    }
}

#[test]
fn unrecovered_write_panic_poisons_the_service() {
    quiet_panics();
    let data = soup(600, 0xBAD);
    let build = |d: &[Element]| UniformGrid::build(d, GridConfig::auto(d));
    let backend = TornWriteBackend {
        inner: EngineBackend::build(data, build),
    };
    let service = SpatialService::spawn(backend, ServiceConfig::default());
    let handle = service.handle();

    // Pipeline a write and a read behind it, then redeem both: the write
    // panics, recovery refuses, and the queued read fails fast instead of
    // touching a possibly-torn backend.
    let target = Aabb::new(Point3::new(1.0, 1.0, 1.0), Point3::new(2.0, 2.0, 2.0));
    let w = handle.submit(Request::Update(vec![(3, target)])).unwrap();
    let r = handle.submit(Request::Range(vec![full_cover()])).unwrap();
    match recv_bounded(&w, "poison", 0) {
        Err(RecvError::WorkerFailed { .. }) => {}
        other => panic!("torn write should fail typed, got {other:?}"),
    }
    match recv_bounded(&r, "poison", 1) {
        Err(RecvError::WorkerFailed { .. }) => {}
        other => panic!("request behind the poison barrier should fail typed, got {other:?}"),
    }

    // The poisoned service closes its intake; new submissions are rejected
    // cleanly rather than queued into a void.
    assert!(!handle.is_open(), "poisoning closes the intake");
    assert!(matches!(
        handle.submit(Request::Range(vec![full_cover()])),
        Err(SubmitError::ShutDown(_))
    ));

    let stats = service.shutdown();
    assert_eq!(stats.panics_caught, 1);
    assert!(stats.failed_requests >= 2);
}

/// An injected panic strictly **between** barrier-apply and epoch-publish
/// (`FaultPlan::panic_at_publish` fires before the inner backend sees the
/// publish): the scheduler's retry must publish the epoch **exactly once**
/// — write acks report consecutive epochs with none skipped or observed
/// twice, and every surviving snapshot reply is byte-identical to the
/// serial oracle at the epoch it reports. Redemptions use `recv_reply`
/// (not the bounded helper) because the epoch assertions need the full
/// [`Reply`]; a hang still fails via the harness timeout.
#[test]
fn publish_panic_republishes_exactly_once() {
    quiet_panics();
    let data = soup(1500, 0xE90C);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let engine = ShardedEngine::build(&data, 4, build).with_rebuild(build);
    let mut oracle = ShardedOracle(ShardedEngine::build(&data, 4, build).with_rebuild(build));
    // Publish attempts: attempt 0 is the startup epoch 0; each write
    // barrier consumes the next. Panicking attempts 2 and 4 hits write 2's
    // first publish attempt and write 3's first attempt (write 2's retry
    // consumed attempt 3) — two independent apply/publish gaps.
    let plan = FaultPlan::new().panic_at_publish(2).panic_at_publish(4);
    let backend = ChaosBackend::new(ShardedBackend::spawn_snapshot(engine), plan.clone());
    let service = SpatialService::spawn(backend, ServiceConfig::default().no_coalesce());
    let handle = service.handle();

    let probe = Request::Range(vec![full_cover()]);
    for e in 1..=4u64 {
        let batch: Vec<(ElementId, Aabb)> = (0..5u32)
            .map(|q| {
                let h = mix(e as u32 ^ q.wrapping_mul(0x51));
                let x = (h % 880) as f32 / 10.0;
                let y = ((h >> 8) % 880) as f32 / 10.0;
                let z = ((h >> 16) % 880) as f32 / 10.0;
                (
                    h % 1500,
                    Aabb::new(Point3::new(x, y, z), Point3::new(x + 1.5, y + 1.5, z + 1.5)),
                )
            })
            .collect();
        let req = Request::Update(batch);
        let ack = handle
            .submit(req.clone())
            .unwrap()
            .recv_reply()
            .unwrap_or_else(|err| panic!("publish-retry: write {e} failed: {err}"));
        assert_eq!(ack.response, expected(&mut oracle, &req));
        assert_eq!(
            ack.epoch, e,
            "write {e} acked under a skipped or double-published epoch"
        );
        let snap = handle
            .submit_at(probe.clone(), Consistency::Snapshot)
            .unwrap()
            .recv_reply()
            .unwrap_or_else(|err| panic!("publish-retry: snapshot read {e} failed: {err}"));
        assert_eq!(snap.epoch, e, "snapshot ran against a stale republish");
        assert_eq!(
            snap.response,
            expected(&mut oracle, &probe),
            "snapshot reply at epoch {e} diverged from the oracle at epoch {e}"
        );
    }

    let stats = service.shutdown();
    assert_eq!(stats.current_epoch, 4);
    assert_eq!(
        stats.epochs_published, 5,
        "startup + one per barrier: retries must not re-publish"
    );
    assert_eq!(stats.panics_caught, plan.planned_publish_panics());
    assert_eq!(
        stats.shard_restarts, 0,
        "publish faults never touch workers"
    );
    assert_eq!(stats.failed_requests, 0);
}

/// A shard worker panic **mid-write** on a snapshot-publishing backend:
/// the restart rebuilds the shard's live state from the planner's
/// already-advanced store, the epoch still publishes exactly once, and
/// the post-restart publish forks a *fresh* snapshot from the rebuilt
/// shard — snapshot reads at the new epoch are byte-identical to the
/// oracle, not served from the pre-restart copy.
#[test]
fn snapshot_backend_shard_restart_republishes_fresh_snapshot() {
    quiet_panics();
    let data = soup(2000, 0x5A9B);
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let engine = ShardedEngine::build(&data, 4, build).with_rebuild(build);
    let mut oracle = ShardedOracle(ShardedEngine::build(&data, 4, build).with_rebuild(build));
    // Request 0 (full-cover read) is every shard's job 0; request 1 (the
    // whole-tick write) is job 1 — where shard 2 panics mid-write.
    let plan = FaultPlan::new().panic_on_shard(2, 1);
    let backend = ChaosBackend::new(ShardedBackend::spawn_snapshot(engine), plan.clone());
    let service = SpatialService::spawn(backend, ServiceConfig::default().no_coalesce());
    let handle = service.handle();
    let probe = Request::Range(vec![full_cover()]);

    let r0 = handle.submit(probe.clone()).unwrap().recv_reply().unwrap();
    assert_eq!(r0.response, expected(&mut oracle, &probe));
    assert_eq!(r0.epoch, 0, "barrier read before any write is at epoch 0");

    let step = Request::Step(step_envelopes(2000, 0x31AB));
    let ack = handle.submit(step.clone()).unwrap().recv_reply().unwrap();
    assert_eq!(ack.response, expected(&mut oracle, &step));
    assert_eq!(ack.epoch, 1, "restart must not skip or repeat the epoch");

    let snap = handle
        .submit_at(probe.clone(), Consistency::Snapshot)
        .unwrap()
        .recv_reply()
        .unwrap();
    assert_eq!(snap.epoch, 1);
    assert_eq!(
        snap.response,
        expected(&mut oracle, &probe),
        "post-restart snapshot serves the rebuilt shard, not the stale fork"
    );

    // Another full round proves the restarted shard keeps re-forking.
    let step2 = Request::Step(step_envelopes(2000, 0x31AC));
    let ack2 = handle.submit(step2.clone()).unwrap().recv_reply().unwrap();
    assert_eq!(ack2.response, expected(&mut oracle, &step2));
    assert_eq!(ack2.epoch, 2);
    let snap2 = handle
        .submit_at(probe.clone(), Consistency::Snapshot)
        .unwrap()
        .recv_reply()
        .unwrap();
    assert_eq!(snap2.epoch, 2);
    assert_eq!(snap2.response, expected(&mut oracle, &probe));

    let stats = service.shutdown();
    assert_eq!(stats.panics_caught, 1);
    assert_eq!(stats.shard_restarts, 1, "the shard came back");
    assert_eq!(stats.shards_dead, 0);
    assert_eq!(stats.current_epoch, 2);
    assert_eq!(
        stats.epochs_published, 3,
        "exactly once per epoch across the restart"
    );
    assert_eq!(stats.failed_requests, 0);
}
