//! TCP front-end differential coverage: every reply that crosses the
//! wire must be **byte-identical** to what the same request stream
//! produces through the in-process service on an identical backend.
//!
//! * Single pipelined connection against the single-engine backend
//!   (read-only script) and the sharded writable backend (script with
//!   `Update`/`Step`/`StepDelta`/`Insert`/`Remove` write barriers
//!   interleaved) — the oracle encodes its in-process replies with the
//!   same codec and corr ids, and the raw reply frames must match byte
//!   for byte.
//! * Two concurrent connections: a lock-stepped writer/reader pair whose
//!   interleaving is serialized by the replies themselves, diffed
//!   against the equivalent serial in-process run — write barriers hold
//!   across connections.
//! * Two concurrent read-only connections pipelining at full depth:
//!   every reply matches the oracle regardless of arrival interleaving.

use simspatial::prelude::*;
use simspatial_net::wire;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

fn soup(n: u32, seed: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(2654435761);
            let x = (h % 997) as f32 / 10.0;
            let y = ((h >> 10) % 997) as f32 / 10.0;
            let z = ((h >> 20) % 997) as f32 / 10.0;
            let r = if i % 31 == 0 { 4.0 } else { 0.4 };
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
        })
        .collect()
}

fn mix(h: u32) -> u32 {
    let mut h = h.wrapping_mul(0x9E3779B9) ^ 0x1357_9BDF;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85EB_CA6B);
    h ^ (h >> 13)
}

fn hash_box(h: u32, span: f32) -> Aabb {
    let cx = (h % 900) as f32 / 9.0;
    let cy = ((h >> 8) % 900) as f32 / 9.0;
    let cz = ((h >> 16) % 900) as f32 / 9.0;
    Aabb::new(
        Point3::new(cx, cy, cz),
        Point3::new(cx + span, cy + span, cz + span),
    )
}

/// Deterministic request script. Read-only scripts mix the three query
/// families; writable scripts interleave all five write families as
/// barriers (including one full `Step` tick).
fn script(writable: bool, n_elements: u32, count: u32) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let h = mix(i.wrapping_mul(7919));
            if writable && i % 5 == 4 {
                return match h % 5 {
                    0 => Request::Update(
                        (0..6)
                            .map(|j| (mix(h ^ j) % n_elements, hash_box(mix(h ^ (j << 9)), 1.2)))
                            .collect(),
                    ),
                    1 => Request::StepDelta(
                        (0..6)
                            .map(|j| (mix(h ^ j) % n_elements, hash_box(mix(h ^ (j << 7)), 0.9)))
                            .collect(),
                    ),
                    2 if i == 44 => Request::Step(
                        (0..n_elements)
                            .map(|e| hash_box(mix(e ^ 0xC0DE), 0.8))
                            .collect(),
                    ),
                    2 | 3 => Request::Insert((0..3).map(|j| hash_box(mix(h ^ j), 1.0)).collect()),
                    _ => Request::Remove(vec![mix(h) % n_elements, mix(h ^ 1) % n_elements]),
                };
            }
            match h % 3 {
                0 => Request::Range(
                    (0..(h % 3 + 1))
                        .map(|q| hash_box(mix(h ^ (q << 4)), 5.0 + (h % 7) as f32))
                        .collect(),
                ),
                1 => Request::RangeCount(vec![hash_box(h, 10.0)]),
                _ => Request::Knn(
                    (0..(h % 2 + 1))
                        .map(|q| {
                            let hb = hash_box(mix(h ^ (q << 5)), 0.0);
                            (hb.min, (h % 9) as usize)
                        })
                        .collect(),
                ),
            }
        })
        .collect()
}

/// Runs `requests` serially through an in-process service and returns
/// each reply encoded with the wire codec under corr `i + 1` — the byte
/// oracle for the TCP runs.
fn oracle_frames(service: SpatialService, requests: &[Request]) -> Vec<Vec<u8>> {
    let handle = service.handle();
    let frames = requests
        .iter()
        .enumerate()
        .map(|(i, req)| {
            let reply = handle
                .submit(req.clone())
                .expect("oracle submit")
                .recv_reply()
                .expect("oracle reply");
            let mut buf = Vec::new();
            wire::encode_reply(
                &mut buf,
                i as u64 + 1,
                reply.shards_skipped,
                reply.epoch,
                &reply.response,
            );
            buf
        })
        .collect();
    service.shutdown();
    frames
}

struct RawConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    frame: Vec<u8>,
}

/// A raw protocol connection that keeps reply frames as bytes — the
/// differential tests compare those bytes directly, so the assertion
/// covers the codec and the framing, not just the decoded values.
impl RawConn {
    fn connect(addr: std::net::SocketAddr, tenant: &str) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let mut conn = RawConn {
            writer: BufWriter::new(stream.try_clone().unwrap()),
            reader: BufReader::new(stream),
            frame: Vec::new(),
        };
        let mut buf = Vec::new();
        wire::encode_hello(&mut buf, tenant);
        wire::write_frame(&mut conn.writer, &buf).unwrap();
        conn.writer.flush().unwrap();
        match conn.recv() {
            wire::ServerMsg::HelloAck { .. } => conn,
            other => panic!("handshake failed: {other:?}"),
        }
    }

    fn enqueue(&mut self, corr: u64, request: &Request) {
        let mut buf = Vec::new();
        wire::encode_request(&mut buf, corr, None, request);
        wire::write_frame(&mut self.writer, &buf).unwrap();
    }

    fn flush(&mut self) {
        self.writer.flush().unwrap();
    }

    /// Reads one frame, returning the raw payload bytes.
    fn recv_raw(&mut self) -> Vec<u8> {
        assert!(
            wire::read_frame(&mut self.reader, 64 << 20, &mut self.frame).expect("read frame"),
            "server closed with replies outstanding"
        );
        self.frame.clone()
    }

    fn recv(&mut self) -> wire::ServerMsg {
        let raw = self.recv_raw();
        wire::decode_server_msg(&raw).expect("decodable server frame")
    }
}

/// Corr id of a reply/error frame (bytes 1..9 little-endian).
fn frame_corr(payload: &[u8]) -> u64 {
    u64::from_le_bytes(payload[1..9].try_into().unwrap())
}

/// Pipelines the whole script down one connection and diffs every raw
/// reply frame against the oracle bytes.
fn diff_single_connection(
    server: NetServer,
    requests: &[Request],
    oracle: &[Vec<u8>],
    label: &str,
) {
    let mut conn = RawConn::connect(server.local_addr(), "diff");
    for (i, req) in requests.iter().enumerate() {
        conn.enqueue(i as u64 + 1, req);
    }
    conn.flush();
    for _ in 0..requests.len() {
        let raw = conn.recv_raw();
        let corr = frame_corr(&raw) as usize;
        assert_eq!(
            raw,
            oracle[corr - 1],
            "{label}: reply for corr {corr} differs from the in-process oracle"
        );
    }
    drop(conn);
    let stats = server.shutdown();
    assert_eq!(
        stats.completed,
        requests.len() as u64,
        "{label}: all completed"
    );
    assert_eq!(stats.failed_requests, 0, "{label}: no failures");
}

fn engine_service(data: &[Element]) -> SpatialService {
    let backend = EngineBackend::build(data.to_vec(), |d| {
        UniformGrid::build(d, GridConfig::auto(d))
    });
    SpatialService::spawn(backend, ServiceConfig::default())
}

fn sharded_service(data: &[Element]) -> SpatialService {
    let build = |part: &[Element]| UniformGrid::build(part, GridConfig::auto(part));
    let backend = ShardedBackend::spawn(ShardedEngine::build(data, 3, build).with_rebuild(build));
    SpatialService::spawn(backend, ServiceConfig::default())
}

#[test]
fn tcp_replies_match_in_process_engine_backend() {
    let data = soup(1200, 0xD1FF);
    let requests = script(false, data.len() as u32, 120);
    let oracle = oracle_frames(engine_service(&data), &requests);
    let server =
        NetServer::bind(engine_service(&data), "127.0.0.1:0", NetConfig::default()).expect("bind");
    diff_single_connection(server, &requests, &oracle, "engine backend");
}

#[test]
fn tcp_replies_match_in_process_sharded_backend_with_writes() {
    let data = soup(900, 0xFACE);
    let requests = script(true, data.len() as u32, 110);
    let oracle = oracle_frames(sharded_service(&data), &requests);
    let server =
        NetServer::bind(sharded_service(&data), "127.0.0.1:0", NetConfig::default()).expect("bind");
    diff_single_connection(server, &requests, &oracle, "sharded writable backend");
}

/// Two concurrent connections, write barriers across them: a writer
/// tenant and a reader tenant lock-step (each waits for its own reply
/// before the other proceeds), which pins the global admission order to
/// a serial interleaving the oracle replays exactly.
#[test]
fn write_barriers_hold_across_two_connections() {
    let data = soup(800, 0xBEEF);
    let rounds: u32 = 40;

    // The interleaved script, as one serial stream for the oracle:
    // write_i, probe_i, write_{i+1}, probe_{i+1}, ...
    let mut serial = Vec::new();
    for i in 0..rounds {
        let h = mix(i.wrapping_mul(31));
        let target = hash_box(h, 1.5);
        serial.push(Request::Update(vec![(mix(h) % 800, target)]));
        serial.push(Request::Range(vec![target]));
    }
    let oracle: Vec<Response> = {
        let service = sharded_service(&data);
        let handle = service.handle();
        let out = serial
            .iter()
            .map(|r| handle.submit(r.clone()).unwrap().recv().unwrap())
            .collect();
        service.shutdown();
        out
    };

    let server =
        NetServer::bind(sharded_service(&data), "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut sim = NetClient::connect(addr, "sim").unwrap();
    let mut viz = NetClient::connect(addr, "viz").unwrap();
    for i in 0..rounds {
        let h = mix(i.wrapping_mul(31));
        let target = hash_box(h, 1.5);
        let id = mix(h) % 800;
        // Writer connection commits the barrier…
        match sim.call(&Request::Update(vec![(id, target)])).unwrap() {
            CallOutcome::Reply { response, .. } => {
                assert_eq!(response, oracle[i as usize * 2], "write ack differs");
            }
            other => panic!("write failed: {other:?}"),
        }
        // …and only then the reader connection probes: it must see the
        // post-write dataset, exactly like the serial oracle.
        match viz.call(&Request::Range(vec![target])).unwrap() {
            CallOutcome::Reply { response, .. } => {
                let expect = &oracle[i as usize * 2 + 1];
                assert_eq!(
                    &response, expect,
                    "round {i}: probe differs from serial oracle"
                );
                let hits = response.into_range().unwrap();
                assert!(hits[0].contains(&id), "round {i}: probe must see the write");
            }
            other => panic!("probe failed: {other:?}"),
        }
    }
    drop(sim);
    drop(viz);
    let stats = server.shutdown();
    assert_eq!(stats.completed, u64::from(rounds) * 2);
    assert_eq!(stats.tenants.len(), 2, "both tenants accounted");
}

/// Two read-only connections pipelining concurrently: arrival order is
/// unconstrained, but every reply must still match the oracle bytes for
/// its corr.
#[test]
fn concurrent_pipelined_connections_match_oracle() {
    let data = soup(1000, 0xAB1E);
    let requests = script(false, data.len() as u32, 80);
    let oracle = oracle_frames(engine_service(&data), &requests);
    let server =
        NetServer::bind(engine_service(&data), "127.0.0.1:0", NetConfig::default()).unwrap();
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        for t in 0..2 {
            let requests = &requests;
            let oracle = &oracle;
            scope.spawn(move || {
                let mut conn = RawConn::connect(addr, if t == 0 { "a" } else { "b" });
                // Full-depth pipeline: every request in flight at once.
                for (i, req) in requests.iter().enumerate() {
                    conn.enqueue(i as u64 + 1, req);
                }
                conn.flush();
                let mut seen = HashMap::new();
                for _ in 0..requests.len() {
                    let raw = conn.recv_raw();
                    let corr = frame_corr(&raw);
                    assert_eq!(
                        raw,
                        oracle[corr as usize - 1],
                        "conn {t}: corr {corr} differs from oracle"
                    );
                    assert!(seen.insert(corr, ()).is_none(), "duplicate corr {corr}");
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.completed, requests.len() as u64 * 2);
}
