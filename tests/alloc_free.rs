//! Proof of the engine's steady-state guarantee: repeat `range_batch`
//! calls through a [`QueryEngine`] perform **zero per-query heap
//! allocations** on the grid / R-Tree / FLAT hot paths, and repeat
//! `knn_batch_into` batches are likewise allocation-free on the grid and
//! R-Tree kNN paths (best-k heaps, traversal queues and batched
//! lower-bound buffers all live in the reused scratch).
//!
//! A counting global allocator (this test binary only) tallies every
//! allocation. After warm-up batches grow the scratch and sink buffers to
//! their high-water marks, further batches over the same workload must not
//! allocate at all.

use simspatial::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn soup(n: u32) -> Vec<Element> {
    (0..n)
        .map(|i| {
            let h = i.wrapping_mul(2654435761);
            let x = (h % 499) as f32 / 5.0;
            let y = ((h >> 10) % 499) as f32 / 5.0;
            let z = ((h >> 20) % 499) as f32 / 5.0;
            Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), 0.4)))
        })
        .collect()
}

fn queries() -> Vec<Aabb> {
    (0..20)
        .map(|i| {
            let c = Point3::new((i * 5) as f32, (i * 4) as f32, (i * 3) as f32);
            Aabb::new(c, Point3::new(c.x + 9.0, c.y + 8.0, c.z + 7.0))
        })
        .collect()
}

fn assert_steady_state_alloc_free(name: &str, index: &dyn SpatialIndex, data: &[Element]) {
    let queries = queries();
    let mut engine = QueryEngine::new();
    let mut results = BatchResults::new();
    // Warm-up: grow every buffer to its high-water mark.
    for _ in 0..4 {
        engine.range_collect(index, data, &queries, &mut results);
    }
    let total = results.total();
    let before = allocations();
    for _ in 0..10 {
        engine.range_collect(index, data, &queries, &mut results);
        assert_eq!(results.total(), total, "{name}: results changed");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{name}: steady-state batches must not allocate"
    );
}

fn knn_points() -> Vec<Point3> {
    (0..16)
        .map(|i| Point3::new((i * 7) as f32, (i * 5) as f32, (i * 3) as f32))
        .collect()
}

fn assert_knn_steady_state_alloc_free(name: &str, index: &dyn KnnIndex, data: &[Element]) {
    let points = knn_points();
    let mut engine = QueryEngine::new();
    let mut results = KnnBatchResults::new();
    // Warm-up: grow the scratch heaps/queues and collector lists.
    for _ in 0..4 {
        engine.knn_collect(index, data, &points, 10, &mut results);
    }
    let total = results.total();
    let before = allocations();
    for _ in 0..10 {
        engine.knn_collect(index, data, &points, 10, &mut results);
        assert_eq!(results.total(), total, "{name}: results changed");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{name}: steady-state kNN batches must not allocate"
    );
}

#[test]
fn grid_rtree_flat_batches_are_allocation_free() {
    let data = soup(4000);
    let grid = UniformGrid::build(&data, GridConfig::auto(&data));
    let replicated = UniformGrid::build(
        &data,
        GridConfig::with_cell_side(GridConfig::auto(&data).cell_side, GridPlacement::Replicate),
    );
    let rtree = RTree::bulk_load(&data, RTreeConfig::default());
    let flat = Flat::build(&data, FlatConfig::auto(&data));
    let scan = LinearScan::build(&data);
    assert_steady_state_alloc_free("grid(center)", &grid, &data);
    assert_steady_state_alloc_free("grid(replicate)", &replicated, &data);
    assert_steady_state_alloc_free("rtree", &rtree, &data);
    assert_steady_state_alloc_free("flat", &flat, &data);
    // The scan's one-pass envelope plan buffers through pooled scratch.
    assert_steady_state_alloc_free("scan(one-pass)", &scan, &data);
}

/// The SoA batch kernels themselves — including the explicit SIMD
/// dispatchers when the `simd` feature is on — must not allocate once the
/// mask/output buffers reached their high-water marks. Runs identically
/// (scalar dispatch) without the feature, so the guarantee is pinned on
/// both paths.
#[test]
fn soa_simd_kernels_are_allocation_free() {
    let data = soup(4000);
    let entries: Vec<(Aabb, ElementId)> = data.iter().map(|e| (e.aabb(), e.id)).collect();
    let soa = simspatial_geom::SoaAabbs::from_entries(&entries);
    let queries = queries();
    let points = knn_points();
    let gather: Vec<ElementId> = (0..data.len() as u32).step_by(3).collect();
    let mut mask = Vec::new();
    let mut dists = Vec::new();
    // Warm-up: every output buffer grows to its final size.
    soa.intersect_mask(&queries[0], &mut mask);
    soa.contains_mask(&queries[0], &mut mask);
    soa.min_dist2_into(&points[0], &mut dists);
    soa.min_dist2_gather_into(&points[0], &gather, &mut dists);
    let before = allocations();
    for _ in 0..10 {
        for q in &queries {
            soa.intersect_mask(q, &mut mask);
            soa.contains_mask(q, &mut mask);
        }
        for p in &points {
            soa.min_dist2_into(p, &mut dists);
            soa.min_dist2_gather_into(p, &gather, &mut dists);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state SoA kernels must not allocate (simd level: {:?})",
        simspatial_geom::simd::level()
    );
}

#[test]
fn grid_rtree_knn_batches_are_allocation_free() {
    let data = soup(4000);
    let grid = UniformGrid::build(&data, GridConfig::auto(&data));
    let replicated = UniformGrid::build(
        &data,
        GridConfig::with_cell_side(GridConfig::auto(&data).cell_side, GridPlacement::Replicate),
    );
    let rtree = RTree::bulk_load(&data, RTreeConfig::default());
    assert_knn_steady_state_alloc_free("grid(center) knn", &grid, &data);
    assert_knn_steady_state_alloc_free("grid(replicate) knn", &replicated, &data);
    assert_knn_steady_state_alloc_free("rtree knn", &rtree, &data);
}
