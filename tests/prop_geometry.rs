//! Property-based tests of the geometry substrate: the algebraic laws every
//! index in the workspace silently relies on, and the exact agreement of
//! the batched SoA kernels with the scalar predicates.

use proptest::prelude::*;
use simspatial::geom::soa::{mask_indices, SoaAabbs, MASK_LANES};
use simspatial::prelude::*;

fn arb_point() -> impl Strategy<Value = Point3> {
    (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0)
        .prop_map(|(x, y, z)| Point3::new(x, y, z))
}

fn arb_aabb() -> impl Strategy<Value = Aabb> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Aabb::new(a, b))
}

/// Boxes for the batched-kernel properties: ordinary random boxes plus the
/// degenerate cases (point boxes, the empty box, flat boxes) that a lane
/// comparison could plausibly mishandle.
fn arb_kernel_box() -> impl Strategy<Value = Aabb> {
    prop_oneof![
        4 => arb_aabb(),
        1 => arb_point().prop_map(Aabb::from_point),
        1 => (arb_point(), 0.0f32..5.0).prop_map(|(p, e)| {
            // Flat box: zero extent along one axis.
            Aabb::new(p, Point3::new(p.x + e, p.y, p.z + e))
        }),
        1 => (0u8..1).prop_map(|_| Aabb::empty()),
    ]
}

fn arb_kernel_boxes() -> impl Strategy<Value = Vec<Aabb>> {
    prop::collection::vec(arb_kernel_box(), 1..200)
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (arb_point(), 0.01f32..5.0).prop_map(|(c, r)| Shape::Sphere(Sphere::new(c, r))),
        (arb_point(), arb_point(), 0.01f32..2.0)
            .prop_map(|(a, b, r)| Shape::Capsule(Capsule::new(a, b, r))),
        arb_aabb().prop_map(Shape::Box),
    ]
}

proptest! {
    #[test]
    fn union_contains_both(a in arb_aabb(), b in arb_aabb()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        // Union is commutative and idempotent.
        prop_assert_eq!(u, b.union(&a));
        prop_assert_eq!(u.union(&a), u);
    }

    #[test]
    fn intersection_is_contained_and_symmetric(a in arb_aabb(), b in arb_aabb()) {
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x, y);
                prop_assert!(a.contains(&x) && b.contains(&x));
                prop_assert!(a.intersects(&b));
            }
            (None, None) => prop_assert!(!a.intersects(&b)),
            _ => prop_assert!(false, "intersection asymmetric"),
        }
    }

    #[test]
    fn intersects_iff_shared_point(a in arb_aabb(), b in arb_aabb()) {
        // The center of the intersection is a witness point.
        if let Some(i) = a.intersection(&b) {
            let w = i.center();
            prop_assert!(a.contains_point(&w) && b.contains_point(&w));
        }
    }

    #[test]
    fn min_distance_is_a_lower_bound(b in arb_aabb(), p in arb_point(), q in arb_point()) {
        // For any point q inside b, dist(p, q) >= mindist(p, b).
        if b.contains_point(&q) {
            prop_assert!(p.distance2(&q) >= b.min_distance2(&p) - 1e-3);
        }
        prop_assert!(b.max_distance2(&p) >= b.min_distance2(&p) - 1e-3);
    }

    #[test]
    fn enlargement_is_nonnegative(a in arb_aabb(), b in arb_aabb()) {
        prop_assert!(a.enlargement(&b) >= -1e-2); // f32 slack
        prop_assert!(a.union(&b).volume() + 1e-2 >= a.volume().max(b.volume()));
    }

    #[test]
    fn inflate_preserves_containment(b in arb_aabb(), m in 0.0f32..10.0) {
        let g = b.inflate(m);
        prop_assert!(g.contains(&b));
        // A point in b stays in g after a move smaller than m (per axis).
        let c = b.center();
        prop_assert!(g.contains_point(&(c + Vec3::new(m * 0.57, -m * 0.57, m * 0.57))));
    }

    #[test]
    fn shape_bbox_is_sound(s in arb_shape(), q in arb_aabb()) {
        let bb = s.aabb();
        // Exact intersection implies bbox intersection (filter soundness).
        if s.intersects_aabb(&q) {
            prop_assert!(bb.intersects(&q), "bbox filter would lose a result: {s:?} {q:?}");
        }
        // The shape's centre is inside its bbox.
        prop_assert!(bb.contains_point(&s.center()));
    }

    #[test]
    fn shape_distance_consistent_with_intersection(a in arb_shape(), b in arb_shape()) {
        let d = a.distance_to_shape(&b);
        prop_assert!(d >= 0.0);
        if a.intersects_shape(&b) {
            prop_assert!(d <= 1e-3, "intersecting shapes must have ~zero distance, got {d}");
        }
        // Symmetry.
        prop_assert!((d - b.distance_to_shape(&a)).abs() <= 1e-3 + d * 1e-3);
    }

    #[test]
    fn translation_moves_distances_rigidly(s in arb_shape(), p in arb_point(),
                                           d in (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0)) {
        let v = Vec3::new(d.0, d.1, d.2);
        let mut moved = s;
        moved.translate(v);
        let before = s.distance_to_point(&p);
        let after = moved.distance_to_point(&(p + v));
        prop_assert!((before - after).abs() < 1e-2 + before * 1e-3,
                     "distance not translation-invariant: {before} vs {after}");
    }

    #[test]
    fn soa_intersect_mask_equals_scalar(boxes in arb_kernel_boxes(), q in arb_kernel_box()) {
        let soa = {
            let mut s = SoaAabbs::new();
            for (i, b) in boxes.iter().enumerate() {
                s.push(*b, i as ElementId);
            }
            s
        };
        let mut mask = Vec::new();
        soa.intersect_mask(&q, &mut mask);
        prop_assert_eq!(mask.len(), boxes.len().div_ceil(MASK_LANES));
        for (i, b) in boxes.iter().enumerate() {
            let bit = mask[i / MASK_LANES] >> (i % MASK_LANES) & 1 == 1;
            prop_assert_eq!(bit, b.intersects(&q), "intersect lane {} on {:?} vs {:?}", i, b, q);
        }
        // No ghost bits past the end of the last word.
        if let Some(last) = mask.last() {
            let used = boxes.len() - (mask.len() - 1) * MASK_LANES;
            if used < MASK_LANES {
                prop_assert_eq!(last >> used, 0u64, "ghost bits beyond lane {}", used);
            }
        }
    }

    #[test]
    fn soa_contains_mask_equals_scalar(boxes in arb_kernel_boxes(), q in arb_kernel_box()) {
        let soa = {
            let mut s = SoaAabbs::new();
            for (i, b) in boxes.iter().enumerate() {
                s.push(*b, i as ElementId);
            }
            s
        };
        let mut mask = Vec::new();
        soa.contains_mask(&q, &mut mask);
        for (i, b) in boxes.iter().enumerate() {
            let bit = mask[i / MASK_LANES] >> (i % MASK_LANES) & 1 == 1;
            prop_assert_eq!(bit, q.contains(b), "contains lane {} on {:?} vs {:?}", i, b, q);
        }
    }

    #[test]
    fn soa_id_collection_equals_mask(boxes in arb_kernel_boxes(), q in arb_kernel_box(),
                                     start in 0usize..220) {
        let soa = {
            let mut s = SoaAabbs::new();
            for (i, b) in boxes.iter().enumerate() {
                s.push(*b, (i * 7) as ElementId); // non-dense ids
            }
            s
        };
        let mut mask = Vec::new();
        soa.intersect_mask(&q, &mut mask);
        let expect: Vec<ElementId> = mask_indices(&mask).map(|i| soa.id_at(i)).collect();
        let mut got = Vec::new();
        soa.intersect_into(&q, &mut got);
        prop_assert_eq!(&got, &expect);
        let mut partial = Vec::new();
        soa.intersect_from_into(start, &q, &mut partial);
        let expect_partial: Vec<(u32, ElementId)> = mask_indices(&mask)
            .filter(|&i| i >= start)
            .map(|i| (i as u32, soa.id_at(i)))
            .collect();
        prop_assert_eq!(partial, expect_partial);
    }

    #[test]
    fn soa_min_dist_equals_scalar(boxes in arb_kernel_boxes(), p in arb_point()) {
        let soa = {
            let mut s = SoaAabbs::new();
            for (i, b) in boxes.iter().enumerate() {
                s.push(*b, i as ElementId);
            }
            s
        };
        let mut dists = Vec::new();
        soa.min_dist2_into(&p, &mut dists);
        prop_assert_eq!(dists.len(), boxes.len());
        for (i, b) in boxes.iter().enumerate() {
            // Exact bit-for-bit agreement: same operations, same order.
            prop_assert_eq!(dists[i].to_bits(), b.min_distance2(&p).to_bits(),
                            "min_dist lane {}: {} vs {}", i, dists[i], b.min_distance2(&p));
        }
    }

    #[test]
    fn capsule_point_distance_matches_containment(c in (arb_point(), arb_point(), 0.01f32..2.0),
                                                  p in arb_point()) {
        let cap = Capsule::new(c.0, c.1, c.2);
        if cap.contains_point(&p) {
            prop_assert_eq!(cap.distance_to_point(&p), 0.0);
        } else {
            prop_assert!(cap.distance_to_point(&p) > 0.0);
        }
    }
}
