//! Tetrahedral meshes with face adjacency.

use simspatial_geom::{Aabb, Point3, Vec3};
use std::collections::HashMap;

/// Identifier of a tetrahedral cell within a [`TetMesh`].
pub type CellId = u32;

/// An unstructured tetrahedral mesh.
///
/// The structure the simulation updates is the vertex array; tetrahedra and
/// their face adjacency are fixed at meshing time. That asymmetry is the
/// core of the paper's §4.3 argument: geometry changes massively every step,
/// connectivity never does.
#[derive(Debug, Clone)]
pub struct TetMesh {
    vertices: Vec<Point3>,
    tets: Vec<[u32; 4]>,
    /// Face neighbours of each tet (up to 4; boundary faces have none).
    adjacency: Vec<Vec<CellId>>,
}

impl TetMesh {
    /// Builds a mesh from raw vertices and tetrahedra, deriving the face
    /// adjacency (two tets are neighbours when they share a triangular face).
    ///
    /// # Panics
    /// Panics if a tet references a missing vertex or a face is shared by
    /// more than two tets (non-manifold input).
    pub fn new(vertices: Vec<Point3>, tets: Vec<[u32; 4]>) -> Self {
        for (i, t) in tets.iter().enumerate() {
            for &v in t {
                assert!(
                    (v as usize) < vertices.len(),
                    "tet {i} references missing vertex {v}"
                );
            }
        }
        let adjacency = build_adjacency(&tets);
        Self {
            vertices,
            tets,
            adjacency,
        }
    }

    /// A convex lattice mesh: an `nx × ny × nz` grid of unit cubes (scaled
    /// by `spacing`), each split into five tetrahedra. The result is convex
    /// — the mesh class DLS supports.
    pub fn lattice(nx: usize, ny: usize, nz: usize, spacing: f32) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "lattice needs positive dimensions"
        );
        assert!(spacing > 0.0, "spacing must be positive");
        let vid =
            |x: usize, y: usize, z: usize| -> u32 { ((z * (ny + 1) + y) * (nx + 1) + x) as u32 };
        let mut vertices = Vec::with_capacity((nx + 1) * (ny + 1) * (nz + 1));
        for z in 0..=nz {
            for y in 0..=ny {
                for x in 0..=nx {
                    vertices.push(Point3::new(
                        x as f32 * spacing,
                        y as f32 * spacing,
                        z as f32 * spacing,
                    ));
                }
            }
        }
        let mut tets = Vec::with_capacity(nx * ny * nz * 5);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let c = [
                        vid(x, y, z),
                        vid(x + 1, y, z),
                        vid(x, y + 1, z),
                        vid(x + 1, y + 1, z),
                        vid(x, y, z + 1),
                        vid(x + 1, y, z + 1),
                        vid(x, y + 1, z + 1),
                        vid(x + 1, y + 1, z + 1),
                    ];
                    // Five-tet decomposition; parity flip keeps shared cube
                    // faces compatible between neighbouring cubes.
                    let even = (x + y + z) % 2 == 0;
                    let five: [[u32; 4]; 5] = if even {
                        [
                            [c[0], c[1], c[3], c[5]],
                            [c[0], c[3], c[2], c[6]],
                            [c[0], c[5], c[6], c[4]],
                            [c[3], c[5], c[6], c[7]],
                            [c[0], c[3], c[6], c[5]],
                        ]
                    } else {
                        [
                            [c[1], c[0], c[2], c[4]],
                            [c[1], c[2], c[3], c[7]],
                            [c[1], c[4], c[7], c[5]],
                            [c[2], c[4], c[6], c[7]],
                            [c[1], c[2], c[7], c[4]],
                        ]
                    };
                    tets.extend_from_slice(&five);
                }
            }
        }
        Self::new(vertices, tets)
    }

    /// A lattice mesh with a rectangular hole (cubes whose grid coordinates
    /// fall inside `hole` are skipped): a *concave* mesh, the class DLS
    /// cannot handle but OCTOPUS can.
    pub fn lattice_with_hole(
        nx: usize,
        ny: usize,
        nz: usize,
        spacing: f32,
        hole: (
            std::ops::Range<usize>,
            std::ops::Range<usize>,
            std::ops::Range<usize>,
        ),
    ) -> Self {
        let full = Self::lattice(nx, ny, nz, spacing);
        // Rebuild keeping only tets whose containing cube is outside the hole.
        let mut kept = Vec::new();
        for (i, tet) in full.tets.iter().enumerate() {
            let cube = i / 5;
            let x = cube % nx;
            let y = (cube / nx) % ny;
            let z = cube / (nx * ny);
            let inside = hole.0.contains(&x) && hole.1.contains(&y) && hole.2.contains(&z);
            if !inside {
                kept.push(*tet);
            }
        }
        Self::new(full.vertices, kept)
    }

    /// Number of tetrahedra.
    pub fn len(&self) -> usize {
        self.tets.len()
    }

    /// True when the mesh has no cells.
    pub fn is_empty(&self) -> bool {
        self.tets.is_empty()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The vertices (live simulation state).
    pub fn vertices(&self) -> &[Point3] {
        &self.vertices
    }

    /// Face neighbours of a cell (≤ 4).
    pub fn neighbors(&self, cell: CellId) -> &[CellId] {
        &self.adjacency[cell as usize]
    }

    /// Current bounding box of a cell.
    pub fn cell_bbox(&self, cell: CellId) -> Aabb {
        let t = self.tets[cell as usize];
        let mut bb = Aabb::from_point(self.vertices[t[0] as usize]);
        for &v in &t[1..] {
            bb = bb.union(&Aabb::from_point(self.vertices[v as usize]));
        }
        bb
    }

    /// Current centroid of a cell.
    pub fn cell_centroid(&self, cell: CellId) -> Point3 {
        let t = self.tets[cell as usize];
        let mut acc = Vec3::ZERO;
        for &v in &t {
            acc += self.vertices[v as usize] - Point3::ORIGIN;
        }
        Point3::ORIGIN + acc / 4.0
    }

    /// Current bounding box of the whole mesh.
    pub fn bounds(&self) -> Aabb {
        Aabb::union_all(self.vertices.iter().map(|&v| Aabb::from_point(v)))
    }

    /// Applies a displacement to every vertex — one deformation step. The
    /// connectivity (and therefore every walker) is untouched; only the
    /// coarse seed grids go stale.
    pub fn displace_vertices(&mut self, mut f: impl FnMut(usize, Point3) -> Vec3) {
        for (i, v) in self.vertices.iter_mut().enumerate() {
            let d = f(i, *v);
            *v += d;
        }
    }

    /// Ids of all cells whose bbox intersects `query` — the linear-scan
    /// ground truth for the walkers.
    pub fn scan_range(&self, query: &Aabb) -> Vec<CellId> {
        (0..self.tets.len() as CellId)
            .filter(|&c| self.cell_bbox(c).intersects(query))
            .collect()
    }
}

/// Face → tets map; a face key is the sorted vertex triple.
fn build_adjacency(tets: &[[u32; 4]]) -> Vec<Vec<CellId>> {
    let mut by_face: HashMap<[u32; 3], Vec<CellId>> = HashMap::with_capacity(tets.len() * 4);
    for (i, t) in tets.iter().enumerate() {
        for skip in 0..4 {
            let mut face = [0u32; 3];
            let mut k = 0;
            for (j, &v) in t.iter().enumerate() {
                if j != skip {
                    face[k] = v;
                    k += 1;
                }
            }
            face.sort_unstable();
            by_face.entry(face).or_default().push(i as CellId);
        }
    }
    let mut adjacency = vec![Vec::new(); tets.len()];
    for (face, cells) in by_face {
        assert!(
            cells.len() <= 2,
            "non-manifold face {face:?} shared by {} tets",
            cells.len()
        );
        if let [a, b] = cells[..] {
            adjacency[a as usize].push(b);
            adjacency[b as usize].push(a);
        }
    }
    adjacency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_counts() {
        let m = TetMesh::lattice(3, 2, 2, 1.0);
        assert_eq!(m.len(), 3 * 2 * 2 * 5);
        assert_eq!(m.vertex_count(), 4 * 3 * 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn adjacency_is_symmetric_and_bounded() {
        let m = TetMesh::lattice(3, 3, 3, 1.0);
        for c in 0..m.len() as CellId {
            let ns = m.neighbors(c);
            assert!(ns.len() <= 4, "cell {c} has {} neighbours", ns.len());
            for &n in ns {
                assert!(
                    m.neighbors(n).contains(&c),
                    "asymmetric adjacency {c} ↔ {n}"
                );
            }
        }
        // Interior connectivity: the central tets must have all 4 neighbours.
        let with_four = (0..m.len() as CellId)
            .filter(|&c| m.neighbors(c).len() == 4)
            .count();
        assert!(with_four > 0, "no interior tets found");
    }

    #[test]
    fn mesh_is_connected() {
        let m = TetMesh::lattice(3, 3, 3, 1.0);
        let mut seen = vec![false; m.len()];
        let mut stack = vec![0 as CellId];
        seen[0] = true;
        let mut count = 1;
        while let Some(c) = stack.pop() {
            for &n in m.neighbors(c) {
                if !seen[n as usize] {
                    seen[n as usize] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        assert_eq!(count, m.len(), "lattice must be face-connected");
    }

    #[test]
    fn hole_reduces_cells_but_stays_manifold() {
        let full = TetMesh::lattice(4, 4, 4, 1.0);
        let holed = TetMesh::lattice_with_hole(4, 4, 4, 1.0, (1..3, 1..3, 1..3));
        assert_eq!(holed.len(), full.len() - 2 * 2 * 2 * 5);
        // The query region inside the hole has no cells.
        let hole_box = Aabb::new(Point3::new(1.4, 1.4, 1.4), Point3::new(2.6, 2.6, 2.6));
        assert!(holed.scan_range(&hole_box).len() < full.scan_range(&hole_box).len());
    }

    #[test]
    fn geometry_helpers() {
        let m = TetMesh::lattice(2, 2, 2, 2.0);
        let b = m.bounds();
        assert_eq!(b.min, Point3::ORIGIN);
        assert_eq!(b.max, Point3::new(4.0, 4.0, 4.0));
        for c in 0..m.len() as CellId {
            let bb = m.cell_bbox(c);
            assert!(bb.contains_point(&m.cell_centroid(c)));
            assert!(b.contains(&bb));
        }
    }

    #[test]
    fn displacement_moves_geometry_not_connectivity() {
        let mut m = TetMesh::lattice(2, 2, 2, 1.0);
        let adj_before: Vec<Vec<CellId>> = (0..m.len() as CellId)
            .map(|c| m.neighbors(c).to_vec())
            .collect();
        m.displace_vertices(|_, _| Vec3::new(0.1, 0.0, 0.0));
        let adj_after: Vec<Vec<CellId>> = (0..m.len() as CellId)
            .map(|c| m.neighbors(c).to_vec())
            .collect();
        assert_eq!(adj_before, adj_after);
        assert!((m.bounds().min.x - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "missing vertex")]
    fn invalid_tet_rejected() {
        TetMesh::new(vec![Point3::ORIGIN], vec![[0, 0, 0, 9]]);
    }

    #[test]
    fn scan_range_finds_local_cells() {
        let m = TetMesh::lattice(4, 4, 4, 1.0);
        let q = Aabb::new(Point3::new(0.1, 0.1, 0.1), Point3::new(0.9, 0.9, 0.9));
        let hits = m.scan_range(&q);
        // The first cube's five tets at least.
        assert!(hits.len() >= 5);
        assert!(hits.iter().all(|&c| m.cell_bbox(c).intersects(&q)));
    }
}
