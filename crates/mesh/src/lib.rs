//! # simspatial-mesh
//!
//! A tetrahedral-mesh substrate and the **connectivity-driven query
//! execution** the paper's §4.3 holds up as the way out of the massive-
//! update trap:
//!
//! > "DLS \[22\] uses an approximate index as well as the mesh connectivity to
//! > execute range queries: the approximate index (which only needs to be
//! > updated infrequently) is used to find a start point near the query
//! > range and the mesh connectivity is used to a) find the query range and
//! > b) to find all results in the range. DLS, however, only works for
//! > convex meshes (without holes). OCTOPUS \[29\] takes the DLS ideas into
//! > memory but also supports concave meshes."
//!
//! * [`TetMesh`] — vertices, tetrahedra, face adjacency; a deforming
//!   simulation moves the *vertices* while the connectivity is invariant,
//!   which is exactly why these queries need no index maintenance.
//! * [`MeshWalker`] with [`WalkStrategy::Dls`] — single seed from a coarse,
//!   stale-tolerant centroid grid, greedy walk to the query, flood fill
//!   within it (complete on convex meshes).
//! * [`MeshWalker`] with [`WalkStrategy::Octopus`] — multiple seeds across
//!   the query region, then the same flood (complete on concave meshes and
//!   meshes with holes).
//!
//! Results are the ids of cells whose bounding boxes intersect the query —
//! the same contract the substrate's scan ground truth uses.

#![warn(missing_docs)]

mod tet;
mod walker;

pub use tet::{CellId, TetMesh};
pub use walker::{MeshWalker, WalkStats, WalkStrategy};
