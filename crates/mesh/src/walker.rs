//! DLS- and OCTOPUS-style range queries over mesh connectivity.

use crate::{CellId, TetMesh};
use simspatial_geom::{stats, Aabb, Point3};
use simspatial_geom::{Element, Shape, Sphere};
use simspatial_index::{GridConfig, GridPlacement, UniformGrid};

/// Seeding strategy of a [`MeshWalker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStrategy {
    /// One seed near the query, greedy-walked into it, then a flood fill —
    /// the DLS scheme \[22\]. Complete only on convex meshes.
    Dls,
    /// Seeds harvested from every coarse cell overlapping the query, then
    /// the same flood — the OCTOPUS scheme \[29\]. Complete on concave
    /// meshes and meshes with holes.
    Octopus,
}

/// Diagnostics of one walked query.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalkStats {
    /// Greedy-walk hops before reaching the query region (DLS phase 1).
    pub walk_hops: u64,
    /// Cells visited by the flood fill.
    pub flood_visits: u64,
    /// Seeds taken from the coarse grid.
    pub seeds: u64,
}

/// A connectivity-driven range-query executor over a [`TetMesh`].
///
/// The only derived state is a *coarse grid over cell centroids* built at
/// construction; it is allowed to go stale as the mesh deforms (report the
/// accumulated drift through [`MeshWalker::note_drift`]) and is refreshed
/// only occasionally ([`MeshWalker::refresh`]) — the "approximate index
/// which only needs to be updated infrequently" of §4.3.
#[derive(Debug, Clone)]
pub struct MeshWalker {
    strategy: WalkStrategy,
    seed_grid: UniformGrid,
    /// Centroid proxies the grid was built over (grid removal/insert needs
    /// the original geometry; we keep the build-time snapshot).
    proxies: Vec<Element>,
    staleness: f32,
    /// Largest cell bbox half-extent at build time (probe slack).
    max_half_extent: f32,
}

impl MeshWalker {
    /// Builds the walker's coarse seed grid: one point proxy per cell
    /// centroid, cells a few mesh-cells wide.
    pub fn build(mesh: &TetMesh, strategy: WalkStrategy) -> Self {
        let proxies: Vec<Element> = (0..mesh.len() as CellId)
            .map(|c| Element::new(c, Shape::Sphere(Sphere::new(mesh.cell_centroid(c), 0.0))))
            .collect();
        let bounds = mesh.bounds();
        let cell_side = if mesh.is_empty() {
            1.0
        } else {
            // ≈ 3 mesh cells per grid cell in each dimension.
            let per_cell = (bounds.volume().max(f32::MIN_POSITIVE) / mesh.len() as f32).cbrt();
            (3.0 * per_cell).max(1e-6)
        };
        let seed_grid = UniformGrid::build(
            &proxies,
            GridConfig::with_cell_side(cell_side, GridPlacement::Center),
        );
        let max_half_extent = (0..mesh.len() as CellId)
            .map(|c| {
                let e = mesh.cell_bbox(c).extent();
                e.x.max(e.y).max(e.z) * 0.5
            })
            .fold(0.0f32, f32::max);
        Self {
            strategy,
            seed_grid,
            proxies,
            staleness: 0.0,
            max_half_extent,
        }
    }

    /// The strategy in force.
    pub fn strategy(&self) -> WalkStrategy {
        self.strategy
    }

    /// Rebuilds the seed grid from current geometry (the infrequent update).
    pub fn refresh(&mut self, mesh: &TetMesh) {
        *self = Self::build(mesh, self.strategy);
    }

    /// Declares that vertices may have moved up to `bound` since the last
    /// refresh; widens seed probes accordingly.
    pub fn note_drift(&mut self, bound: f32) {
        assert!(bound >= 0.0, "drift bound must be non-negative");
        self.staleness += bound;
    }

    /// Accumulated drift slack.
    pub fn staleness(&self) -> f32 {
        self.staleness
    }

    /// All cells whose current bbox intersects `query`.
    pub fn range(&self, mesh: &TetMesh, query: &Aabb) -> Vec<CellId> {
        self.range_with_stats(mesh, query).0
    }

    /// [`MeshWalker::range`] plus walk diagnostics.
    pub fn range_with_stats(&self, mesh: &TetMesh, query: &Aabb) -> (Vec<CellId>, WalkStats) {
        let mut stats_out = WalkStats::default();
        if mesh.is_empty() {
            return (Vec::new(), stats_out);
        }
        // The seed grid stores zero-radius centroid proxies and filters
        // candidates by stored box, so the probe must cover the centroid of
        // every tet whose bbox touches the query. A centroid lies inside its
        // cell's bbox, hence within one full extent (2 x max half-extent)
        // per axis of any point of that bbox.
        let probe = query.inflate(self.staleness + 2.0 * self.max_half_extent);
        let mut in_query = vec![false; mesh.len()];
        let mut visited = vec![false; mesh.len()];
        let mut result = Vec::new();
        let mut frontier: Vec<CellId> = Vec::new();

        let try_seed = |c: CellId,
                        visited: &mut Vec<bool>,
                        in_query: &mut Vec<bool>,
                        result: &mut Vec<CellId>,
                        frontier: &mut Vec<CellId>| {
            if visited[c as usize] {
                return false;
            }
            visited[c as usize] = true;
            if stats::element_test(|| mesh.cell_bbox(c).intersects(query)) {
                in_query[c as usize] = true;
                result.push(c);
                frontier.push(c);
                true
            } else {
                false
            }
        };

        match self.strategy {
            WalkStrategy::Octopus => {
                // Every coarse-grid candidate across the (inflated) query
                // seeds the flood.
                for c in self.seed_grid.range_bbox_candidates(&probe) {
                    stats_out.seeds += 1;
                    try_seed(c, &mut visited, &mut in_query, &mut result, &mut frontier);
                }
            }
            WalkStrategy::Dls => {
                // One seed near the query centre, greedy-walked inward.
                let target = query.center();
                if let Some(start) = self.nearest_seed(&target, &probe) {
                    stats_out.seeds = 1;
                    let mut cur = start;
                    let mut cur_d = mesh.cell_centroid(cur).distance2(&target);
                    loop {
                        if stats::element_test(|| mesh.cell_bbox(cur).intersects(query)) {
                            break;
                        }
                        let mut best = None;
                        for &n in mesh.neighbors(cur) {
                            let d = mesh.cell_centroid(n).distance2(&target);
                            if d < cur_d {
                                cur_d = d;
                                best = Some(n);
                            }
                        }
                        match best {
                            Some(n) => {
                                stats_out.walk_hops += 1;
                                cur = n;
                            }
                            // Local minimum without reaching the query: on a
                            // convex mesh this means the query is off-mesh.
                            None => break,
                        }
                    }
                    try_seed(cur, &mut visited, &mut in_query, &mut result, &mut frontier);
                }
            }
        }

        // Flood fill: the in-range region is collected by crawling faces.
        while let Some(c) = frontier.pop() {
            for &n in mesh.neighbors(c) {
                if visited[n as usize] {
                    continue;
                }
                visited[n as usize] = true;
                stats_out.flood_visits += 1;
                if stats::element_test(|| mesh.cell_bbox(n).intersects(query)) {
                    in_query[n as usize] = true;
                    result.push(n);
                    frontier.push(n);
                }
            }
        }
        (result, stats_out)
    }

    /// The candidate whose (build-time) centroid is closest to `p`,
    /// restricted to the probe region; falls back to a global nearest if the
    /// probe surfaces nothing.
    fn nearest_seed(&self, p: &Point3, probe: &Aabb) -> Option<CellId> {
        let local = self.seed_grid.range_bbox_candidates(probe);
        let pick_nearest = |ids: &[CellId]| -> Option<CellId> {
            ids.iter().copied().min_by(|&a, &b| {
                let da = self.proxies[a as usize].center().distance2(p);
                let db = self.proxies[b as usize].center().distance2(p);
                da.total_cmp(&db)
            })
        };
        if let Some(c) = pick_nearest(&local) {
            return Some(c);
        }
        // Probe missed (query far outside the mesh): seed from anywhere.
        if self.proxies.is_empty() {
            None
        } else {
            let all: Vec<CellId> = (0..self.proxies.len() as CellId).collect();
            pick_nearest(&all)
        }
    }

    /// Approximate derived-state footprint (the dataset itself excluded).
    pub fn memory_bytes(&self) -> usize {
        use simspatial_index::SpatialIndex as _;
        std::mem::size_of::<Self>()
            + self.seed_grid.memory_bytes()
            + self.proxies.capacity() * std::mem::size_of::<Element>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_geom::Vec3;

    fn sorted(mut v: Vec<CellId>) -> Vec<CellId> {
        v.sort_unstable();
        v
    }

    fn queries(bound: f32) -> Vec<Aabb> {
        (0..10)
            .map(|i| {
                let t = i as f32 / 10.0 * bound * 0.7;
                Aabb::new(
                    Point3::new(t, t * 0.8, t * 0.6),
                    Point3::new(
                        t + bound * 0.15,
                        t * 0.8 + bound * 0.2,
                        t * 0.6 + bound * 0.1,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn dls_matches_scan_on_convex_mesh() {
        let mesh = TetMesh::lattice(8, 8, 8, 1.0);
        let w = MeshWalker::build(&mesh, WalkStrategy::Dls);
        for q in queries(8.0) {
            assert_eq!(
                sorted(w.range(&mesh, &q)),
                sorted(mesh.scan_range(&q)),
                "{q:?}"
            );
        }
    }

    #[test]
    fn octopus_matches_scan_on_concave_mesh() {
        let mesh = TetMesh::lattice_with_hole(8, 8, 8, 1.0, (2..6, 2..6, 2..6));
        let w = MeshWalker::build(&mesh, WalkStrategy::Octopus);
        for q in queries(8.0) {
            assert_eq!(
                sorted(w.range(&mesh, &q)),
                sorted(mesh.scan_range(&q)),
                "{q:?}"
            );
        }
        // A query spanning the hole: still complete (cells on both sides).
        let q = Aabb::new(Point3::new(1.0, 3.5, 3.5), Point3::new(7.0, 4.5, 4.5));
        assert_eq!(sorted(w.range(&mesh, &q)), sorted(mesh.scan_range(&q)));
    }

    #[test]
    fn walker_survives_deformation_without_refresh() {
        let mut mesh = TetMesh::lattice(6, 6, 6, 1.0);
        let mut w = MeshWalker::build(&mesh, WalkStrategy::Octopus);
        for step in 0..5 {
            let amp = 0.05;
            mesh.displace_vertices(|i, _| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ step;
                Vec3::new(
                    ((h % 100) as f32 / 100.0 - 0.5) * 2.0 * amp,
                    (((h >> 8) % 100) as f32 / 100.0 - 0.5) * 2.0 * amp,
                    (((h >> 16) % 100) as f32 / 100.0 - 0.5) * 2.0 * amp,
                )
            });
            w.note_drift(amp * 3f32.sqrt());
        }
        for q in queries(6.0) {
            assert_eq!(
                sorted(w.range(&mesh, &q)),
                sorted(mesh.scan_range(&q)),
                "{q:?}"
            );
        }
        w.refresh(&mesh);
        assert_eq!(w.staleness(), 0.0);
    }

    #[test]
    fn dls_walk_reports_hops_for_far_seed() {
        let mesh = TetMesh::lattice(10, 4, 4, 1.0);
        let w = MeshWalker::build(&mesh, WalkStrategy::Dls);
        // Query the far corner: the flood covers it; hops may be 0 if the
        // probe found a local seed, so just check stats are coherent.
        let q = Aabb::new(Point3::new(9.2, 3.2, 3.2), Point3::new(9.8, 3.8, 3.8));
        let (hits, s) = w.range_with_stats(&mesh, &q);
        assert_eq!(sorted(hits), sorted(mesh.scan_range(&q)));
        assert!(s.seeds <= 1);
    }

    #[test]
    fn empty_mesh() {
        let mesh = TetMesh::new(Vec::new(), Vec::new());
        let w = MeshWalker::build(&mesh, WalkStrategy::Dls);
        let q = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0));
        assert!(w.range(&mesh, &q).is_empty());
    }

    #[test]
    fn off_mesh_query_returns_empty() {
        let mesh = TetMesh::lattice(4, 4, 4, 1.0);
        for strategy in [WalkStrategy::Dls, WalkStrategy::Octopus] {
            let w = MeshWalker::build(&mesh, strategy);
            let q = Aabb::new(Point3::new(50.0, 50.0, 50.0), Point3::new(51.0, 51.0, 51.0));
            assert!(w.range(&mesh, &q).is_empty(), "{strategy:?}");
        }
    }
}
