//! Query workload generation.
//!
//! The paper's Figure 2/3 experiment executes "200 queries with a
//! selectivity of 5×10⁻⁴ % at random locations". This module produces such
//! workloads: range queries sized for a target selectivity (fraction of the
//! universe volume, which for homogeneous data equals the expected fraction
//! of elements returned) and kNN query points.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simspatial_geom::{Aabb, Point3, Vec3};

/// The paper's Figure 2/3 selectivity: 5×10⁻⁴ % = 5×10⁻⁶ as a fraction.
pub const PAPER_SELECTIVITY: f64 = 5e-6;

/// A deterministic query workload generator over a universe.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    universe: Aabb,
    rng: SmallRng,
}

impl QueryWorkload {
    /// Creates a workload generator for `universe`.
    ///
    /// # Panics
    /// Panics if the universe is empty.
    pub fn new(universe: Aabb, seed: u64) -> Self {
        assert!(!universe.is_empty(), "query workload needs a universe");
        Self {
            universe,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A uniformly random point inside the universe.
    pub fn random_point(&mut self) -> Point3 {
        let (min, max) = (self.universe.min, self.universe.max);
        Point3::new(
            self.rng.gen_range(min.x..=max.x),
            self.rng.gen_range(min.y..=max.y),
            self.rng.gen_range(min.z..=max.z),
        )
    }

    /// `n` uniformly random points (kNN workload).
    pub fn knn_points(&mut self, n: usize) -> Vec<Point3> {
        (0..n).map(|_| self.random_point()).collect()
    }

    /// A cubic range query whose volume is `selectivity` times the universe
    /// volume, centred at a random location (clamped inside the universe).
    pub fn range_query(&mut self, selectivity: f64) -> Aabb {
        assert!(
            selectivity > 0.0 && selectivity <= 1.0,
            "selectivity must be in (0, 1], got {selectivity}"
        );
        let vol = f64::from(self.universe.volume()) * selectivity;
        let side = vol.cbrt() as f32;
        self.sized_query(Vec3::new(side, side, side))
    }

    /// `n` range queries at the given selectivity.
    pub fn range_queries(&mut self, selectivity: f64, n: usize) -> Vec<Aabb> {
        (0..n).map(|_| self.range_query(selectivity)).collect()
    }

    /// A range query with explicit edge lengths, centred at a random
    /// location and shifted to lie inside the universe (so the realised
    /// selectivity is not silently truncated at the walls).
    pub fn sized_query(&mut self, extent: Vec3) -> Aabb {
        let ext = self.universe.extent();
        let half = extent * 0.5;
        let c = self.random_point();
        let clamp1 = |c: f32, h: f32, lo: f32, hi: f32| {
            if hi - lo <= 2.0 * h {
                (lo + hi) / 2.0 // query wider than the universe: centre it
            } else {
                c.clamp(lo + h, hi - h)
            }
        };
        let center = Point3::new(
            clamp1(
                c.x,
                half.x,
                self.universe.min.x,
                self.universe.min.x + ext.x,
            ),
            clamp1(
                c.y,
                half.y,
                self.universe.min.y,
                self.universe.min.y + ext.y,
            ),
            clamp1(
                c.z,
                half.z,
                self.universe.min.z,
                self.universe.min.z + ext.z,
            ),
        );
        Aabb::new(center - half, center + half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::new(100.0, 100.0, 100.0))
    }

    #[test]
    fn queries_stay_inside() {
        let mut w = QueryWorkload::new(universe(), 1);
        for q in w.range_queries(1e-3, 200) {
            assert!(universe().contains(&q), "query escapes: {q:?}");
        }
    }

    #[test]
    fn selectivity_controls_volume() {
        let mut w = QueryWorkload::new(universe(), 2);
        let q = w.range_query(1e-3);
        let frac = f64::from(q.volume()) / f64::from(universe().volume());
        assert!((frac - 1e-3).abs() / 1e-3 < 0.01, "fraction {frac}");
        let q2 = w.range_query(PAPER_SELECTIVITY);
        assert!(q2.volume() < q.volume());
    }

    #[test]
    fn oversized_query_centres() {
        let mut w = QueryWorkload::new(universe(), 3);
        let q = w.sized_query(Vec3::new(500.0, 10.0, 10.0));
        assert_eq!(q.center().x, 50.0);
    }

    #[test]
    fn deterministic() {
        let a = QueryWorkload::new(universe(), 7).range_queries(1e-4, 5);
        let b = QueryWorkload::new(universe(), 7).range_queries(1e-4, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "selectivity")]
    fn bad_selectivity_rejected() {
        QueryWorkload::new(universe(), 1).range_query(0.0);
    }
}
