//! Element soups: uniform or clustered random datasets.

use crate::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simspatial_geom::{Aabb, Point3, Shape, Sphere, Vec3};

/// Distribution of element sizes (bounding-radius) in a soup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDistribution {
    /// Every element has the same radius.
    Constant(f32),
    /// Radii uniform in `[min, max]`.
    Uniform {
        /// Smallest radius.
        min: f32,
        /// Largest radius.
        max: f32,
    },
}

impl SizeDistribution {
    fn sample(&self, rng: &mut SmallRng) -> f32 {
        match *self {
            SizeDistribution::Constant(r) => r,
            SizeDistribution::Uniform { min, max } => rng.gen_range(min..=max),
        }
    }

    /// The largest radius the distribution can produce.
    pub fn max_radius(&self) -> f32 {
        match *self {
            SizeDistribution::Constant(r) => r,
            SizeDistribution::Uniform { max, .. } => max,
        }
    }
}

/// Clustering parameters for [`ElementSoupBuilder::clustered`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteredConfig {
    /// Number of Gaussian cluster centres.
    pub clusters: usize,
    /// Standard deviation of each cluster, in universe units.
    pub sigma: f32,
}

impl Default for ClusteredConfig {
    fn default() -> Self {
        Self {
            clusters: 16,
            sigma: 2.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Placement {
    Uniform,
    Clustered(ClusteredConfig),
}

/// Builder for random sphere soups.
///
/// The neutral micro-benchmark dataset: spheres placed uniformly or around
/// Gaussian cluster centres. Use [`NeuronDatasetBuilder`](crate::NeuronDatasetBuilder)
/// when the workload calls for the paper's morphology data.
///
/// ```
/// use simspatial_datagen::ElementSoupBuilder;
/// let d = ElementSoupBuilder::new().count(1000).seed(1).build();
/// assert_eq!(d.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ElementSoupBuilder {
    count: usize,
    universe_side: f32,
    sizes: SizeDistribution,
    placement: Placement,
    seed: u64,
}

impl Default for ElementSoupBuilder {
    fn default() -> Self {
        Self {
            count: 10_000,
            universe_side: 100.0,
            sizes: SizeDistribution::Constant(0.1),
            placement: Placement::Uniform,
            seed: 0x50_FA,
        }
    }
}

impl ElementSoupBuilder {
    /// A builder with defaults (10 000 uniform spheres of radius 0.1 in a
    /// 100-unit cube).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    pub fn count(mut self, n: usize) -> Self {
        self.count = n;
        self
    }

    /// Edge length of the cubic universe.
    pub fn universe_side(mut self, side: f32) -> Self {
        assert!(side > 0.0, "universe side must be positive");
        self.universe_side = side;
        self
    }

    /// Element size distribution.
    pub fn sizes(mut self, sizes: SizeDistribution) -> Self {
        self.sizes = sizes;
        self
    }

    /// Places elements around Gaussian cluster centres instead of uniformly.
    pub fn clustered(mut self, config: ClusteredConfig) -> Self {
        assert!(config.clusters > 0, "need at least one cluster");
        self.placement = Placement::Clustered(config);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    pub fn build(&self) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let side = self.universe_side;
        let universe = Aabb::new(Point3::ORIGIN, Point3::new(side, side, side));

        let centers: Vec<Point3> = match self.placement {
            Placement::Uniform => Vec::new(),
            Placement::Clustered(c) => (0..c.clusters)
                .map(|_| {
                    Point3::new(
                        rng.gen_range(0.0..side),
                        rng.gen_range(0.0..side),
                        rng.gen_range(0.0..side),
                    )
                })
                .collect(),
        };

        let shapes = (0..self.count).map(|_| {
            let p = match self.placement {
                Placement::Uniform => Point3::new(
                    rng.gen_range(0.0..side),
                    rng.gen_range(0.0..side),
                    rng.gen_range(0.0..side),
                ),
                Placement::Clustered(c) => {
                    let center = centers[rng.gen_range(0..centers.len())];
                    let mut p = center + gaussian3(&mut rng) * c.sigma;
                    for axis in 0..3 {
                        *p.axis_mut(axis) = p.axis(axis).clamp(0.0, side);
                    }
                    p
                }
            };
            Shape::Sphere(Sphere::new(p, self.sizes.sample(&mut rng)))
        });
        let shapes: Vec<_> = shapes.collect();
        Dataset::from_shapes(shapes, universe)
    }
}

/// A 3-D standard normal sample via Box–Muller.
fn gaussian3(rng: &mut SmallRng) -> Vec3 {
    Vec3::new(gaussian(rng), gaussian(rng), gaussian(rng))
}

/// One standard normal sample via Box–Muller.
pub(crate) fn gaussian(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_soup_fills_universe() {
        let d = ElementSoupBuilder::new().count(5000).seed(2).build();
        assert_eq!(d.len(), 5000);
        // Every octant of the universe should be populated.
        let side = 100.0;
        let mut octants = [0usize; 8];
        for e in d.elements() {
            let c = e.center();
            let idx = (usize::from(c.x > side / 2.0) << 2)
                | (usize::from(c.y > side / 2.0) << 1)
                | usize::from(c.z > side / 2.0);
            octants[idx] += 1;
        }
        for (i, n) in octants.iter().enumerate() {
            assert!(*n > 300, "octant {i} underpopulated: {n}");
        }
    }

    #[test]
    fn clustered_soup_is_clustered() {
        let d = ElementSoupBuilder::new()
            .count(5000)
            .clustered(ClusteredConfig {
                clusters: 4,
                sigma: 1.0,
            })
            .seed(3)
            .build();
        // With 4 tight clusters in a 100³ universe, the average pairwise
        // distance of consecutive elements to the dataset centroid must be
        // far smaller than for uniform data... simplest robust check: count
        // populated 10³ cells; clustering leaves most cells empty.
        let mut occupied = std::collections::HashSet::new();
        for e in d.elements() {
            let c = e.center();
            occupied.insert((
                (c.x / 10.0) as i32,
                (c.y / 10.0) as i32,
                (c.z / 10.0) as i32,
            ));
        }
        assert!(
            occupied.len() < 200,
            "too many occupied cells: {}",
            occupied.len()
        );
    }

    #[test]
    fn size_distribution_respected() {
        let d = ElementSoupBuilder::new()
            .count(1000)
            .sizes(SizeDistribution::Uniform { min: 0.5, max: 1.0 })
            .seed(4)
            .build();
        for e in d.elements() {
            let ext = e.aabb().extent();
            assert!(ext.x >= 1.0 - 1e-5 && ext.x <= 2.0 + 1e-5);
        }
        assert_eq!(
            SizeDistribution::Uniform { min: 0.5, max: 1.0 }.max_radius(),
            1.0
        );
        assert_eq!(SizeDistribution::Constant(0.3).max_radius(), 0.3);
    }

    #[test]
    fn deterministic() {
        let a = ElementSoupBuilder::new().count(100).seed(9).build();
        let b = ElementSoupBuilder::new().count(100).seed(9).build();
        assert_eq!(a.elements(), b.elements());
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
