//! The in-memory dataset: the simulation state every index is built over.

use simspatial_geom::{Aabb, Element, ElementId, Point3, Vec3};

/// A spatial dataset: the elements of a simulation model plus the universe
/// they live in.
///
/// This is the paper's "spatial model ... stored in the main memory of the
/// simulation infrastructure" (§2.1). The simulation engine mutates elements
/// in place between steps; indexes reference elements by [`ElementId`] and
/// are refreshed by whichever update strategy is under evaluation.
#[derive(Debug, Clone)]
pub struct Dataset {
    elements: Vec<Element>,
    universe: Aabb,
}

impl Dataset {
    /// Wraps a vector of elements. Element ids must equal their position —
    /// the invariant every index in the workspace relies on for O(1) lookup.
    ///
    /// # Panics
    /// Panics if any element's id differs from its index, or if `universe`
    /// is empty while elements exist.
    pub fn new(elements: Vec<Element>, universe: Aabb) -> Self {
        for (i, e) in elements.iter().enumerate() {
            assert_eq!(e.id as usize, i, "element id {} at position {i}", e.id);
        }
        assert!(
            elements.is_empty() || !universe.is_empty(),
            "non-empty dataset needs a universe"
        );
        Self { elements, universe }
    }

    /// Builds a dataset from shapes, assigning sequential ids.
    pub fn from_shapes<I>(shapes: I, universe: Aabb) -> Self
    where
        I: IntoIterator<Item = simspatial_geom::Shape>,
    {
        let elements = shapes
            .into_iter()
            .enumerate()
            .map(|(i, s)| Element::new(ElementId::try_from(i).expect("dataset exceeds u32 ids"), s))
            .collect();
        Self::new(elements, universe)
    }

    /// The elements, id-ordered.
    #[inline]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable access for the simulation update phase.
    #[inline]
    pub fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// Element lookup by id.
    #[inline]
    pub fn get(&self, id: ElementId) -> &Element {
        &self.elements[id as usize]
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the dataset holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The universe bounding box the generator targeted.
    #[inline]
    pub fn universe(&self) -> Aabb {
        self.universe
    }

    /// Tight bounding box of the current element positions (recomputed).
    pub fn bounds(&self) -> Aabb {
        Aabb::union_all(self.elements.iter().map(Element::aabb))
    }

    /// Moves element `id` by `d`, reflecting at the universe boundary so the
    /// density regime is preserved across simulation steps.
    pub fn displace(&mut self, id: ElementId, d: Vec3) {
        let e = &mut self.elements[id as usize];
        let c = e.center();
        let target = clamp_reflect(c + d, c, &self.universe);
        e.translate(target - c);
    }
}

/// Reflects a proposed position back into `universe`; if the proposal is
/// inside, it is returned unchanged. Falls back to the original position for
/// pathological displacements that remain outside after one reflection.
fn clamp_reflect(proposed: Point3, original: Point3, universe: &Aabb) -> Point3 {
    if universe.contains_point(&proposed) {
        return proposed;
    }
    let mut p = proposed;
    for axis in 0..3 {
        let lo = universe.min.axis(axis);
        let hi = universe.max.axis(axis);
        let v = p.axis_mut(axis);
        if *v < lo {
            *v = lo + (lo - *v);
        } else if *v > hi {
            *v = hi - (*v - hi);
        }
    }
    if universe.contains_point(&p) {
        p
    } else {
        original
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_geom::{Shape, Sphere};

    fn unit_universe() -> Aabb {
        Aabb::new(Point3::ORIGIN, Point3::new(10.0, 10.0, 10.0))
    }

    fn sphere_dataset(centers: &[(f32, f32, f32)]) -> Dataset {
        Dataset::from_shapes(
            centers
                .iter()
                .map(|&(x, y, z)| Shape::Sphere(Sphere::new(Point3::new(x, y, z), 0.1))),
            unit_universe(),
        )
    }

    #[test]
    fn ids_are_positions() {
        let d = sphere_dataset(&[(1.0, 1.0, 1.0), (2.0, 2.0, 2.0)]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(1).center(), Point3::new(2.0, 2.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "element id")]
    fn wrong_id_rejected() {
        let e = Element::new(5, Shape::Sphere(Sphere::new(Point3::ORIGIN, 1.0)));
        Dataset::new(vec![e], unit_universe());
    }

    #[test]
    fn displace_moves_and_reflects() {
        let mut d = sphere_dataset(&[(5.0, 5.0, 5.0)]);
        d.displace(0, Vec3::new(1.0, 0.0, 0.0));
        assert_eq!(d.get(0).center(), Point3::new(6.0, 5.0, 5.0));
        // Pushing past the wall reflects back inside.
        d.displace(0, Vec3::new(5.0, 0.0, 0.0));
        let c = d.get(0).center();
        assert!(d.universe().contains_point(&c));
        assert!((c.x - 9.0).abs() < 1e-6); // 6 + 5 = 11 → 10 - 1 = 9
    }

    #[test]
    fn bounds_track_movement() {
        let mut d = sphere_dataset(&[(5.0, 5.0, 5.0)]);
        let before = d.bounds();
        d.displace(0, Vec3::new(2.0, 0.0, 0.0));
        let after = d.bounds();
        assert!(after.center().x > before.center().x);
    }

    #[test]
    fn empty_dataset_ok() {
        let d = Dataset::new(vec![], Aabb::empty());
        assert!(d.is_empty());
        assert!(d.bounds().is_empty());
    }
}
