//! Synthetic neuron morphology generator.
//!
//! Substitute for the Blue Brain dataset described in the paper's appendix
//! ("500'000 neurons in space, each modeled with thousands of cylinders").
//! Real morphologies are trees of tapering cylinder segments radiating from
//! a soma; the index experiments only depend on the resulting *spatial
//! statistics* — dense clusters of short, thin, elongated elements with
//! heavily overlapping bounding boxes. We grow each neuron as a set of
//! branching random walks ("neurites") from a soma position and emit one
//! capsule per walk step.

use crate::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simspatial_geom::{Aabb, Capsule, Point3, Shape, Sphere, Vec3};

/// Builder for a synthetic neuron dataset.
///
/// ```
/// use simspatial_datagen::NeuronDatasetBuilder;
/// let d = NeuronDatasetBuilder::new().neurons(5).segments_per_neuron(100).seed(7).build();
/// assert_eq!(d.len(), 5 * (100 + 1)); // segments + 1 soma each
/// ```
#[derive(Debug, Clone)]
pub struct NeuronDatasetBuilder {
    neurons: usize,
    segments_per_neuron: usize,
    universe_side: f32,
    segment_length: f32,
    segment_radius: f32,
    branch_probability: f32,
    soma_radius: f32,
    seed: u64,
}

impl Default for NeuronDatasetBuilder {
    fn default() -> Self {
        Self {
            neurons: 100,
            segments_per_neuron: 1000,
            // Side chosen so the default 100k-element build matches the
            // paper's density regime (its 285 µm³ microcircuit volume scaled
            // to the element count; see DESIGN.md scaling note).
            universe_side: 100.0,
            segment_length: 1.0,
            segment_radius: 0.1,
            branch_probability: 0.05,
            soma_radius: 1.0,
            seed: 0xBB_0123,
        }
    }
}

impl NeuronDatasetBuilder {
    /// A builder with the defaults documented on each setter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of neurons (default 100).
    pub fn neurons(mut self, n: usize) -> Self {
        self.neurons = n;
        self
    }

    /// Cylinder segments grown per neuron (default 1000; the paper's
    /// morphologies have "thousands").
    pub fn segments_per_neuron(mut self, n: usize) -> Self {
        self.segments_per_neuron = n;
        self
    }

    /// Edge length of the cubic universe in µm (default 100).
    pub fn universe_side(mut self, side: f32) -> Self {
        assert!(side > 0.0, "universe side must be positive");
        self.universe_side = side;
        self
    }

    /// Mean neurite segment length in µm (default 1.0).
    pub fn segment_length(mut self, len: f32) -> Self {
        assert!(len > 0.0, "segment length must be positive");
        self.segment_length = len;
        self
    }

    /// Capsule radius in µm (default 0.1 — thin neurites).
    pub fn segment_radius(mut self, r: f32) -> Self {
        assert!(r > 0.0, "segment radius must be positive");
        self.segment_radius = r;
        self
    }

    /// Probability that a growth step spawns a new branch (default 0.05).
    pub fn branch_probability(mut self, p: f32) -> Self {
        assert!((0.0..=1.0).contains(&p), "branch probability in [0,1]");
        self.branch_probability = p;
        self
    }

    /// RNG seed (default fixed; same seed ⇒ identical dataset).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Grows the dataset. Elements are emitted neuron by neuron: one soma
    /// sphere followed by that neuron's capsule segments, so consecutive ids
    /// are spatially correlated (as in morphology files).
    pub fn build(&self) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let universe = Aabb::new(
            Point3::ORIGIN,
            Point3::new(self.universe_side, self.universe_side, self.universe_side),
        );
        let mut shapes = Vec::with_capacity(self.neurons * (self.segments_per_neuron + 1));

        for _ in 0..self.neurons {
            let soma = Point3::new(
                rng.gen_range(0.0..self.universe_side),
                rng.gen_range(0.0..self.universe_side),
                rng.gen_range(0.0..self.universe_side),
            );
            shapes.push(Shape::Sphere(Sphere::new(soma, self.soma_radius)));
            self.grow_neurites(&mut rng, soma, &universe, &mut shapes);
        }
        Dataset::from_shapes(shapes, universe)
    }

    /// Grows branching random walks until the segment budget is exhausted.
    fn grow_neurites(
        &self,
        rng: &mut SmallRng,
        soma: Point3,
        universe: &Aabb,
        out: &mut Vec<Shape>,
    ) {
        // Active growth cones: (tip position, direction).
        let initial_branches = 4;
        let mut cones: Vec<(Point3, Vec3)> = (0..initial_branches)
            .map(|_| (soma, random_unit(rng)))
            .collect();
        let mut remaining = self.segments_per_neuron;

        while remaining > 0 {
            let i = rng.gen_range(0..cones.len());
            let (tip, dir) = cones[i];
            // Tortuosity: jitter the direction, renormalise.
            let jitter = random_unit(rng) * 0.4;
            let new_dir = (dir + jitter).normalized().unwrap_or(dir);
            let len = self.segment_length * rng.gen_range(0.5..1.5);
            let mut new_tip = tip + new_dir * len;
            // Keep inside the universe: reflect the offending coordinates.
            for axis in 0..3 {
                let lo = universe.min.axis(axis) + self.segment_radius;
                let hi = universe.max.axis(axis) - self.segment_radius;
                let v = new_tip.axis_mut(axis);
                if *v < lo {
                    *v = lo + (lo - *v).min(hi - lo);
                } else if *v > hi {
                    *v = hi - (*v - hi).min(hi - lo);
                }
            }
            // Taper: radius shrinks with distance from the soma.
            let dist = soma.distance(&new_tip);
            let radius = (self.segment_radius * (1.0 - dist / (4.0 * self.universe_side)))
                .max(self.segment_radius * 0.25);
            out.push(Shape::Capsule(Capsule::new(tip, new_tip, radius)));
            remaining -= 1;

            cones[i] = (new_tip, new_tip - tip);
            if rng.gen::<f32>() < self.branch_probability {
                cones.push((new_tip, random_unit(rng)));
            }
        }
    }
}

/// A uniformly distributed unit vector (Marsaglia rejection method).
fn random_unit(rng: &mut SmallRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
            rng.gen_range(-1.0f32..1.0),
        );
        let l2 = v.length2();
        if l2 > 1e-4 && l2 <= 1.0 {
            return v / l2.sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_geom::Shape;

    #[test]
    fn deterministic_for_same_seed() {
        let a = NeuronDatasetBuilder::new()
            .neurons(3)
            .segments_per_neuron(50)
            .seed(1)
            .build();
        let b = NeuronDatasetBuilder::new()
            .neurons(3)
            .segments_per_neuron(50)
            .seed(1)
            .build();
        assert_eq!(a.elements(), b.elements());
        let c = NeuronDatasetBuilder::new()
            .neurons(3)
            .segments_per_neuron(50)
            .seed(2)
            .build();
        assert_ne!(a.elements(), c.elements());
    }

    #[test]
    fn element_count_and_composition() {
        let d = NeuronDatasetBuilder::new()
            .neurons(4)
            .segments_per_neuron(25)
            .seed(3)
            .build();
        assert_eq!(d.len(), 4 * 26);
        let somas = d
            .elements()
            .iter()
            .filter(|e| matches!(e.shape, Shape::Sphere(_)))
            .count();
        let segments = d
            .elements()
            .iter()
            .filter(|e| matches!(e.shape, Shape::Capsule(_)))
            .count();
        assert_eq!(somas, 4);
        assert_eq!(segments, 100);
    }

    #[test]
    fn all_elements_inside_universe() {
        let d = NeuronDatasetBuilder::new()
            .neurons(5)
            .segments_per_neuron(200)
            .universe_side(30.0)
            .seed(9)
            .build();
        // Allow the capsule radius + soma radius as slack at the walls.
        let slack = 1.5;
        let u = d.universe().inflate(slack);
        for e in d.elements() {
            assert!(
                u.contains(&e.aabb()),
                "element {} escapes universe: {:?}",
                e.id,
                e.aabb()
            );
        }
    }

    #[test]
    fn segments_are_connected_walks() {
        // Consecutive capsules of a neuron share endpoints often enough that
        // the data is clustered: the mean nearest-consecutive distance must
        // be far below the universe side.
        let d = NeuronDatasetBuilder::new()
            .neurons(2)
            .segments_per_neuron(100)
            .seed(5)
            .build();
        let caps: Vec<_> = d
            .elements()
            .iter()
            .filter_map(|e| match e.shape {
                Shape::Capsule(c) => Some(c),
                _ => None,
            })
            .collect();
        let mean_len: f32 = caps.iter().map(|c| c.axis_length()).sum::<f32>() / caps.len() as f32;
        assert!(
            mean_len < 2.0,
            "segments should be short, got mean {mean_len}"
        );
    }

    #[test]
    fn clustering_is_present() {
        // Neuron data must be far more clustered than uniform: measure the
        // fraction of elements within one soma's reach of their neuron seed.
        let d = NeuronDatasetBuilder::new()
            .neurons(3)
            .segments_per_neuron(300)
            .universe_side(200.0)
            .seed(11)
            .build();
        let bounds = d.bounds();
        // Three neurons of ~segment_length*sqrt(steps) extent in a 200-side
        // cube: the occupied volume must be a small fraction of the universe.
        let occupied: f32 = d.elements().iter().map(|e| e.aabb().volume()).sum();
        assert!(
            occupied < bounds.volume(),
            "elements should not tile the space"
        );
    }
}
