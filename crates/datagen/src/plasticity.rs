//! Neural-plasticity displacement streams.
//!
//! §4.1 of the paper measures a sample run of a neural plasticity
//! simulation: across one thousand steps *all* elements move every step,
//! but only by 0.04 µm on average, and fewer than 0.5 % of elements move
//! more than 0.1 µm. That "massive yet minimal" update pattern is the crux
//! of the paper's second challenge, so the generator reproduces it exactly.
//!
//! We model the per-step displacement as an isotropic 3-D Gaussian. Its
//! magnitude then follows a Maxwell–Boltzmann distribution with mean
//! `2σ√(2/π) ≈ 1.5958 σ`; solving for a 0.04 µm mean gives σ ≈ 0.02507 µm,
//! under which `P(‖d‖ > 0.1 µm) ≈ 0.12 %` — comfortably inside the paper's
//! "< 0.5 %" bound. Both statistics are asserted by tests and re-measured
//! by experiment E5 of the harness.

use crate::soup::gaussian;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use simspatial_geom::Vec3;

/// Mean per-step displacement reported by the paper, in µm.
pub const PAPER_MEAN_STEP_UM: f32 = 0.04;
/// Displacement threshold of the paper's tail statistic, in µm.
pub const PAPER_TAIL_THRESHOLD_UM: f32 = 0.1;
/// Maximum fraction of elements allowed past the threshold per the paper.
pub const PAPER_TAIL_FRACTION: f32 = 0.005;

/// Generator of per-step displacement vectors for every element.
#[derive(Debug, Clone)]
pub struct PlasticityModel {
    sigma: f32,
    rng: SmallRng,
}

impl PlasticityModel {
    /// A model calibrated to the paper's statistics (mean step 0.04 µm).
    pub fn paper_calibrated(seed: u64) -> Self {
        // mean = 2σ√(2/π)  ⇒  σ = mean · √(π/2) / 2
        let sigma = PAPER_MEAN_STEP_UM * (std::f32::consts::PI / 2.0).sqrt() / 2.0;
        Self::with_sigma(sigma, seed)
    }

    /// A model with an explicit per-axis standard deviation, for sweeps that
    /// scale the movement magnitude (e.g. experiment E9's sensitivity runs).
    pub fn with_sigma(sigma: f32, seed: u64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        Self {
            sigma,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Per-axis standard deviation of the displacement Gaussian.
    #[inline]
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Expected displacement magnitude (Maxwell–Boltzmann mean).
    #[inline]
    pub fn expected_step(&self) -> f32 {
        2.0 * self.sigma * (2.0 / std::f32::consts::PI).sqrt()
    }

    /// Draws the displacement of one element for the current step.
    #[inline]
    pub fn sample(&mut self) -> Vec3 {
        Vec3::new(
            gaussian(&mut self.rng) * self.sigma,
            gaussian(&mut self.rng) * self.sigma,
            gaussian(&mut self.rng) * self.sigma,
        )
    }

    /// Draws displacements for `n` elements (one simulation step).
    pub fn sample_step(&mut self, n: usize) -> Vec<Vec3> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Summary statistics of a batch of displacements — what experiment E5
/// compares against the paper's §4.1 numbers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DisplacementStats {
    /// Number of displacements measured.
    pub count: usize,
    /// Mean magnitude.
    pub mean: f32,
    /// Maximum magnitude.
    pub max: f32,
    /// Fraction of displacements with magnitude above 0.1 µm.
    pub tail_fraction: f32,
    /// Fraction of elements that moved at all (paper: all of them).
    pub moved_fraction: f32,
}

impl DisplacementStats {
    /// Measures a batch of displacement vectors.
    pub fn measure(displacements: &[Vec3]) -> Self {
        let count = displacements.len();
        if count == 0 {
            return Self {
                count: 0,
                mean: 0.0,
                max: 0.0,
                tail_fraction: 0.0,
                moved_fraction: 0.0,
            };
        }
        let mut sum = 0.0f64;
        let mut max = 0.0f32;
        let mut tail = 0usize;
        let mut moved = 0usize;
        for d in displacements {
            let m = d.length();
            sum += f64::from(m);
            max = max.max(m);
            if m > PAPER_TAIL_THRESHOLD_UM {
                tail += 1;
            }
            if m > 0.0 {
                moved += 1;
            }
        }
        Self {
            count,
            mean: (sum / count as f64) as f32,
            max,
            tail_fraction: tail as f32 / count as f32,
            moved_fraction: moved as f32 / count as f32,
        }
    }

    /// Whether the batch matches the paper's §4.1 characterisation.
    pub fn matches_paper(&self) -> bool {
        (self.mean - PAPER_MEAN_STEP_UM).abs() < 0.005
            && self.tail_fraction < PAPER_TAIL_FRACTION
            && self.moved_fraction > 0.999
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper() {
        let mut model = PlasticityModel::paper_calibrated(42);
        assert!((model.expected_step() - PAPER_MEAN_STEP_UM).abs() < 1e-4);
        let step = model.sample_step(100_000);
        let stats = DisplacementStats::measure(&step);
        assert!(stats.matches_paper(), "stats off: {stats:?}");
        assert!((stats.mean - 0.04).abs() < 0.002, "mean {}", stats.mean);
        assert!(stats.tail_fraction < 0.005, "tail {}", stats.tail_fraction);
        assert!(stats.moved_fraction > 0.999);
    }

    #[test]
    fn sigma_scales_displacements() {
        let mut small = PlasticityModel::with_sigma(0.01, 7);
        let mut large = PlasticityModel::with_sigma(1.0, 7);
        let s = DisplacementStats::measure(&small.sample_step(5000));
        let l = DisplacementStats::measure(&large.sample_step(5000));
        assert!(l.mean > 50.0 * s.mean);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PlasticityModel::paper_calibrated(1);
        let mut b = PlasticityModel::paper_calibrated(1);
        assert_eq!(a.sample_step(10), b.sample_step(10));
    }

    #[test]
    fn empty_batch() {
        let s = DisplacementStats::measure(&[]);
        assert_eq!(s.count, 0);
        assert!(!s.matches_paper());
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn invalid_sigma_rejected() {
        PlasticityModel::with_sigma(0.0, 1);
    }
}
