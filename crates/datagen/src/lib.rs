//! # simspatial-datagen
//!
//! Synthetic dataset and workload generators standing in for the proprietary
//! data the paper experiments on.
//!
//! The paper's appendix describes its dataset as "a neuroscience dataset
//! representing 500'000 neurons in space (each modeled with thousands of
//! cylinders)" — Blue Brain Project data we cannot ship. Following the
//! reproduction brief's substitution rule, this crate grows *statistically
//! comparable* data from scratch:
//!
//! * [`NeuronDatasetBuilder`] — branched neuron morphologies as capsule
//!   (cylinder) segment soups: a soma sphere plus stochastically branching
//!   neurite random walks. The result has the two properties the paper's
//!   experiments actually depend on: heavy spatial clustering and elongated
//!   elements whose bounding boxes overlap.
//! * [`ElementSoupBuilder`] — uniform or Gaussian-clustered element soups,
//!   the neutral backdrop for index micro-benchmarks.
//! * [`PlasticityModel`] — per-step displacement streams calibrated to §4.1
//!   of the paper: *every* element moves each step, the mean displacement is
//!   0.04 µm and fewer than 0.5 % of elements move more than 0.1 µm.
//! * [`QueryWorkload`] — range-query and kNN workloads at controlled
//!   selectivity ("200 queries with a selectivity of 5×10⁻⁴ % at random
//!   locations").
//!
//! All generators are seeded and fully deterministic.

#![warn(missing_docs)]

mod dataset;
mod neuron;
mod plasticity;
mod queries;
mod soup;

pub use dataset::Dataset;
pub use neuron::NeuronDatasetBuilder;
pub use plasticity::{
    DisplacementStats, PlasticityModel, PAPER_MEAN_STEP_UM, PAPER_TAIL_FRACTION,
    PAPER_TAIL_THRESHOLD_UM,
};
pub use queries::{QueryWorkload, PAPER_SELECTIVITY};
pub use soup::{ClusteredConfig, ElementSoupBuilder, SizeDistribution};
