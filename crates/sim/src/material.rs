//! Material-deformation workload \[2\].
//!
//! §2.2: "Material scientists ... need nearest neighbor queries to simulate
//! material deformation: the position of a vertex in the discretized
//! material model at the next simulation step is computed based on the
//! force fields of its nearest neighbors."
//!
//! Each element relaxes toward the centroid of the neighbours found within
//! an interaction radius — and crucially the neighbours are retrieved
//! **through the index strategy under test**, so the update phase itself
//! exercises the index, exactly the "update queries" of Figure 1.

use crate::engine::Workload;
use simspatial_datagen::Dataset;
use simspatial_geom::{Aabb, Vec3};
use simspatial_moving::UpdateStrategy;

/// Spring relaxation toward local neighbourhood centroids.
pub struct MaterialWorkload {
    /// Interaction radius around each element.
    radius: f32,
    /// Relaxation rate κ ∈ (0, 1]: fraction of the gap closed per step.
    kappa: f32,
}

impl MaterialWorkload {
    /// Creates the workload.
    ///
    /// # Panics
    /// Panics unless `radius > 0` and `0 < kappa <= 1`.
    pub fn new(radius: f32, kappa: f32) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "radius must be positive"
        );
        assert!(kappa > 0.0 && kappa <= 1.0, "kappa in (0, 1]");
        Self { radius, kappa }
    }
}

impl Workload for MaterialWorkload {
    fn name(&self) -> &'static str {
        "material-deformation"
    }

    fn displacements(&mut self, data: &Dataset, index: &dyn UpdateStrategy) -> Vec<Vec3> {
        let r = self.radius;
        data.elements()
            .iter()
            .map(|e| {
                let c = e.center();
                let probe = Aabb::from_point(c).inflate(r);
                // Neighbour retrieval through the index under test.
                let neighbors = index.range(data.elements(), &probe);
                let mut acc = Vec3::ZERO;
                let mut count = 0u32;
                for id in neighbors {
                    if id == e.id {
                        continue;
                    }
                    let nc = data.get(id).center();
                    if nc.distance2(&c) <= r * r {
                        acc += nc - c;
                        count += 1;
                    }
                }
                if count == 0 {
                    Vec3::ZERO
                } else {
                    acc * (self.kappa / count as f32)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_datagen::Dataset;
    use simspatial_geom::{Point3, Shape, Sphere};
    use simspatial_moving::UpdateStrategyKind;

    fn pair_dataset(gap: f32) -> Dataset {
        Dataset::from_shapes(
            [
                Shape::Sphere(Sphere::new(Point3::new(5.0, 5.0, 5.0), 0.1)),
                Shape::Sphere(Sphere::new(Point3::new(5.0 + gap, 5.0, 5.0), 0.1)),
            ],
            Aabb::new(Point3::ORIGIN, Point3::new(10.0, 10.0, 10.0)),
        )
    }

    #[test]
    fn neighbours_attract_within_radius() {
        let data = pair_dataset(1.0);
        let strategy = UpdateStrategyKind::GridMigrate.create(data.elements());
        let mut w = MaterialWorkload::new(2.0, 0.5);
        let moves = w.displacements(&data, strategy.as_ref());
        assert!(moves[0].x > 0.0 && moves[1].x < 0.0, "{moves:?}");
        // κ = 0.5 closes half the 1.0 gap split across both: each moves 0.5·1.0.
        assert!((moves[0].x - 0.5).abs() < 1e-5);
    }

    #[test]
    fn isolated_elements_do_not_move() {
        let data = pair_dataset(8.0); // beyond the radius
        let strategy = UpdateStrategyKind::GridMigrate.create(data.elements());
        let mut w = MaterialWorkload::new(2.0, 0.5);
        let moves = w.displacements(&data, strategy.as_ref());
        assert_eq!(moves[0], Vec3::ZERO);
        assert_eq!(moves[1], Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "kappa")]
    fn bad_kappa_rejected() {
        MaterialWorkload::new(1.0, 0.0);
    }
}
