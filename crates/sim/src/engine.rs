//! The step loop: update → maintain → monitor.

use simspatial_datagen::{Dataset, QueryWorkload};
use simspatial_geom::Vec3;
use simspatial_moving::{StepCost, UpdateStrategy, UpdateStrategyKind};
use std::time::Instant;

/// A simulation workload: computes the per-element displacement of one step.
///
/// The workload may query `index` — that is how the paper's n-body and
/// material-science updates work ("analysis & update queries" in Figure 1's
/// simulation phase). The returned vector must have exactly one entry per
/// element.
pub trait Workload {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Displacements for the current step.
    fn displacements(&mut self, data: &Dataset, index: &dyn UpdateStrategy) -> Vec<Vec3>;
}

/// Configuration of a [`Simulation`].
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Index-maintenance strategy under test.
    pub strategy: UpdateStrategyKind,
    /// Monitoring range queries issued per step (the paper speaks of
    /// thousands; scale to taste).
    pub monitor_queries_per_step: usize,
    /// Selectivity of each monitoring query (fraction of universe volume).
    pub monitor_selectivity: f64,
    /// Seed for the monitor query generator.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            strategy: UpdateStrategyKind::GridMigrate,
            monitor_queries_per_step: 100,
            monitor_selectivity: 1e-4,
            seed: 0x51_0AD,
        }
    }
}

/// Timing and accounting of one executed step.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepReport {
    /// Step number (0-based).
    pub step: usize,
    /// Seconds computing displacements (the workload).
    pub update_s: f64,
    /// Seconds maintaining the index.
    pub maintain_s: f64,
    /// Seconds executing monitoring queries.
    pub monitor_s: f64,
    /// Index maintenance accounting.
    pub cost: StepCost,
    /// Total monitoring query results.
    pub monitor_results: u64,
}

impl StepReport {
    /// Total wall-clock of the step.
    pub fn total_s(&self) -> f64 {
        self.update_s + self.maintain_s + self.monitor_s
    }
}

/// A running time-stepped simulation.
pub struct Simulation {
    data: Dataset,
    workload: Box<dyn Workload>,
    strategy: Box<dyn UpdateStrategy>,
    queries: QueryWorkload,
    config: SimulationConfig,
    step: usize,
    /// Scratch buffer holding the previous step's elements.
    old: Vec<simspatial_geom::Element>,
}

impl Simulation {
    /// Sets up the simulation: builds the strategy's index over the initial
    /// state.
    pub fn new(data: Dataset, workload: Box<dyn Workload>, config: SimulationConfig) -> Self {
        let strategy = config.strategy.create(data.elements());
        let universe = data.universe();
        assert!(
            !universe.is_empty(),
            "simulation needs a non-empty universe"
        );
        Self {
            strategy,
            workload,
            queries: QueryWorkload::new(universe, config.seed),
            data,
            config,
            step: 0,
            old: Vec::new(),
        }
    }

    /// The live dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The maintenance strategy under test.
    pub fn strategy(&self) -> &dyn UpdateStrategy {
        self.strategy.as_ref()
    }

    /// Steps executed so far.
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// Executes one step and reports its cost split.
    pub fn run_step(&mut self) -> StepReport {
        let mut report = StepReport {
            step: self.step,
            ..Default::default()
        };

        // --- update phase -------------------------------------------------
        let t = Instant::now();
        let moves = self
            .workload
            .displacements(&self.data, self.strategy.as_ref());
        assert_eq!(
            moves.len(),
            self.data.len(),
            "workload must move every element"
        );
        self.old.clear();
        self.old.extend_from_slice(self.data.elements());
        for (id, d) in moves.iter().enumerate() {
            self.data.displace(id as u32, *d);
        }
        report.update_s = t.elapsed().as_secs_f64();

        // --- maintenance phase ---------------------------------------------
        let t = Instant::now();
        report.cost = self.strategy.apply_step(&self.old, self.data.elements());
        report.maintain_s = t.elapsed().as_secs_f64();

        // --- monitor phase --------------------------------------------------
        let t = Instant::now();
        let mut results = 0u64;
        for _ in 0..self.config.monitor_queries_per_step {
            let q = self.queries.range_query(self.config.monitor_selectivity);
            results += self.strategy.range(self.data.elements(), &q).len() as u64;
        }
        report.monitor_s = t.elapsed().as_secs_f64();
        report.monitor_results = results;

        self.step += 1;
        report
    }

    /// Runs `n` steps, returning all reports.
    pub fn run(&mut self, n: usize) -> Vec<StepReport> {
        (0..n).map(|_| self.run_step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlasticityWorkload;
    use simspatial_datagen::ElementSoupBuilder;
    use simspatial_geom::{Aabb, Point3};
    use simspatial_index::{LinearScan, SpatialIndex};

    fn small_sim(strategy: UpdateStrategyKind) -> Simulation {
        let data = ElementSoupBuilder::new()
            .count(500)
            .universe_side(30.0)
            .seed(77)
            .build();
        Simulation::new(
            data,
            Box::new(PlasticityWorkload::with_sigma(0.05, 12)),
            SimulationConfig {
                strategy,
                monitor_queries_per_step: 10,
                monitor_selectivity: 1e-3,
                seed: 5,
            },
        )
    }

    #[test]
    fn steps_advance_and_report() {
        let mut sim = small_sim(UpdateStrategyKind::GridMigrate);
        let reports = sim.run(3);
        assert_eq!(reports.len(), 3);
        assert_eq!(sim.steps_done(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.step, i);
            assert!(r.total_s() >= 0.0);
            assert_eq!(r.cost.structural_updates + r.cost.absorbed, 500);
        }
    }

    #[test]
    fn index_stays_consistent_with_dataset() {
        for kind in [
            UpdateStrategyKind::GridMigrate,
            UpdateStrategyKind::RTreeReinsert,
            UpdateStrategyKind::RTreeRebuild,
        ] {
            let mut sim = small_sim(kind);
            sim.run(3);
            let scan = LinearScan::build(sim.data().elements());
            let q = Aabb::new(Point3::new(5.0, 5.0, 5.0), Point3::new(15.0, 15.0, 15.0));
            let mut a = sim.strategy().range(sim.data().elements(), &q);
            let mut b = scan.range(sim.data().elements(), &q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn elements_stay_in_universe() {
        let mut sim = small_sim(UpdateStrategyKind::NoIndexScan);
        sim.run(5);
        let u = sim.data().universe();
        for e in sim.data().elements() {
            assert!(u.contains_point(&e.center()), "element {} escaped", e.id);
        }
    }
}
