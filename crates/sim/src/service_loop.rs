//! Driving a simulation through the concurrent query service.
//!
//! The classic [`Simulation`](crate::Simulation) owns its index strategy
//! and runs single-threaded: update → maintain → monitor. This module is
//! the served variant of the same loop — Figure 1's alternating
//! update/query workload pushed through one `simspatial-service` admission
//! path, so simulation ticks and the (possibly many, possibly remote)
//! monitoring clients share the scheduler, the write-barrier ordering and
//! the stats:
//!
//! 1. **update phase** (local): the [`Workload`] computes displacements
//!    against the driver's own probe strategy, and the dataset moves.
//! 2. **tick submission**: the full per-element envelope vector goes to
//!    the service as one [`Request::Step`] — a write barrier: every query
//!    admitted after it sees the post-step dataset.
//! 3. **monitor phase** (served): the in-situ analysis range queries are
//!    submitted as ordinary requests and coalesce with everyone else's.
//!
//! The service stores tick geometry as envelope boxes (the wire vocabulary
//! of [`Request::Step`]), so served monitor results are against bounding
//! boxes rather than exact shapes — the approximation every index in the
//! paper makes at its filter stage anyway.

use crate::engine::{SimulationConfig, Workload};
use simspatial_datagen::{Dataset, QueryWorkload};
use simspatial_geom::{Aabb, Element};
use simspatial_moving::{StepCost, UpdateStrategy};
use simspatial_service::{Consistency, Reply, Request, ServiceHandle, SubmitError, Ticket};
use std::time::Instant;

/// Timing and accounting of one step driven through the service.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServedStepReport {
    /// Step number (0-based).
    pub step: usize,
    /// Seconds computing displacements (local update phase).
    pub update_s: f64,
    /// Seconds from submitting the tick to its acknowledgement (includes
    /// queueing behind other clients — that is the point).
    pub tick_s: f64,
    /// Element envelope entries acknowledged by the tick: the dataset size
    /// for a full `Step`, the moved-element count for a `StepDelta`.
    pub applied: u64,
    /// Elements whose envelope actually changed this step.
    pub moved: u64,
    /// Whether the tick was emitted as a [`Request::StepDelta`] carrying
    /// only the moved elements (moved fraction below the delta threshold).
    pub delta: bool,
    /// Seconds executing the served monitoring queries.
    pub monitor_s: f64,
    /// Total monitoring query results.
    pub monitor_results: u64,
    /// Epoch whose publication made this step's tick visible (zero when
    /// the backend does not publish snapshots).
    pub tick_epoch: u64,
    /// Epoch the monitoring queries were answered at. Under
    /// [`Consistency::Barrier`] this is the live epoch; under snapshot
    /// modes it names the published state the counts describe.
    pub monitor_epoch: u64,
    /// Local maintenance accounting of the driver's probe strategy.
    pub probe_cost: StepCost,
}

/// A time-stepped simulation whose ticks and monitoring queries are served
/// by a [`SpatialService`](simspatial_service::SpatialService).
///
/// The driver keeps a local probe strategy (configured by
/// [`SimulationConfig::strategy`]) as the workload's query surface during
/// the update phase; the *served* dataset is maintained exclusively through
/// [`Request::Step`] write barriers, so any number of concurrent clients
/// can query the simulation mid-flight with serial semantics.
pub struct ServedSimulation {
    data: Dataset,
    workload: Box<dyn Workload>,
    probe: Box<dyn UpdateStrategy>,
    queries: QueryWorkload,
    handle: ServiceHandle,
    config: SimulationConfig,
    step: usize,
    old: Vec<Element>,
    delta_threshold: f64,
    monitor_consistency: Consistency,
    last_tick_epoch: u64,
}

impl ServedSimulation {
    /// Sets up the driver. `handle` must belong to a **writable** service
    /// whose backend was built over the same initial elements as `data`
    /// (same ids, same order) — e.g.
    /// `EngineBackend::build_writable(data.elements().to_vec(), …)`.
    pub fn new(
        data: Dataset,
        workload: Box<dyn Workload>,
        handle: ServiceHandle,
        config: SimulationConfig,
    ) -> Self {
        assert!(
            handle.is_writable(),
            "ServedSimulation needs a writable service backend"
        );
        let probe = config.strategy.create(data.elements());
        let universe = data.universe();
        assert!(
            !universe.is_empty(),
            "simulation needs a non-empty universe"
        );
        Self {
            probe,
            workload,
            queries: QueryWorkload::new(universe, config.seed),
            data,
            handle,
            config,
            step: 0,
            old: Vec::new(),
            delta_threshold: 0.25,
            monitor_consistency: Consistency::Barrier,
            last_tick_epoch: 0,
        }
    }

    /// Sets the moved-element fraction below which a tick is emitted as a
    /// [`Request::StepDelta`] carrying only the moved elements instead of
    /// a full [`Request::Step`]. `0.0` disables delta ticks, `1.0` makes
    /// every tick a delta. Defaults to `0.25`.
    pub fn with_delta_threshold(mut self, threshold: f64) -> Self {
        self.delta_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Sets the consistency mode for the monitoring queries. Defaults to
    /// [`Consistency::Barrier`] (the pre-epoch semantics: every monitor
    /// query pays strict ordering behind the tick). Passing
    /// [`Consistency::ReadYourWrites`] is special-cased: the driver
    /// substitutes each step's own acknowledged tick epoch as the floor,
    /// so monitors are guaranteed to observe the tick they follow while
    /// still running from published snapshots. [`Consistency::Snapshot`]
    /// reads whatever epoch was last published — maximum overlap with
    /// in-flight ticks, possibly one step stale.
    pub fn with_monitor_consistency(mut self, consistency: Consistency) -> Self {
        self.monitor_consistency = consistency;
        self
    }

    /// Epoch whose publication made the most recent tick visible (zero
    /// before the first tick or without snapshot support).
    pub fn last_tick_epoch(&self) -> u64 {
        self.last_tick_epoch
    }

    /// The live (driver-side) dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Steps executed so far.
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// Executes one step: local update phase, one [`Request::Step`] tick
    /// through the service, then the monitoring queries through the
    /// service. Returns the phase-split report.
    ///
    /// # Errors
    ///
    /// Propagates [`SubmitError`] when the service shuts down mid-step
    /// (a tick acknowledged with an error also maps to `ShutDown`).
    pub fn run_step(&mut self) -> Result<ServedStepReport, SubmitError> {
        let mut report = ServedStepReport {
            step: self.step,
            ..Default::default()
        };

        // --- update phase (local) ---------------------------------------
        let t = Instant::now();
        let moves = self.workload.displacements(&self.data, self.probe.as_ref());
        assert_eq!(
            moves.len(),
            self.data.len(),
            "workload must move every element"
        );
        self.old.clear();
        self.old.extend_from_slice(self.data.elements());
        for (id, d) in moves.iter().enumerate() {
            self.data.displace(id as u32, *d);
        }
        report.update_s = t.elapsed().as_secs_f64();
        report.probe_cost = self.probe.apply_step(&self.old, self.data.elements());

        // --- tick through the service (write barrier) -------------------
        // A sparse step ships only the moved elements as a `StepDelta`
        // (same write-barrier and migration semantics as `Step`, a
        // fraction of the wire and apply cost); dense steps ship the full
        // envelope vector.
        let t = Instant::now();
        let moved: Vec<(u32, Aabb)> = self
            .data
            .elements()
            .iter()
            .zip(&self.old)
            .filter(|(new, old)| new.aabb() != old.aabb())
            .map(|(new, _)| (new.id, new.aabb()))
            .collect();
        report.moved = moved.len() as u64;
        report.delta = (moved.len() as f64) < self.delta_threshold * self.data.len().max(1) as f64;
        let request = if report.delta {
            Request::StepDelta(moved)
        } else {
            let envelopes: Vec<Aabb> = self.data.elements().iter().map(Element::aabb).collect();
            Request::Step(envelopes)
        };
        let ticket = self.handle.submit(request)?;
        let ack = recv(ticket)?;
        report.applied = ack.response.into_applied().unwrap_or(0);
        report.tick_epoch = ack.epoch;
        self.last_tick_epoch = ack.epoch;
        report.tick_s = t.elapsed().as_secs_f64();

        // --- monitor phase (served) -------------------------------------
        let t = Instant::now();
        let boxes: Vec<Aabb> = (0..self.config.monitor_queries_per_step)
            .map(|_| self.queries.range_query(self.config.monitor_selectivity))
            .collect();
        if !boxes.is_empty() {
            // Read-your-writes monitors floor on *this* step's tick: they
            // must observe the barrier they follow, nothing older.
            let mode = match self.monitor_consistency {
                Consistency::ReadYourWrites { .. } => Consistency::ReadYourWrites {
                    min_epoch: self.last_tick_epoch,
                },
                other => other,
            };
            let ticket = self.handle.submit_at(Request::RangeCount(boxes), mode)?;
            let reply = recv(ticket)?;
            report.monitor_epoch = reply.epoch;
            if let Some(counts) = reply.response.into_range_counts() {
                report.monitor_results = counts.iter().sum();
            }
        }
        report.monitor_s = t.elapsed().as_secs_f64();

        self.step += 1;
        Ok(report)
    }

    /// Runs `n` steps, stopping early if the service shuts down.
    pub fn run(&mut self, n: usize) -> Result<Vec<ServedStepReport>, SubmitError> {
        (0..n).map(|_| self.run_step()).collect()
    }
}

/// Maps a ticket's shutdown error back onto [`SubmitError`] so the step
/// loop has one error type. Returns the full [`Reply`] so callers keep
/// the epoch alongside the response.
fn recv(ticket: Ticket) -> Result<Reply, SubmitError> {
    ticket
        .recv_reply()
        .map_err(|_| SubmitError::ShutDown(Request::Range(Vec::new())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlasticityWorkload;
    use simspatial_datagen::ElementSoupBuilder;
    use simspatial_geom::{Point3, Shape};
    use simspatial_index::{GridConfig, LinearScan, UniformGrid};
    use simspatial_moving::UpdateStrategyKind;
    use simspatial_service::{EngineBackend, ServiceConfig, SpatialService};

    #[test]
    fn served_steps_match_local_state() {
        let data = ElementSoupBuilder::new()
            .count(400)
            .universe_side(30.0)
            .seed(42)
            .build();
        let backend = EngineBackend::build_writable(data.elements().to_vec(), |d| {
            UniformGrid::build(d, GridConfig::auto(d))
        });
        let service = SpatialService::spawn(backend, ServiceConfig::default());
        let mut sim = ServedSimulation::new(
            data,
            Box::new(PlasticityWorkload::with_sigma(0.05, 9)),
            service.handle(),
            SimulationConfig {
                strategy: UpdateStrategyKind::NoIndexScan,
                monitor_queries_per_step: 8,
                monitor_selectivity: 1e-3,
                seed: 11,
            },
        );
        let reports = sim.run(3).expect("service stays up");
        assert_eq!(reports.len(), 3);
        assert_eq!(sim.steps_done(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.step, i);
            assert_eq!(r.applied, 400, "every tick applies the whole dataset");
        }

        // The served dataset is the driver's elements with box geometry:
        // an arbitrary served range query must match a local scan over
        // that state exactly.
        let boxed: Vec<Element> = sim
            .data()
            .elements()
            .iter()
            .map(|e| Element::new(e.id, Shape::Box(e.aabb())))
            .collect();
        let q = Aabb::new(Point3::new(5.0, 5.0, 5.0), Point3::new(20.0, 20.0, 20.0));
        let handle = service.handle();
        let mut got = handle
            .submit(Request::Range(vec![q]))
            .unwrap()
            .recv()
            .unwrap()
            .into_range()
            .unwrap()
            .remove(0);
        let scan = LinearScan::build(&boxed);
        let mut want = simspatial_index::SpatialIndex::range(&scan, &boxed, &q);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);

        let stats = service.shutdown();
        assert_eq!(stats.updates_applied, 3 * 400);
        assert_eq!(stats.update_dispatches, 3);
    }

    /// Moves only the first `movers` elements by a fixed offset — a
    /// deterministic sparse workload for exercising delta ticks.
    struct SparseWorkload {
        movers: usize,
    }

    impl Workload for SparseWorkload {
        fn name(&self) -> &'static str {
            "sparse"
        }

        fn displacements(
            &mut self,
            data: &simspatial_datagen::Dataset,
            _index: &dyn simspatial_moving::UpdateStrategy,
        ) -> Vec<simspatial_geom::Vec3> {
            (0..data.len())
                .map(|i| {
                    if i < self.movers {
                        simspatial_geom::Vec3::new(0.4, 0.0, 0.0)
                    } else {
                        simspatial_geom::Vec3::ZERO
                    }
                })
                .collect()
        }
    }

    #[test]
    fn sparse_steps_ship_delta_ticks() {
        let data = ElementSoupBuilder::new()
            .count(400)
            .universe_side(30.0)
            .seed(7)
            .build();
        let backend = EngineBackend::build_writable(data.elements().to_vec(), |d| {
            UniformGrid::build(d, GridConfig::auto(d))
        });
        let service = SpatialService::spawn(backend, ServiceConfig::default());
        let mut sim = ServedSimulation::new(
            data,
            Box::new(SparseWorkload { movers: 10 }),
            service.handle(),
            SimulationConfig {
                strategy: UpdateStrategyKind::NoIndexScan,
                monitor_queries_per_step: 0,
                monitor_selectivity: 1e-3,
                seed: 3,
            },
        );
        let reports = sim.run(3).expect("service stays up");
        for r in &reports {
            assert!(r.delta, "2.5% moved is far below the 25% threshold");
            assert_eq!(r.moved, 10);
            assert_eq!(r.applied, 10, "a delta tick ships only the movers");
        }

        // Served state after three delta ticks must match the driver's
        // elements exactly, including the 390 never-shipped elements.
        let boxed: Vec<Element> = sim
            .data()
            .elements()
            .iter()
            .map(|e| Element::new(e.id, Shape::Box(e.aabb())))
            .collect();
        let q = Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(30.0, 30.0, 30.0));
        let handle = service.handle();
        let mut got = handle
            .submit(Request::Range(vec![q]))
            .unwrap()
            .recv()
            .unwrap()
            .into_range()
            .unwrap()
            .remove(0);
        let scan = LinearScan::build(&boxed);
        let mut want = simspatial_index::SpatialIndex::range(&scan, &boxed, &q);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);

        // Dense mode still available: threshold 0 disables deltas.
        let mut sim = sim.with_delta_threshold(0.0);
        let r = sim.run_step().expect("service stays up");
        assert!(!r.delta);
        assert_eq!(r.applied, 400);

        let stats = service.shutdown();
        assert_eq!(stats.updates_applied, 3 * 10 + 400);
        assert_eq!(stats.updates_shipped, 3 * 10 + 400);
    }

    /// Monitors running at read-your-writes consistency observe the tick
    /// they follow, and every reply reports the epoch lifecycle the
    /// engine backend publishes: one epoch per tick, monitors floored at
    /// it.
    #[test]
    fn snapshot_monitors_observe_their_own_tick() {
        let data = ElementSoupBuilder::new()
            .count(300)
            .universe_side(30.0)
            .seed(23)
            .build();
        let backend = EngineBackend::build_writable(data.elements().to_vec(), |d| {
            UniformGrid::build(d, GridConfig::auto(d))
        });
        let service = SpatialService::spawn(backend, ServiceConfig::default());
        let mut sim = ServedSimulation::new(
            data,
            Box::new(PlasticityWorkload::with_sigma(0.05, 9)),
            service.handle(),
            SimulationConfig {
                strategy: UpdateStrategyKind::NoIndexScan,
                monitor_queries_per_step: 6,
                monitor_selectivity: 1e-3,
                seed: 5,
            },
        )
        .with_monitor_consistency(Consistency::ReadYourWrites { min_epoch: 0 });
        let reports = sim.run(3).expect("service stays up");
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.tick_epoch, i as u64 + 1, "one published epoch per tick");
            assert!(
                r.monitor_epoch >= r.tick_epoch,
                "step {i}: read-your-writes monitor ran at epoch {} < tick epoch {}",
                r.monitor_epoch,
                r.tick_epoch
            );
        }
        assert_eq!(sim.last_tick_epoch(), 3);

        // With the write stream quiet, a snapshot read and the barrier
        // oracle answer from the same (latest) epoch — identical results.
        let q = Aabb::new(Point3::new(2.0, 2.0, 2.0), Point3::new(25.0, 25.0, 25.0));
        let handle = service.handle();
        let snap = handle
            .submit_at(Request::RangeCount(vec![q]), Consistency::Snapshot)
            .unwrap()
            .recv_reply()
            .unwrap();
        let barrier = handle
            .submit(Request::RangeCount(vec![q]))
            .unwrap()
            .recv_reply()
            .unwrap();
        assert_eq!(snap.response, barrier.response);
        assert_eq!(snap.epoch, 3, "snapshot reads report the published epoch");

        let stats = service.shutdown();
        assert_eq!(stats.current_epoch, 3);
        assert!(stats.snapshot_reads >= 1, "the snapshot read was hoisted");
    }

    #[test]
    #[should_panic(expected = "writable")]
    fn read_only_service_is_rejected_up_front() {
        let data = ElementSoupBuilder::new()
            .count(50)
            .universe_side(10.0)
            .seed(1)
            .build();
        let backend = EngineBackend::build(data.elements().to_vec(), LinearScan::build);
        let service = SpatialService::spawn(backend, ServiceConfig::default());
        let _sim = ServedSimulation::new(
            data,
            Box::new(PlasticityWorkload::with_sigma(0.05, 9)),
            service.handle(),
            SimulationConfig::default(),
        );
    }
}
