//! # simspatial-sim
//!
//! The time-stepped simulation engine of the paper's Figure 1: "Given a
//! model and an initial state, simulations calculate and approximate the
//! subsequent states of the model in discrete time steps." Each step runs
//!
//! 1. an **update phase** — the workload computes every element's
//!    displacement (possibly issuing spatial queries itself, as n-body and
//!    material-deformation solvers do),
//! 2. **index maintenance** — the configured
//!    [`UpdateStrategy`](simspatial_moving::UpdateStrategy) reacts to the
//!    movement, and
//! 3. a **monitor phase** — in-situ analysis/visualisation range queries
//!    execute against the fresh state ("thousands of range queries need to
//!    be executed between two simulation steps at locations that cannot be
//!    anticipated", §2.2).
//!
//! Every phase is timed separately in the emitted [`StepReport`]s, which is
//! what lets the benchmark harness show *where* each strategy pays — the
//! maintenance-vs-query trade-off the paper's §4 revolves around.
//!
//! Workloads:
//! * [`PlasticityWorkload`] — §4.1's neural plasticity: everything moves,
//!   minimally (wraps [`simspatial_datagen::PlasticityModel`]).
//! * [`NBodyWorkload`] — Barnes–Hut gravity (physical cosmology \[5\]).
//! * [`MaterialWorkload`] — neighbourhood spring relaxation (material
//!   deformation \[2\]); queries the live index during the update phase.

#![warn(missing_docs)]

mod engine;
mod material;
mod nbody;
mod plasticity;
mod service_loop;

pub use engine::{Simulation, SimulationConfig, StepReport, Workload};
pub use material::MaterialWorkload;
pub use nbody::NBodyWorkload;
pub use plasticity::PlasticityWorkload;
pub use service_loop::{ServedSimulation, ServedStepReport};
