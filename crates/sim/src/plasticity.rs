//! The neural-plasticity workload of §4.1.

use crate::engine::Workload;
use simspatial_datagen::{Dataset, PlasticityModel};
use simspatial_geom::Vec3;
use simspatial_moving::UpdateStrategy;

/// Every element drifts by an isotropic Gaussian step — "the changes are
/// massive in that they affect a vast majority of the elements, but most
/// elements only move minimally."
pub struct PlasticityWorkload {
    model: PlasticityModel,
}

impl PlasticityWorkload {
    /// Calibrated to the paper's measured statistics (mean 0.04 µm,
    /// < 0.5 % beyond 0.1 µm).
    pub fn paper_calibrated(seed: u64) -> Self {
        Self {
            model: PlasticityModel::paper_calibrated(seed),
        }
    }

    /// Explicit movement scale (sensitivity sweeps).
    pub fn with_sigma(sigma: f32, seed: u64) -> Self {
        Self {
            model: PlasticityModel::with_sigma(sigma, seed),
        }
    }
}

impl Workload for PlasticityWorkload {
    fn name(&self) -> &'static str {
        "neural-plasticity"
    }

    fn displacements(&mut self, data: &Dataset, _index: &dyn UpdateStrategy) -> Vec<Vec3> {
        self.model.sample_step(data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_datagen::{DisplacementStats, ElementSoupBuilder};
    use simspatial_moving::UpdateStrategyKind;

    #[test]
    fn produces_paper_statistics() {
        let data = ElementSoupBuilder::new().count(50_000).seed(1).build();
        let strategy = UpdateStrategyKind::NoIndexScan.create(data.elements());
        let mut w = PlasticityWorkload::paper_calibrated(3);
        let moves = w.displacements(&data, strategy.as_ref());
        assert_eq!(moves.len(), 50_000);
        let stats = DisplacementStats::measure(&moves);
        assert!(stats.matches_paper(), "{stats:?}");
    }
}
