//! Barnes–Hut n-body gravity — the physical-cosmology workload \[5\].
//!
//! §1: "in n-body simulations in physical cosmology the position of each
//! celestial object at time step tᵢ₊₁ has to be computed based on the
//! gravitational field (and thus the locations) of its neighbors at time
//! step tᵢ." The solver approximates far-field forces through an internal
//! mass octree (a physics detail, rebuilt per step — not the spatial index
//! under test) and integrates with symplectic Euler.

use crate::engine::Workload;
use simspatial_datagen::Dataset;
use simspatial_geom::{Aabb, Point3, Vec3};
use simspatial_moving::UpdateStrategy;

/// Barnes–Hut gravitational workload.
pub struct NBodyWorkload {
    /// Opening angle θ: nodes with extent/distance < θ act as point masses.
    theta: f32,
    /// Integration step.
    dt: f32,
    /// Gravitational constant (simulation units).
    g: f32,
    /// Plummer softening, avoids singular close encounters.
    softening: f32,
    velocities: Vec<Vec3>,
}

impl NBodyWorkload {
    /// A stable default parameterisation (θ = 0.7).
    pub fn new(n_bodies: usize) -> Self {
        Self {
            theta: 0.7,
            dt: 0.05,
            g: 1.0,
            softening: 0.5,
            velocities: vec![Vec3::ZERO; n_bodies],
        }
    }

    /// Overrides the opening angle (accuracy/speed trade-off).
    pub fn with_theta(mut self, theta: f32) -> Self {
        assert!(theta > 0.0, "theta must be positive");
        self.theta = theta;
        self
    }

    /// Current velocity of body `i` (diagnostics).
    pub fn velocity(&self, i: usize) -> Vec3 {
        self.velocities[i]
    }
}

/// A node of the transient mass octree.
struct MassNode {
    cube: Aabb,
    center_of_mass: Point3,
    mass: f32,
    children: Option<Box<[Option<MassNode>; 8]>>,
    /// Body index for singleton leaves.
    body: Option<usize>,
}

impl MassNode {
    fn leaf(cube: Aabb) -> Self {
        Self {
            cube,
            center_of_mass: cube.center(),
            mass: 0.0,
            children: None,
            body: None,
        }
    }
}

/// Straightforward recursive mass-octree builder that stores bodies rather
/// than splitting in place (simpler and robust to coincident points).
fn build_tree(cube: Aabb, bodies: &[(Point3, f32, usize)], depth: u32) -> MassNode {
    let mut node = MassNode::leaf(cube);
    if bodies.is_empty() {
        return node;
    }
    // Aggregate mass and centre of mass.
    let mut total = 0.0f64;
    let mut acc = [0.0f64; 3];
    for (p, m, _) in bodies {
        total += f64::from(*m);
        acc[0] += f64::from(p.x) * f64::from(*m);
        acc[1] += f64::from(p.y) * f64::from(*m);
        acc[2] += f64::from(p.z) * f64::from(*m);
    }
    node.mass = total as f32;
    node.center_of_mass = Point3::new(
        (acc[0] / total) as f32,
        (acc[1] / total) as f32,
        (acc[2] / total) as f32,
    );
    if bodies.len() == 1 || depth >= 24 {
        node.body = Some(bodies[0].2);
        return node;
    }
    // Partition into octants.
    let c = cube.center();
    let mut buckets: [Vec<(Point3, f32, usize)>; 8] = Default::default();
    for &(p, m, i) in bodies {
        let oct = usize::from(p.x >= c.x)
            | (usize::from(p.y >= c.y) << 1)
            | (usize::from(p.z >= c.z) << 2);
        buckets[oct].push((p, m, i));
    }
    let mut children: [Option<MassNode>; 8] = Default::default();
    for (oct, bucket) in buckets.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let min = Point3::new(
            if oct & 1 == 0 { cube.min.x } else { c.x },
            if oct & 2 == 0 { cube.min.y } else { c.y },
            if oct & 4 == 0 { cube.min.z } else { c.z },
        );
        let max = Point3::new(
            if oct & 1 == 0 { c.x } else { cube.max.x },
            if oct & 2 == 0 { c.y } else { cube.max.y },
            if oct & 4 == 0 { c.z } else { cube.max.z },
        );
        children[oct] = Some(build_tree(Aabb { min, max }, &bucket, depth + 1));
    }
    node.children = Some(Box::new(children));
    node
}

/// Accumulates the acceleration on `p` (body index `i`) from the tree.
fn accel(node: &MassNode, p: Point3, i: usize, theta: f32, g: f32, soft2: f32) -> Vec3 {
    if node.mass == 0.0 {
        return Vec3::ZERO;
    }
    if node.body == Some(i) && node.children.is_none() {
        return Vec3::ZERO; // self-interaction
    }
    let d = node.center_of_mass - p;
    let dist2 = d.length2() + soft2;
    let extent = node.cube.extent();
    let size = extent.x.max(extent.y).max(extent.z);
    let far_enough = node.children.is_none() || size * size < theta * theta * dist2;
    if far_enough {
        let inv = 1.0 / dist2.sqrt();
        return d * (g * node.mass * inv * inv * inv);
    }
    let mut a = Vec3::ZERO;
    if let Some(children) = &node.children {
        for child in children.iter().flatten() {
            a += accel(child, p, i, theta, g, soft2);
        }
    }
    a
}

impl Workload for NBodyWorkload {
    fn name(&self) -> &'static str {
        "n-body (Barnes-Hut)"
    }

    fn displacements(&mut self, data: &Dataset, _index: &dyn UpdateStrategy) -> Vec<Vec3> {
        assert_eq!(
            self.velocities.len(),
            data.len(),
            "workload sized for another dataset"
        );
        if data.is_empty() {
            return Vec::new();
        }
        let bodies: Vec<(Point3, f32, usize)> = data
            .elements()
            .iter()
            .enumerate()
            .map(|(i, e)| (e.center(), 1.0, i))
            .collect();
        let cube = {
            let b = data.bounds();
            // Cubify for octant splitting.
            let c = b.center();
            let e = b.extent();
            let h = e.x.max(e.y).max(e.z).max(1e-3) * 0.5;
            Aabb {
                min: c - Vec3::new(h, h, h),
                max: c + Vec3::new(h, h, h),
            }
        };
        let tree = build_tree(cube, &bodies, 0);
        let soft2 = self.softening * self.softening;
        let mut out = Vec::with_capacity(data.len());
        for (i, &(p, _, _)) in bodies.iter().enumerate() {
            let a = accel(&tree, p, i, self.theta, self.g, soft2);
            self.velocities[i] += a * self.dt;
            out.push(self.velocities[i] * self.dt);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_datagen::ElementSoupBuilder;
    use simspatial_moving::UpdateStrategyKind;

    #[test]
    fn two_bodies_attract() {
        let data = simspatial_datagen::Dataset::from_shapes(
            [
                simspatial_geom::Shape::Sphere(simspatial_geom::Sphere::new(
                    Point3::new(10.0, 50.0, 50.0),
                    0.5,
                )),
                simspatial_geom::Shape::Sphere(simspatial_geom::Sphere::new(
                    Point3::new(90.0, 50.0, 50.0),
                    0.5,
                )),
            ],
            Aabb::new(Point3::ORIGIN, Point3::new(100.0, 100.0, 100.0)),
        );
        let strategy = UpdateStrategyKind::NoIndexScan.create(data.elements());
        let mut w = NBodyWorkload::new(2);
        let moves = w.displacements(&data, strategy.as_ref());
        assert!(
            moves[0].x > 0.0,
            "body 0 must accelerate toward body 1: {:?}",
            moves[0]
        );
        assert!(
            moves[1].x < 0.0,
            "body 1 must accelerate toward body 0: {:?}",
            moves[1]
        );
    }

    #[test]
    fn cluster_stays_bound_and_momentum_roughly_conserved() {
        let data = ElementSoupBuilder::new()
            .count(300)
            .universe_side(50.0)
            .seed(44)
            .build();
        let strategy = UpdateStrategyKind::NoIndexScan.create(data.elements());
        let mut w = NBodyWorkload::new(300);
        let moves = w.displacements(&data, strategy.as_ref());
        // Equal masses from rest: net momentum after one step ≈ 0 relative
        // to the total |impulse|.
        let net = moves.iter().fold(Vec3::ZERO, |a, &m| a + m);
        let total: f32 = moves.iter().map(Vec3::length).sum();
        assert!(net.length() < 0.15 * total, "net {net:?} vs total {total}");
    }

    #[test]
    fn coincident_bodies_do_not_blow_up() {
        let shapes = (0..8).map(|_| {
            simspatial_geom::Shape::Sphere(simspatial_geom::Sphere::new(
                Point3::new(5.0, 5.0, 5.0),
                0.1,
            ))
        });
        let data = simspatial_datagen::Dataset::from_shapes(
            shapes,
            Aabb::new(Point3::ORIGIN, Point3::new(10.0, 10.0, 10.0)),
        );
        let strategy = UpdateStrategyKind::NoIndexScan.create(data.elements());
        let mut w = NBodyWorkload::new(8);
        let moves = w.displacements(&data, strategy.as_ref());
        for m in moves {
            assert!(m.length().is_finite());
        }
    }
}
