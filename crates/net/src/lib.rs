//! # simspatial-net
//!
//! The TCP front end: [`simspatial_service`]'s concurrent query service,
//! served to remote clients over a length-prefixed binary protocol —
//! `std::net` and threads only, no async runtime, matching the
//! workspace's offline/vendored dependency policy.
//!
//! Three layers:
//!
//! * **[`wire`]** — the versioned frame codec. Every [`Request`] variant
//!   (`Range`/`RangeCount`/`Knn`/`Update`/`Step`/`StepDelta`/`Insert`/
//!   `Remove`), every response shape, and every typed failure
//!   (`ShutDown`, `WorkerFailed`, `DeadlineExceeded`, `ReadOnly`, plus
//!   `shards_skipped` degradation flags) has a binary encoding; decode
//!   is strict (max frame size, max items per request, exact-length
//!   validation) so a malformed or hostile frame fails typed without
//!   unbounded allocation and terminates only its own connection.
//! * **[`NetServer`]** — a multiplexed server: one acceptor, a
//!   reader/writer thread pair per connection, so a client can pipeline
//!   many in-flight requests per connection under client-chosen
//!   correlation ids. Responses may return out of order *between*
//!   connections while the service's write-barrier semantics hold: each
//!   tenant's requests are admitted in arrival order, and the in-process
//!   dispatcher serializes barriers exactly as a serial run would.
//!   Admission is **multi-tenant**: tenants declare themselves at
//!   handshake; a deficit-round-robin pump drains per-tenant staging
//!   queues by weight, per-tenant in-flight caps bound any one tenant's
//!   queue share, and a full staging queue sheds load as a protocol
//!   `Retry` frame whose hint scales with observed congestion. Each
//!   request carries a consistency byte (wire version 2): per-request
//!   `Barrier`/`Snapshot`/`ReadYourWrites`, or the tenant's configured
//!   default ([`TenantSpec::with_consistency`]); every reply reports
//!   the epoch the service answered at.
//! * **[`NetClient`]** — a minimal blocking client used by the tests,
//!   the bench driver and the examples: pipelined `enqueue`/`flush`/
//!   `recv_msg`, or synchronous [`NetClient::call`] /
//!   [`NetClient::call_with_retry`] that respects server retry hints.
//!
//! ## Quick start
//!
//! ```
//! use simspatial_datagen::ElementSoupBuilder;
//! use simspatial_geom::Point3;
//! use simspatial_index::{GridConfig, UniformGrid};
//! use simspatial_net::{CallOutcome, NetClient, NetConfig, NetServer};
//! use simspatial_service::{EngineBackend, Request, ServiceConfig, SpatialService};
//!
//! let data = ElementSoupBuilder::new().count(500).seed(3).build();
//! let backend = EngineBackend::build(data.elements().to_vec(), |d| {
//!     UniformGrid::build(d, GridConfig::auto(d))
//! });
//! let service = SpatialService::spawn(backend, ServiceConfig::default());
//! let server = NetServer::bind(service, "127.0.0.1:0", NetConfig::default()).unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr(), "tenant-a").unwrap();
//! let outcome = client
//!     .call(&Request::Knn(vec![(Point3::new(10.0, 10.0, 10.0), 5)]))
//!     .unwrap();
//! match outcome {
//!     CallOutcome::Reply { response, .. } => {
//!         assert_eq!(response.into_knn().unwrap()[0].len(), 5);
//!     }
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! drop(client);
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! assert_eq!(stats.tenants.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{CallOutcome, NetClient};
pub use server::{NetConfig, NetServer, TenantSpec};
pub use wire::{DecodeLimits, FatalCode, RequestError, WireError};

/// A client-side transport/protocol failure.
#[derive(Debug)]
pub enum NetError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer sent bytes that violate the protocol.
    Wire(WireError),
    /// The server sent a connection-level `Fatal` frame and closed.
    Fatal {
        /// The typed reason.
        code: FatalCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The connection closed cleanly while a response was still expected.
    Closed,
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<wire::FrameReadError> for NetError {
    fn from(e: wire::FrameReadError) -> Self {
        match e {
            wire::FrameReadError::Io(e) => NetError::Io(e),
            wire::FrameReadError::Wire(e) => NetError::Wire(e),
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Fatal { code, message } => {
                write!(f, "server closed the connection: {code:?}: {message}")
            }
            NetError::Closed => write!(f, "connection closed with responses outstanding"),
        }
    }
}

impl std::error::Error for NetError {}
