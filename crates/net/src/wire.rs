//! The length-prefixed binary wire protocol.
//!
//! Every message travels as one **frame**: a little-endian `u32` payload
//! length followed by the payload. The payload's first byte is an opcode
//! (client→server opcodes are `< 0x80`, server→client `≥ 0x80`); the rest
//! is opcode-specific, all integers little-endian, all floats IEEE-754
//! `f32` little-endian.
//!
//! ## Safety against hostile bytes
//!
//! Decoding is **strict** so a malformed or hostile frame can never
//! allocate unboundedly or wedge a connection:
//!
//! * the frame length is checked against [`DecodeLimits::max_frame`]
//!   *before* any allocation — an oversized declaration fails the
//!   connection without reading the body;
//! * every item count is checked against [`DecodeLimits::max_items`]
//!   *and* against the bytes actually present (fixed item sizes make the
//!   expected payload length exact), so a forged count cannot reserve
//!   memory the peer never sent;
//! * payloads must be consumed exactly — trailing bytes are an error, not
//!   slack;
//! * every decode error is typed ([`WireError`]) and terminates only the
//!   offending connection, never the service behind it.
//!
//! ## Message vocabulary
//!
//! | opcode | direction | message |
//! |---|---|---|
//! | `0x01` | c→s | `Hello { magic, version, tenant }` — must be first |
//! | `0x02` | c→s | `Request { corr, consistency, request }` — any [`Request`] variant |
//! | `0x03` | c→s | `Stats { corr }` — snapshot request |
//! | `0x81` | s→c | `HelloAck { version, max_frame, max_items }` |
//! | `0x82` | s→c | `Reply { corr, shards_skipped, epoch, response }` |
//! | `0x83` | s→c | `Error { corr, error }` — typed per-request failure |
//! | `0x84` | s→c | `Retry { corr, after, depth, capacity }` — load shed |
//! | `0x85` | s→c | `StatsReply { corr, json }` |
//! | `0x86` | s→c | `Fatal { code, message }` — connection-level, then close |
//!
//! Correlation ids are chosen by the client; the server echoes them
//! verbatim, so a client may pipeline any number of in-flight requests
//! per connection and match responses in any arrival order.
//!
//! ## Consistency on the wire (version 2)
//!
//! Each `Request` frame carries one consistency byte after the
//! correlation id — `0` defers to the tenant's configured default,
//! `1` forces [`Consistency::Barrier`], `2` forces
//! [`Consistency::Snapshot`], and `3` (followed by a `u64` minimum
//! epoch) forces [`Consistency::ReadYourWrites`]. Every `Reply` carries
//! the `u64` epoch the service reported for that request (the published
//! epoch a snapshot read ran against, or the epoch whose publication
//! made an acknowledged write visible), letting clients thread
//! read-your-writes floors through subsequent requests.

use simspatial_geom::{Aabb, ElementId, Point3};
use simspatial_service::{Consistency, RecvError, Request, Response};
use std::io::{Read, Write};
use std::time::Duration;

/// Frame magic carried by `Hello` ("SSPN" big-endian in the u32).
pub const MAGIC: u32 = 0x5353_504E;

/// Protocol version this build speaks. A server rejects a `Hello` with a
/// different major version with [`FatalCode::BadHandshake`]. Version 2
/// added the per-request consistency byte and the per-reply epoch.
pub const VERSION: u16 = 2;

/// Payload opcodes (first byte of every frame payload).
pub mod op {
    /// Client handshake; must be the first frame on a connection.
    pub const HELLO: u8 = 0x01;
    /// One spatial request with a client-chosen correlation id.
    pub const REQUEST: u8 = 0x02;
    /// Service stats snapshot request.
    pub const STATS: u8 = 0x03;
    /// Server handshake acknowledgement.
    pub const HELLO_ACK: u8 = 0x81;
    /// Successful response to a `REQUEST`.
    pub const REPLY: u8 = 0x82;
    /// Typed per-request failure.
    pub const ERROR: u8 = 0x83;
    /// Per-request load shed with a congestion-scaled retry hint.
    pub const RETRY: u8 = 0x84;
    /// Stats snapshot payload (JSON).
    pub const STATS_REPLY: u8 = 0x85;
    /// Connection-level protocol failure; the server closes after sending.
    pub const FATAL: u8 = 0x86;
}

/// Consistency-byte values carried by a `REQUEST` frame.
mod consistency {
    /// Use the tenant's configured default consistency.
    pub const TENANT_DEFAULT: u8 = 0;
    /// Force `Consistency::Barrier` for this request.
    pub const BARRIER: u8 = 1;
    /// Force `Consistency::Snapshot` for this request.
    pub const SNAPSHOT: u8 = 2;
    /// Force `Consistency::ReadYourWrites`; followed by a `u64` epoch.
    pub const READ_YOUR_WRITES: u8 = 3;
}

/// Request-body tags (one per [`Request`] variant).
mod tag {
    pub const RANGE: u8 = 1;
    pub const RANGE_COUNT: u8 = 2;
    pub const KNN: u8 = 3;
    pub const UPDATE: u8 = 4;
    pub const STEP: u8 = 5;
    pub const STEP_DELTA: u8 = 6;
    pub const INSERT: u8 = 7;
    pub const REMOVE: u8 = 8;
}

/// Decode-side resource limits. Both bounds are enforced before any
/// allocation sized by peer-controlled numbers.
#[derive(Debug, Clone, Copy)]
pub struct DecodeLimits {
    /// Largest accepted frame payload, bytes.
    pub max_frame: usize,
    /// Largest accepted item count in one request (boxes, probes,
    /// updates, ids) — bounds both decode allocation and the work a
    /// single frame can demand.
    pub max_items: usize,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        Self {
            max_frame: 1 << 20,
            max_items: 4096,
        }
    }
}

/// Why a frame failed to decode. Every variant is a protocol violation
/// that fails the offending connection typed (via [`FatalCode`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message did.
    Truncated,
    /// The payload continued past the end of the message.
    Trailing {
        /// Unconsumed bytes left in the frame.
        extra: usize,
    },
    /// A frame declared a length above the negotiated maximum.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// `Hello` carried the wrong magic.
    BadMagic {
        /// The magic received.
        got: u32,
    },
    /// `Hello` carried an unsupported protocol version.
    BadVersion {
        /// The version received.
        got: u16,
    },
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// Unknown request/response body tag.
    UnknownTag(u8),
    /// An item count above [`DecodeLimits::max_items`].
    TooManyItems {
        /// The declared count.
        count: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadString,
    /// Any other framing violation (e.g. a message in the wrong
    /// direction or position).
    Protocol(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated mid-message"),
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after message"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            WireError::BadMagic { got } => write!(f, "bad handshake magic {got:#010x}"),
            WireError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            WireError::UnknownOpcode(o) => write!(f, "unknown opcode {o:#04x}"),
            WireError::UnknownTag(t) => write!(f, "unknown body tag {t}"),
            WireError::TooManyItems { count, max } => {
                write!(f, "item count {count} exceeds maximum {max}")
            }
            WireError::BadString => write!(f, "string field is not valid UTF-8"),
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Connection-level failure codes carried by a `FATAL` frame — the typed
/// reason a server gives before closing a misbehaving connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FatalCode {
    /// Handshake rejected: bad magic, bad version, or `Hello` missing /
    /// repeated.
    BadHandshake = 1,
    /// A frame failed to decode (truncated, trailing, bad string).
    Malformed = 2,
    /// A frame declared a length above the negotiated maximum.
    FrameTooLarge = 3,
    /// Unknown opcode or body tag.
    UnknownOpcode = 4,
    /// An item count above the negotiated maximum.
    LimitExceeded = 5,
    /// The declared tenant is unknown and the server admits no defaults.
    UnknownTenant = 6,
    /// The server is shutting down.
    ShuttingDown = 7,
}

impl FatalCode {
    /// Decodes the wire byte.
    pub fn from_u8(v: u8) -> Option<FatalCode> {
        Some(match v {
            1 => FatalCode::BadHandshake,
            2 => FatalCode::Malformed,
            3 => FatalCode::FrameTooLarge,
            4 => FatalCode::UnknownOpcode,
            5 => FatalCode::LimitExceeded,
            6 => FatalCode::UnknownTenant,
            7 => FatalCode::ShuttingDown,
            _ => return None,
        })
    }

    /// The fatal code a given decode error maps to.
    pub fn for_wire_error(e: &WireError) -> FatalCode {
        match e {
            WireError::BadMagic { .. } | WireError::BadVersion { .. } => FatalCode::BadHandshake,
            WireError::FrameTooLarge { .. } => FatalCode::FrameTooLarge,
            WireError::UnknownOpcode(_) | WireError::UnknownTag(_) => FatalCode::UnknownOpcode,
            WireError::TooManyItems { .. } => FatalCode::LimitExceeded,
            _ => FatalCode::Malformed,
        }
    }
}

/// A per-request failure as carried on the wire. Mirrors
/// [`RecvError`] plus the admission-time
/// [`ReadOnly`](RequestError::ReadOnly) rejection (which in-process
/// callers see as a [`SubmitError`](simspatial_service::SubmitError)
/// before a ticket ever exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The service shut down before completing the request.
    ShutDown,
    /// A backend worker failed serving the request (dead shard on a kNN
    /// probe, lost write, poisoned dispatcher).
    WorkerFailed {
        /// The shard the failure is attributed to.
        shard: u32,
    },
    /// The request's deadline expired before or after dispatch.
    DeadlineExceeded,
    /// A write request reached a read-only backend.
    ReadOnly,
}

impl From<RecvError> for RequestError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::ShutDown => RequestError::ShutDown,
            RecvError::WorkerFailed { shard } => RequestError::WorkerFailed {
                shard: shard as u32,
            },
            RecvError::DeadlineExceeded => RequestError::DeadlineExceeded,
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::ShutDown => write!(f, "service shut down"),
            RequestError::WorkerFailed { shard } => write!(f, "worker failed (shard {shard})"),
            RequestError::DeadlineExceeded => write!(f, "deadline exceeded"),
            RequestError::ReadOnly => write!(f, "backend is read-only"),
        }
    }
}

impl std::error::Error for RequestError {}

/// A decoded client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Handshake: protocol version + tenant declaration.
    Hello {
        /// Client protocol version.
        version: u16,
        /// Tenant this connection's requests are accounted to.
        tenant: String,
    },
    /// One spatial request under a client-chosen correlation id.
    Request {
        /// Client-chosen correlation id, echoed on the response.
        corr: u64,
        /// Requested consistency mode; `None` defers to the tenant's
        /// configured default.
        consistency: Option<Consistency>,
        /// The decoded request.
        request: Request,
    },
    /// Stats snapshot request.
    Stats {
        /// Client-chosen correlation id.
        corr: u64,
    },
}

/// A decoded server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Handshake acknowledgement with the server's enforced limits.
    HelloAck {
        /// Server protocol version.
        version: u16,
        /// Largest client→server frame the server accepts.
        max_frame: u32,
        /// Largest per-request item count the server accepts.
        max_items: u32,
    },
    /// Successful response.
    Reply {
        /// Echoed correlation id.
        corr: u64,
        /// Dead shards skipped serving this request (partial coverage).
        shards_skipped: u32,
        /// The epoch the service reported for this request: the
        /// published epoch a snapshot read was answered at, or the epoch
        /// whose publication made an acknowledged write visible. Zero
        /// when the backend does not publish snapshots.
        epoch: u64,
        /// The response payload.
        response: Response,
    },
    /// Typed per-request failure.
    Error {
        /// Echoed correlation id.
        corr: u64,
        /// The failure.
        error: RequestError,
    },
    /// Per-request load shed: the request was **not** admitted; retry
    /// after the hint.
    Retry {
        /// Echoed correlation id.
        corr: u64,
        /// Congestion-scaled backoff hint.
        after: Duration,
        /// Intake queue depth observed at shed time.
        depth: u32,
        /// Intake queue capacity.
        capacity: u32,
    },
    /// Stats snapshot (the `ServiceStats::to_json` payload, including
    /// per-tenant counters).
    StatsReply {
        /// Echoed correlation id.
        corr: u64,
        /// JSON-encoded stats.
        json: String,
    },
    /// Connection-level protocol failure; the server closes the
    /// connection after sending it.
    Fatal {
        /// The typed reason.
        code: FatalCode,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Primitive encode helpers (little-endian, appending to a Vec).
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_point(buf: &mut Vec<u8>, p: &Point3) {
    put_f32(buf, p.x);
    put_f32(buf, p.y);
    put_f32(buf, p.z);
}

fn put_aabb(buf: &mut Vec<u8>, bb: &Aabb) {
    put_point(buf, &bb.min);
    put_point(buf, &bb.max);
}

fn put_str16(buf: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    put_u16(buf, s.len() as u16);
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Primitive decode cursor.
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader over one frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn point(&mut self) -> Result<Point3, WireError> {
        Ok(Point3::new(self.f32()?, self.f32()?, self.f32()?))
    }

    fn aabb(&mut self) -> Result<Aabb, WireError> {
        Ok(Aabb::new(self.point()?, self.point()?))
    }

    fn str16(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    /// A peer-declared item count, validated against the configured cap
    /// **and** the bytes actually present (`item_size` per item), so a
    /// forged count can neither over-allocate nor over-read.
    fn count(&mut self, max_items: usize, item_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > max_items {
            return Err(WireError::TooManyItems {
                count: n,
                max: max_items,
            });
        }
        if self.remaining() < n.saturating_mul(item_size) {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Trailing {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------

/// Writes one frame (`u32` length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame payload into `buf` (replacing its contents).
///
/// Returns `Ok(false)` on clean end-of-stream (the peer closed between
/// frames), `Ok(true)` when `buf` holds a complete payload. A length
/// declaration above `max_frame` fails **before** reading the body so a
/// hostile peer cannot force the allocation; mid-frame EOF surfaces as
/// `UnexpectedEof`.
pub fn read_frame(
    r: &mut impl Read,
    max_frame: usize,
    buf: &mut Vec<u8>,
) -> Result<bool, FrameReadError> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(false),
            Ok(0) => {
                return Err(FrameReadError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_frame {
        return Err(FrameReadError::Wire(WireError::FrameTooLarge {
            len,
            max: max_frame,
        }));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf).map_err(FrameReadError::Io)?;
    Ok(true)
}

/// Why [`read_frame`] failed: transport error or protocol violation.
#[derive(Debug)]
pub enum FrameReadError {
    /// The underlying transport failed (including mid-frame EOF).
    Io(std::io::Error),
    /// The frame violated the protocol (oversized declaration).
    Wire(WireError),
}

// ---------------------------------------------------------------------
// Client→server encode/decode.
// ---------------------------------------------------------------------

/// Encodes a `Hello` handshake payload.
pub fn encode_hello(buf: &mut Vec<u8>, tenant: &str) {
    buf.clear();
    buf.push(op::HELLO);
    put_u32(buf, MAGIC);
    put_u16(buf, VERSION);
    put_str16(buf, tenant);
}

/// Encodes one request under `corr` into `buf` (cleared first).
/// `consistency: None` emits the tenant-default byte, letting the
/// server resolve the mode from the connection's tenant profile.
pub fn encode_request(
    buf: &mut Vec<u8>,
    corr: u64,
    consistency: Option<Consistency>,
    request: &Request,
) {
    buf.clear();
    buf.push(op::REQUEST);
    put_u64(buf, corr);
    match consistency {
        None => buf.push(consistency::TENANT_DEFAULT),
        Some(Consistency::Barrier) => buf.push(consistency::BARRIER),
        Some(Consistency::Snapshot) => buf.push(consistency::SNAPSHOT),
        Some(Consistency::ReadYourWrites { min_epoch }) => {
            buf.push(consistency::READ_YOUR_WRITES);
            put_u64(buf, min_epoch);
        }
    }
    match request {
        Request::Range(boxes) | Request::RangeCount(boxes) => {
            buf.push(if matches!(request, Request::Range(_)) {
                tag::RANGE
            } else {
                tag::RANGE_COUNT
            });
            put_u32(buf, boxes.len() as u32);
            for bb in boxes {
                put_aabb(buf, bb);
            }
        }
        Request::Knn(probes) => {
            buf.push(tag::KNN);
            put_u32(buf, probes.len() as u32);
            for (p, k) in probes {
                put_point(buf, p);
                put_u32(buf, *k as u32);
            }
        }
        Request::Update(pairs) | Request::StepDelta(pairs) => {
            buf.push(if matches!(request, Request::Update(_)) {
                tag::UPDATE
            } else {
                tag::STEP_DELTA
            });
            put_u32(buf, pairs.len() as u32);
            for (id, bb) in pairs {
                put_u32(buf, *id);
                put_aabb(buf, bb);
            }
        }
        Request::Step(envs) | Request::Insert(envs) => {
            buf.push(if matches!(request, Request::Step(_)) {
                tag::STEP
            } else {
                tag::INSERT
            });
            put_u32(buf, envs.len() as u32);
            for bb in envs {
                put_aabb(buf, bb);
            }
        }
        Request::Remove(ids) => {
            buf.push(tag::REMOVE);
            put_u32(buf, ids.len() as u32);
            for id in ids {
                put_u32(buf, *id);
            }
        }
    }
}

/// Encodes a stats snapshot request.
pub fn encode_stats(buf: &mut Vec<u8>, corr: u64) {
    buf.clear();
    buf.push(op::STATS);
    put_u64(buf, corr);
}

/// Decodes one client→server frame payload under `limits`.
pub fn decode_client_msg(payload: &[u8], limits: &DecodeLimits) -> Result<ClientMsg, WireError> {
    let mut c = Cursor::new(payload);
    let msg = match c.u8()? {
        op::HELLO => {
            let magic = c.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = c.u16()?;
            if version != VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            ClientMsg::Hello {
                version,
                tenant: c.str16()?,
            }
        }
        op::REQUEST => {
            let corr = c.u64()?;
            let consistency = match c.u8()? {
                consistency::TENANT_DEFAULT => None,
                consistency::BARRIER => Some(Consistency::Barrier),
                consistency::SNAPSHOT => Some(Consistency::Snapshot),
                consistency::READ_YOUR_WRITES => Some(Consistency::ReadYourWrites {
                    min_epoch: c.u64()?,
                }),
                other => return Err(WireError::UnknownTag(other)),
            };
            let request = decode_request_body(&mut c, limits)?;
            ClientMsg::Request {
                corr,
                consistency,
                request,
            }
        }
        op::STATS => ClientMsg::Stats { corr: c.u64()? },
        other => return Err(WireError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(msg)
}

const AABB_SIZE: usize = 24;
const POINT_K_SIZE: usize = 16;
const ID_AABB_SIZE: usize = 28;
const ID_SIZE: usize = 4;

fn decode_request_body(c: &mut Cursor<'_>, limits: &DecodeLimits) -> Result<Request, WireError> {
    let t = c.u8()?;
    Ok(match t {
        tag::RANGE | tag::RANGE_COUNT | tag::STEP | tag::INSERT => {
            let n = c.count(limits.max_items, AABB_SIZE)?;
            let mut boxes = Vec::with_capacity(n);
            for _ in 0..n {
                boxes.push(c.aabb()?);
            }
            match t {
                tag::RANGE => Request::Range(boxes),
                tag::RANGE_COUNT => Request::RangeCount(boxes),
                tag::STEP => Request::Step(boxes),
                _ => Request::Insert(boxes),
            }
        }
        tag::KNN => {
            let n = c.count(limits.max_items, POINT_K_SIZE)?;
            let mut probes = Vec::with_capacity(n);
            for _ in 0..n {
                let p = c.point()?;
                let k = c.u32()? as usize;
                if k > limits.max_items {
                    return Err(WireError::TooManyItems {
                        count: k,
                        max: limits.max_items,
                    });
                }
                probes.push((p, k));
            }
            Request::Knn(probes)
        }
        tag::UPDATE | tag::STEP_DELTA => {
            let n = c.count(limits.max_items, ID_AABB_SIZE)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let id: ElementId = c.u32()?;
                pairs.push((id, c.aabb()?));
            }
            if t == tag::UPDATE {
                Request::Update(pairs)
            } else {
                Request::StepDelta(pairs)
            }
        }
        tag::REMOVE => {
            let n = c.count(limits.max_items, ID_SIZE)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(c.u32()?);
            }
            Request::Remove(ids)
        }
        other => return Err(WireError::UnknownTag(other)),
    })
}

// ---------------------------------------------------------------------
// Server→client encode/decode.
// ---------------------------------------------------------------------

/// Encodes the handshake acknowledgement.
pub fn encode_hello_ack(buf: &mut Vec<u8>, max_frame: u32, max_items: u32) {
    buf.clear();
    buf.push(op::HELLO_ACK);
    put_u16(buf, VERSION);
    put_u32(buf, max_frame);
    put_u32(buf, max_items);
}

/// Encodes a successful response. Deterministic: the bytes are a pure
/// function of `(corr, shards_skipped, epoch, response)` — the
/// differential tests rely on this to diff TCP replies against an
/// in-process oracle byte-for-byte.
pub fn encode_reply(
    buf: &mut Vec<u8>,
    corr: u64,
    shards_skipped: u32,
    epoch: u64,
    response: &Response,
) {
    buf.clear();
    buf.push(op::REPLY);
    put_u64(buf, corr);
    put_u32(buf, shards_skipped);
    put_u64(buf, epoch);
    match response {
        Response::Range(lists) => {
            buf.push(tag::RANGE);
            put_u32(buf, lists.len() as u32);
            for list in lists {
                put_u32(buf, list.len() as u32);
                for id in list {
                    put_u32(buf, *id);
                }
            }
        }
        Response::RangeCount(counts) => {
            buf.push(tag::RANGE_COUNT);
            put_u32(buf, counts.len() as u32);
            for n in counts {
                put_u64(buf, *n);
            }
        }
        Response::Knn(lists) => {
            buf.push(tag::KNN);
            put_u32(buf, lists.len() as u32);
            for list in lists {
                put_u32(buf, list.len() as u32);
                for (id, d) in list {
                    put_u32(buf, *id);
                    put_f32(buf, *d);
                }
            }
        }
        Response::Update(n) => {
            buf.push(tag::UPDATE);
            put_u64(buf, *n);
        }
        Response::Step(n) => {
            buf.push(tag::STEP);
            put_u64(buf, *n);
        }
        Response::StepDelta(n) => {
            buf.push(tag::STEP_DELTA);
            put_u64(buf, *n);
        }
        Response::Insert(ids) => {
            buf.push(tag::INSERT);
            put_u32(buf, ids.len() as u32);
            for id in ids {
                put_u32(buf, *id);
            }
        }
        Response::Remove(n) => {
            buf.push(tag::REMOVE);
            put_u64(buf, *n);
        }
    }
}

/// Encodes a typed per-request failure.
pub fn encode_error(buf: &mut Vec<u8>, corr: u64, error: RequestError) {
    buf.clear();
    buf.push(op::ERROR);
    put_u64(buf, corr);
    match error {
        RequestError::ShutDown => {
            buf.push(1);
            put_u32(buf, 0);
        }
        RequestError::WorkerFailed { shard } => {
            buf.push(2);
            put_u32(buf, shard);
        }
        RequestError::DeadlineExceeded => {
            buf.push(3);
            put_u32(buf, 0);
        }
        RequestError::ReadOnly => {
            buf.push(4);
            put_u32(buf, 0);
        }
    }
}

/// Encodes a load-shed retry hint.
pub fn encode_retry(buf: &mut Vec<u8>, corr: u64, after: Duration, depth: u32, capacity: u32) {
    buf.clear();
    buf.push(op::RETRY);
    put_u64(buf, corr);
    put_u64(buf, after.as_micros().min(u128::from(u64::MAX)) as u64);
    put_u32(buf, depth);
    put_u32(buf, capacity);
}

/// Encodes a stats snapshot payload.
pub fn encode_stats_reply(buf: &mut Vec<u8>, corr: u64, json: &str) {
    buf.clear();
    buf.push(op::STATS_REPLY);
    put_u64(buf, corr);
    buf.extend_from_slice(json.as_bytes());
}

/// Encodes a connection-level fatal frame.
pub fn encode_fatal(buf: &mut Vec<u8>, code: FatalCode, message: &str) {
    buf.clear();
    buf.push(op::FATAL);
    buf.push(code as u8);
    let msg = &message.as_bytes()[..message.len().min(512)];
    put_u16(buf, msg.len() as u16);
    buf.extend_from_slice(msg);
}

/// Decodes one server→client frame payload.
pub fn decode_server_msg(payload: &[u8]) -> Result<ServerMsg, WireError> {
    let mut c = Cursor::new(payload);
    let msg = match c.u8()? {
        op::HELLO_ACK => ServerMsg::HelloAck {
            version: c.u16()?,
            max_frame: c.u32()?,
            max_items: c.u32()?,
        },
        op::REPLY => {
            let corr = c.u64()?;
            let shards_skipped = c.u32()?;
            let epoch = c.u64()?;
            let response = decode_response_body(&mut c)?;
            ServerMsg::Reply {
                corr,
                shards_skipped,
                epoch,
                response,
            }
        }
        op::ERROR => {
            let corr = c.u64()?;
            let code = c.u8()?;
            let shard = c.u32()?;
            let error = match code {
                1 => RequestError::ShutDown,
                2 => RequestError::WorkerFailed { shard },
                3 => RequestError::DeadlineExceeded,
                4 => RequestError::ReadOnly,
                other => return Err(WireError::UnknownTag(other)),
            };
            ServerMsg::Error { corr, error }
        }
        op::RETRY => ServerMsg::Retry {
            corr: c.u64()?,
            after: Duration::from_micros(c.u64()?),
            depth: c.u32()?,
            capacity: c.u32()?,
        },
        op::STATS_REPLY => {
            let corr = c.u64()?;
            let bytes = c.take(c.remaining())?;
            ServerMsg::StatsReply {
                corr,
                json: String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)?,
            }
        }
        op::FATAL => {
            let code = FatalCode::from_u8(c.u8()?).ok_or(WireError::Protocol("bad fatal code"))?;
            let message = c.str16()?;
            ServerMsg::Fatal { code, message }
        }
        other => return Err(WireError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(msg)
}

/// Response list lengths are server-controlled, so decode trusts the frame
/// bound (the client's `max_reply_frame`) rather than `max_items` — a
/// range query can legitimately return far more ids than it sent boxes.
/// Every count is still validated against the bytes actually present.
fn decode_response_body(c: &mut Cursor<'_>) -> Result<Response, WireError> {
    let t = c.u8()?;
    Ok(match t {
        tag::RANGE => {
            let n = c.count(usize::MAX, 4)?;
            let mut lists = Vec::with_capacity(n);
            for _ in 0..n {
                let m = c.count(usize::MAX, ID_SIZE)?;
                let mut list = Vec::with_capacity(m);
                for _ in 0..m {
                    list.push(c.u32()?);
                }
                lists.push(list);
            }
            Response::Range(lists)
        }
        tag::RANGE_COUNT => {
            let n = c.count(usize::MAX, 8)?;
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                counts.push(c.u64()?);
            }
            Response::RangeCount(counts)
        }
        tag::KNN => {
            let n = c.count(usize::MAX, 4)?;
            let mut lists = Vec::with_capacity(n);
            for _ in 0..n {
                let m = c.count(usize::MAX, 8)?;
                let mut list = Vec::with_capacity(m);
                for _ in 0..m {
                    let id = c.u32()?;
                    let d = c.f32()?;
                    list.push((id, d));
                }
                lists.push(list);
            }
            Response::Knn(lists)
        }
        tag::UPDATE => Response::Update(c.u64()?),
        tag::STEP => Response::Step(c.u64()?),
        tag::STEP_DELTA => Response::StepDelta(c.u64()?),
        tag::INSERT => {
            let n = c.count(usize::MAX, ID_SIZE)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(c.u32()?);
            }
            Response::Insert(ids)
        }
        tag::REMOVE => Response::Remove(c.u64()?),
        other => return Err(WireError::UnknownTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x: f32) -> Aabb {
        Aabb::new(
            Point3::new(x, x + 1.0, x + 2.0),
            Point3::new(x + 3.0, x + 4.0, x + 5.0),
        )
    }

    fn roundtrip_request(request: Request) {
        let limits = DecodeLimits::default();
        let mut buf = Vec::new();
        for mode in [
            None,
            Some(Consistency::Barrier),
            Some(Consistency::Snapshot),
            Some(Consistency::ReadYourWrites { min_epoch: 917 }),
        ] {
            encode_request(&mut buf, 42, mode, &request);
            match decode_client_msg(&buf, &limits).expect("decodes") {
                ClientMsg::Request {
                    corr,
                    consistency,
                    request: got,
                } => {
                    assert_eq!(corr, 42);
                    assert_eq!(consistency, mode);
                    assert_eq!(format!("{got:?}"), format!("{request:?}"));
                }
                other => panic!("wrong message: {other:?}"),
            }
        }
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Range(vec![bb(0.0), bb(9.0)]));
        roundtrip_request(Request::RangeCount(vec![bb(1.0)]));
        roundtrip_request(Request::Knn(vec![(Point3::new(1.0, 2.0, 3.0), 7)]));
        roundtrip_request(Request::Update(vec![(3, bb(2.0)), (9, bb(4.0))]));
        roundtrip_request(Request::Step(vec![bb(5.0); 3]));
        roundtrip_request(Request::StepDelta(vec![(1, bb(6.0))]));
        roundtrip_request(Request::Insert(vec![bb(7.0)]));
        roundtrip_request(Request::Remove(vec![1, 2, 3]));
        roundtrip_request(Request::Range(Vec::new()));
    }

    fn roundtrip_response(response: Response) {
        let mut buf = Vec::new();
        encode_reply(&mut buf, 7, 1, 33, &response);
        match decode_server_msg(&buf).expect("decodes") {
            ServerMsg::Reply {
                corr,
                shards_skipped,
                epoch,
                response: got,
            } => {
                assert_eq!(corr, 7);
                assert_eq!(shards_skipped, 1);
                assert_eq!(epoch, 33);
                assert_eq!(got, response);
            }
            other => panic!("wrong message: {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Range(vec![vec![1, 2, 3], vec![], vec![9]]));
        roundtrip_response(Response::RangeCount(vec![0, 5, u64::MAX]));
        roundtrip_response(Response::Knn(vec![vec![(4, 1.5), (2, 2.5)], vec![]]));
        roundtrip_response(Response::Update(11));
        roundtrip_response(Response::Step(12));
        roundtrip_response(Response::StepDelta(13));
        roundtrip_response(Response::Insert(vec![100, 101]));
        roundtrip_response(Response::Remove(2));
    }

    #[test]
    fn hello_and_control_roundtrip() {
        let mut buf = Vec::new();
        encode_hello(&mut buf, "tenant-a");
        assert_eq!(
            decode_client_msg(&buf, &DecodeLimits::default()).unwrap(),
            ClientMsg::Hello {
                version: VERSION,
                tenant: "tenant-a".into()
            }
        );
        encode_stats(&mut buf, 5);
        assert_eq!(
            decode_client_msg(&buf, &DecodeLimits::default()).unwrap(),
            ClientMsg::Stats { corr: 5 }
        );
        encode_hello_ack(&mut buf, 1 << 20, 4096);
        assert_eq!(
            decode_server_msg(&buf).unwrap(),
            ServerMsg::HelloAck {
                version: VERSION,
                max_frame: 1 << 20,
                max_items: 4096
            }
        );
        encode_retry(&mut buf, 3, Duration::from_micros(450), 8, 8);
        assert_eq!(
            decode_server_msg(&buf).unwrap(),
            ServerMsg::Retry {
                corr: 3,
                after: Duration::from_micros(450),
                depth: 8,
                capacity: 8
            }
        );
        encode_error(&mut buf, 4, RequestError::WorkerFailed { shard: 2 });
        assert_eq!(
            decode_server_msg(&buf).unwrap(),
            ServerMsg::Error {
                corr: 4,
                error: RequestError::WorkerFailed { shard: 2 }
            }
        );
        encode_stats_reply(&mut buf, 6, "{\"ok\":true}");
        assert_eq!(
            decode_server_msg(&buf).unwrap(),
            ServerMsg::StatsReply {
                corr: 6,
                json: "{\"ok\":true}".into()
            }
        );
        encode_fatal(&mut buf, FatalCode::Malformed, "bad");
        assert_eq!(
            decode_server_msg(&buf).unwrap(),
            ServerMsg::Fatal {
                code: FatalCode::Malformed,
                message: "bad".into()
            }
        );
    }

    #[test]
    fn hostile_frames_fail_typed_without_allocating() {
        let limits = DecodeLimits::default();
        // Truncated mid-item.
        let mut buf = Vec::new();
        encode_request(&mut buf, 1, None, &Request::Range(vec![bb(0.0)]));
        assert_eq!(
            decode_client_msg(&buf[..buf.len() - 3], &limits),
            Err(WireError::Truncated)
        );
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0xFF);
        assert_eq!(
            decode_client_msg(&long, &limits),
            Err(WireError::Trailing { extra: 1 })
        );
        // Forged count with no bytes behind it: rejected by the byte
        // cross-check, not by attempting the allocation.
        let mut forged = vec![op::REQUEST];
        forged.extend_from_slice(&1u64.to_le_bytes());
        forged.push(0); // tenant-default consistency
        forged.push(1); // RANGE
        forged.extend_from_slice(&1_000u32.to_le_bytes());
        assert_eq!(
            decode_client_msg(&forged, &limits),
            Err(WireError::Truncated)
        );
        // Count above the cap.
        let mut over = vec![op::REQUEST];
        over.extend_from_slice(&1u64.to_le_bytes());
        over.push(0); // tenant-default consistency
        over.push(8); // REMOVE (4-byte items keep the frame small)
        over.extend_from_slice(&(limits.max_items as u32 + 1).to_le_bytes());
        over.extend(std::iter::repeat_n(0u8, (limits.max_items + 1) * 4));
        assert_eq!(
            decode_client_msg(&over, &limits),
            Err(WireError::TooManyItems {
                count: limits.max_items + 1,
                max: limits.max_items
            })
        );
        // Unknown opcode / tag.
        assert_eq!(
            decode_client_msg(&[0x7F], &limits),
            Err(WireError::UnknownOpcode(0x7F))
        );
        let mut badtag = vec![op::REQUEST];
        badtag.extend_from_slice(&1u64.to_le_bytes());
        badtag.push(0); // tenant-default consistency
        badtag.push(99);
        assert_eq!(
            decode_client_msg(&badtag, &limits),
            Err(WireError::UnknownTag(99))
        );
        // Unknown consistency byte fails typed before the body decodes.
        let mut badmode = vec![op::REQUEST];
        badmode.extend_from_slice(&1u64.to_le_bytes());
        badmode.push(77); // not a consistency value
        assert_eq!(
            decode_client_msg(&badmode, &limits),
            Err(WireError::UnknownTag(77))
        );
        // Read-your-writes truncated before its min-epoch.
        let mut shortryw = vec![op::REQUEST];
        shortryw.extend_from_slice(&1u64.to_le_bytes());
        shortryw.push(3); // READ_YOUR_WRITES, but no u64 follows
        assert_eq!(
            decode_client_msg(&shortryw, &limits),
            Err(WireError::Truncated)
        );
        // Bad handshake magic.
        let mut hello = Vec::new();
        encode_hello(&mut hello, "t");
        hello[1] = 0; // clobber magic
        assert!(matches!(
            decode_client_msg(&hello, &limits),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_read() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 64]).unwrap();
        let mut buf = Vec::new();
        // Accepts at a generous cap…
        assert!(read_frame(&mut wire.as_slice(), 1 << 10, &mut buf).unwrap());
        assert_eq!(buf.len(), 64);
        // …rejects typed below it, without consuming the body.
        match read_frame(&mut wire.as_slice(), 32, &mut buf) {
            Err(FrameReadError::Wire(WireError::FrameTooLarge { len: 64, max: 32 })) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        // Clean EOF between frames.
        assert!(!read_frame(&mut [].as_slice(), 32, &mut buf).unwrap());
        // Mid-frame EOF is an error, not a hang.
        let partial = &wire[..wire.len() - 10];
        assert!(matches!(
            read_frame(&mut &partial[..], 1 << 10, &mut buf),
            Err(FrameReadError::Io(_))
        ));
    }
}
