//! The multiplexed TCP server: acceptor + per-connection reader/writer
//! threads, a deficit-round-robin admission pump, and a completion
//! collector.
//!
//! ## Thread anatomy
//!
//! ```text
//!            ┌─────────┐   staged (per tenant)   ┌──────┐  try_submit  ┌─────────┐
//! conn 1 ──▶ │ reader 1│ ──────────────┐         │ pump │ ───────────▶ │ service │
//! conn 2 ──▶ │ reader 2│ ──────────────┼──DRR──▶ │      │   tickets    │dispatch │
//!            └─────────┘               │         └──┬───┘              └────┬────┘
//!            ┌─────────┐   frames      │            │ in-flight fifo        │
//! conn 1 ◀── │ writer 1│ ◀── replies ──┴────────────▼───────── completions ─┘
//! conn 2 ◀── │ writer 2│ ◀───────────────────── collector
//!            └─────────┘
//! ```
//!
//! * Each connection gets a **reader** (decodes frames, stages requests
//!   under the connection's tenant, answers `Stats` inline) and a
//!   **writer** (serializes response frames from an unbounded channel, so
//!   responses to one connection never block another's).
//! * One **pump** thread is the only caller of
//!   [`ServiceHandle::try_submit`]: it sweeps the per-tenant staging
//!   queues in deficit-round-robin order, which makes the service-side
//!   admission order — and therefore write-barrier placement — a single
//!   deterministic sequence regardless of how many connections race.
//! * One **collector** thread redeems tickets in admission order and
//!   routes each encoded reply to its connection's writer. A connection
//!   that died mid-request just loses the frame (the send fails
//!   silently); the ticket is still redeemed, so no completion leaks.
//!
//! ## Multi-tenant admission
//!
//! Tenants are declared at handshake. Each has a bounded **staging
//! queue** (overflow sheds as a protocol `Retry` frame whose hint scales
//! with service congestion), an **in-flight cap** (bounding its share of
//! the service queue), and a **weight**. The pump refreshes each
//! backlogged tenant's deficit by `quantum x weight` once per sweep round
//! and admits head-of-line requests while the deficit covers their cost
//! (the item count), so a hot tenant flooding one connection cannot
//! starve a light one: the light tenant's requests keep flowing at its
//! weighted share (see `tests/net_fairness.rs`).

use crate::wire::{self, DecodeLimits, FatalCode, FrameReadError, RequestError};
use simspatial_service::{
    Consistency, LatencyHistogram, Request, ServiceHandle, ServiceStats, SpatialService,
    SubmitError, TenantStats, Ticket,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One tenant's admission contract, declared in [`NetConfig`] (or minted
/// from [`NetConfig::default_tenant`] at handshake for undeclared names).
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name, matched against the `Hello` declaration.
    pub name: String,
    /// Deficit-round-robin weight: the tenant's share of admission
    /// bandwidth under contention is `weight / total weight` (≥ 1).
    pub weight: u32,
    /// Maximum requests this tenant may have admitted-but-incomplete —
    /// bounds its share of the service's intake queue.
    pub max_in_flight: usize,
    /// Staging queue bound: requests arriving beyond it are shed with a
    /// `Retry` frame instead of queueing unboundedly.
    pub stage_cap: usize,
    /// Consistency applied to this tenant's requests that carry the
    /// tenant-default byte on the wire. Defaults to
    /// [`Consistency::Barrier`] — the pre-epoch semantics — so existing
    /// deployments observe no behaviour change until a tenant (or a
    /// request) opts into snapshot reads.
    pub default_consistency: Consistency,
}

impl TenantSpec {
    /// A spec with the default caps (256 in flight, 256 staged) and
    /// [`Consistency::Barrier`] as the tenant default.
    pub fn new(name: impl Into<String>, weight: u32) -> Self {
        TenantSpec {
            name: name.into(),
            weight: weight.max(1),
            max_in_flight: 256,
            stage_cap: 256,
            default_consistency: Consistency::Barrier,
        }
    }

    /// Overrides the in-flight and staging bounds.
    pub fn with_caps(mut self, max_in_flight: usize, stage_cap: usize) -> Self {
        self.max_in_flight = max_in_flight.max(1);
        self.stage_cap = stage_cap.max(1);
        self
    }

    /// Overrides the consistency applied when a request defers to the
    /// tenant default (the `0` consistency byte on the wire).
    pub fn with_consistency(mut self, consistency: Consistency) -> Self {
        self.default_consistency = consistency;
        self
    }
}

/// Server configuration: wire limits plus the multi-tenant admission
/// policy.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Largest accepted client→server frame payload, bytes.
    pub max_frame: usize,
    /// Largest accepted per-request item count (boxes/probes/updates).
    pub max_items: usize,
    /// Tenants declared up front with explicit weights and caps.
    pub tenants: Vec<TenantSpec>,
    /// Spec applied to tenants that connect without being declared
    /// (`name` is replaced by the declared one). `None` rejects unknown
    /// tenants at handshake with [`FatalCode::UnknownTenant`].
    pub default_tenant: Option<TenantSpec>,
    /// Deficit-round-robin quantum: deficit credited per weight unit per
    /// sweep round, in request items.
    pub quantum: u32,
    /// Base retry hint for shed requests; scaled up by observed service
    /// congestion before it goes on the wire.
    pub retry_hint_base: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame: 1 << 20,
            max_items: 4096,
            tenants: Vec::new(),
            default_tenant: Some(TenantSpec::new("default", 1)),
            quantum: 32,
            retry_hint_base: Duration::from_micros(200),
        }
    }
}

impl NetConfig {
    /// Declares tenants with explicit weights/caps.
    pub fn with_tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.tenants = tenants;
        self
    }

    /// Rejects connections from tenants not declared in
    /// [`NetConfig::tenants`].
    pub fn reject_unknown_tenants(mut self) -> Self {
        self.default_tenant = None;
        self
    }

    /// Overrides the decode limits (frame bytes, request items).
    pub fn with_limits(mut self, max_frame: usize, max_items: usize) -> Self {
        self.max_frame = max_frame;
        self.max_items = max_items.max(1);
        self
    }

    fn limits(&self) -> DecodeLimits {
        DecodeLimits {
            max_frame: self.max_frame,
            max_items: self.max_items,
        }
    }
}

/// A staged request: decoded, accounted to a tenant, waiting for the
/// pump to admit it.
struct Staged {
    corr: u64,
    request: Request,
    /// `None` defers to the tenant's configured default consistency.
    consistency: Option<Consistency>,
    writer: mpsc::Sender<Vec<u8>>,
    staged_at: Instant,
}

/// One tenant's live admission state.
struct TenantState {
    spec: TenantSpec,
    staged: VecDeque<Staged>,
    in_flight: usize,
    deficit: u64,
    admitted: u64,
    shed: u64,
    completed: u64,
    failed: u64,
    latency: LatencyHistogram,
}

impl TenantState {
    fn new(spec: TenantSpec) -> Self {
        TenantState {
            spec,
            staged: VecDeque::new(),
            in_flight: 0,
            deficit: 0,
            admitted: 0,
            shed: 0,
            completed: 0,
            failed: 0,
            latency: LatencyHistogram::default(),
        }
    }
}

struct AdmissionInner {
    tenants: Vec<TenantState>,
    index: HashMap<String, usize>,
    cursor: usize,
    draining: bool,
}

impl AdmissionInner {
    fn staged_total(&self) -> usize {
        self.tenants.iter().map(|t| t.staged.len()).sum()
    }

    /// One deficit-round-robin decision: the tenant whose head-of-line
    /// request to admit next, or `None` when nothing is admissible.
    ///
    /// Pass 1 spends existing deficits in round-robin order from the
    /// cursor; if nothing admits, every backlogged tenant below its
    /// in-flight cap is credited `quantum x weight` (classic DRR — an
    /// idle tenant's deficit resets instead, so it cannot bank credit
    /// while absent) and pass 2 retries. Costs are request item counts,
    /// so weights divide *work*, not just request counts.
    fn drr_next(&mut self, quantum: u64) -> Option<usize> {
        let n = self.tenants.len();
        if n == 0 {
            return None;
        }
        for pass in 0..2 {
            for off in 0..n {
                let i = (self.cursor + off) % n;
                let t = &mut self.tenants[i];
                if t.in_flight >= t.spec.max_in_flight {
                    continue;
                }
                let Some(head) = t.staged.front() else {
                    continue;
                };
                let cost = head.request.len().max(1) as u64;
                if t.deficit >= cost {
                    t.deficit -= cost;
                    // Stay on this tenant while its deficit lasts.
                    self.cursor = i;
                    return Some(i);
                }
            }
            if pass == 0 {
                let mut any_backlogged = false;
                for t in &mut self.tenants {
                    if t.staged.is_empty() {
                        t.deficit = 0;
                    } else if t.in_flight < t.spec.max_in_flight {
                        t.deficit += quantum * u64::from(t.spec.weight);
                        any_backlogged = true;
                    }
                }
                if !any_backlogged {
                    return None;
                }
                self.cursor = (self.cursor + 1) % n;
            }
        }
        None
    }

    fn tenant_stats(&self) -> Vec<TenantStats> {
        self.tenants
            .iter()
            .map(|t| TenantStats {
                name: t.spec.name.clone(),
                weight: t.spec.weight,
                admitted: t.admitted,
                shed: t.shed,
                completed: t.completed,
                failed: t.failed,
                latency: t.latency,
            })
            .collect()
    }
}

struct Admission {
    inner: Mutex<AdmissionInner>,
    cv: Condvar,
}

/// An admitted request awaiting completion, in admission order.
struct InFlight {
    ticket: Ticket,
    corr: u64,
    writer: mpsc::Sender<Vec<u8>>,
    tenant: usize,
    staged_at: Instant,
}

struct Registry {
    conns: Vec<TcpStream>,
    threads: Vec<JoinHandle<()>>,
}

/// A running TCP front end over one [`SpatialService`].
///
/// Accepts connections until [`NetServer::shutdown`], which performs an
/// orderly drain: stop accepting, close the read half of every
/// connection (no new requests), admit and complete everything already
/// staged, flush the replies, then shut the service down and return its
/// final [`ServiceStats`] with per-tenant counters attached.
pub struct NetServer {
    service: Option<SpatialService>,
    handle: ServiceHandle,
    admission: Arc<Admission>,
    accepting: Arc<AtomicBool>,
    local_addr: SocketAddr,
    registry: Arc<Mutex<Registry>>,
    acceptor: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `service`.
    pub fn bind(
        service: SpatialService,
        addr: impl ToSocketAddrs,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let handle = service.handle();

        let mut tenants = Vec::new();
        let mut index = HashMap::new();
        for spec in &cfg.tenants {
            index.insert(spec.name.clone(), tenants.len());
            tenants.push(TenantState::new(spec.clone()));
        }
        let admission = Arc::new(Admission {
            inner: Mutex::new(AdmissionInner {
                tenants,
                index,
                cursor: 0,
                draining: false,
            }),
            cv: Condvar::new(),
        });
        let accepting = Arc::new(AtomicBool::new(true));
        let registry = Arc::new(Mutex::new(Registry {
            conns: Vec::new(),
            threads: Vec::new(),
        }));
        let cfg = Arc::new(cfg);

        let (inflight_tx, inflight_rx) = mpsc::channel::<InFlight>();

        let pump = {
            let admission = Arc::clone(&admission);
            let handle = service.handle();
            let quantum = u64::from(cfg.quantum.max(1));
            std::thread::Builder::new()
                .name("net-pump".into())
                .spawn(move || pump_loop(&admission, &handle, quantum, &inflight_tx))?
        };

        let collector = {
            let admission = Arc::clone(&admission);
            std::thread::Builder::new()
                .name("net-collector".into())
                .spawn(move || collector_loop(&admission, &inflight_rx))?
        };

        let acceptor = {
            let admission = Arc::clone(&admission);
            let accepting = Arc::clone(&accepting);
            let registry = Arc::clone(&registry);
            let handle = service.handle();
            let cfg = Arc::clone(&cfg);
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if !accepting.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        let Ok(write_half) = stream.try_clone() else {
                            continue;
                        };
                        let Ok(tracked) = stream.try_clone() else {
                            continue;
                        };
                        let (frame_tx, frame_rx) = mpsc::channel::<Vec<u8>>();
                        let writer = std::thread::Builder::new()
                            .name("net-writer".into())
                            .spawn(move || writer_loop(write_half, &frame_rx));
                        let reader = {
                            let admission = Arc::clone(&admission);
                            let handle = handle.clone();
                            let cfg = Arc::clone(&cfg);
                            std::thread::Builder::new()
                                .name("net-reader".into())
                                .spawn(move || {
                                    reader_loop(stream, frame_tx, &admission, &handle, &cfg)
                                })
                        };
                        let mut reg = registry.lock().unwrap();
                        reg.conns.push(tracked);
                        if let Ok(h) = writer {
                            reg.threads.push(h);
                        }
                        if let Ok(h) = reader {
                            reg.threads.push(h);
                        }
                    }
                })?
        };

        Ok(NetServer {
            service: Some(service),
            handle,
            admission,
            accepting,
            local_addr,
            registry,
            acceptor: Some(acceptor),
            pump: Some(pump),
            collector: Some(collector),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A live stats snapshot with per-tenant counters attached — the
    /// same payload a wire `Stats` request returns.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.handle.stats();
        stats.tenants = self.admission.inner.lock().unwrap().tenant_stats();
        stats
    }

    /// Orderly drain: stop accepting, stop reading, complete everything
    /// already staged or in flight, flush replies, shut the service
    /// down, and return the final stats (with per-tenant counters).
    pub fn shutdown(mut self) -> ServiceStats {
        self.drain();
        let mut stats = match self.service.take() {
            Some(service) => service.shutdown(),
            None => self.handle.stats(),
        };
        stats.tenants = self.admission.inner.lock().unwrap().tenant_stats();
        stats
    }

    fn drain(&mut self) {
        // 1. Stop accepting; a dummy connection unblocks `accept`.
        self.accepting.store(false, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // 2. Close the read half of every connection: readers see EOF
        // and exit; already-staged requests stay in the queues.
        let (conns, threads) = {
            let mut reg = self.registry.lock().unwrap();
            (
                std::mem::take(&mut reg.conns),
                std::mem::take(&mut reg.threads),
            )
        };
        for conn in &conns {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        // 3. Tell the pump to drain: it admits everything staged, then
        // exits, dropping the collector's intake; the collector redeems
        // every outstanding ticket and exits.
        {
            let mut inner = self.admission.inner.lock().unwrap();
            inner.draining = true;
        }
        self.admission.cv.notify_all();
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
        if let Some(h) = self.collector.take() {
            let _ = h.join();
        }
        // 4. Readers are gone (EOF), staged queues empty, tickets
        // redeemed — every frame sender is dropped, so writers flush
        // their last frames and exit.
        for h in threads {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.service.is_some() {
            self.drain();
            if let Some(service) = self.service.take() {
                let _ = service.shutdown();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection threads.
// ---------------------------------------------------------------------

fn send_frame(tx: &mpsc::Sender<Vec<u8>>, buf: &[u8]) {
    // Best effort: a dead connection just loses the frame.
    let _ = tx.send(buf.to_vec());
}

fn writer_loop(stream: TcpStream, rx: &mpsc::Receiver<Vec<u8>>) {
    let mut w = std::io::BufWriter::new(stream);
    'conn: while let Ok(frame) = rx.recv() {
        let mut fatal = frame.first() == Some(&wire::op::FATAL);
        if wire::write_frame(&mut w, &frame).is_err() {
            break;
        }
        // Opportunistically coalesce queued frames into one flush.
        while let Ok(next) = rx.try_recv() {
            fatal |= next.first() == Some(&wire::op::FATAL);
            if wire::write_frame(&mut w, &next).is_err() {
                break 'conn;
            }
        }
        if w.flush().is_err() {
            break;
        }
        if fatal {
            // A Fatal frame is always terminal: actively close so the
            // peer sees EOF now, not at server shutdown (other clones of
            // this stream — the shutdown registry's — stay open).
            let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
            break;
        }
    }
    // Drain remaining senders' frames so late completions never block
    // (they wouldn't anyway — the channel is unbounded — but this keeps
    // the receiver alive until the last sender drops, silencing sends).
    while rx.recv().is_ok() {}
}

/// Per-connection read loop: handshake, then decode-and-stage until EOF
/// or a protocol violation (answered with a `Fatal` frame).
fn reader_loop(
    stream: TcpStream,
    frame_tx: mpsc::Sender<Vec<u8>>,
    admission: &Admission,
    handle: &ServiceHandle,
    cfg: &NetConfig,
) {
    let limits = cfg.limits();
    let mut r = BufReader::new(stream);
    let mut frame = Vec::new();
    let mut out = Vec::new();

    // Handshake: the first frame must be a well-formed `Hello` naming an
    // admissible tenant.
    let tenant = match read_client_msg(&mut r, &limits, &mut frame) {
        Ok(Some(wire::ClientMsg::Hello { tenant, .. })) => tenant,
        Ok(Some(_)) => {
            wire::encode_fatal(&mut out, FatalCode::BadHandshake, "expected Hello first");
            send_frame(&frame_tx, &out);
            return;
        }
        Ok(None) => return,
        Err(e) => {
            wire::encode_fatal(&mut out, FatalCode::for_wire_error(&e), &e.to_string());
            send_frame(&frame_tx, &out);
            return;
        }
    };
    let tenant_idx = {
        let mut inner = admission.inner.lock().unwrap();
        match inner.index.get(&tenant) {
            Some(&i) => i,
            None => match &cfg.default_tenant {
                Some(default) => {
                    let mut spec = default.clone();
                    spec.name = tenant.clone();
                    let i = inner.tenants.len();
                    inner.index.insert(tenant, i);
                    inner.tenants.push(TenantState::new(spec));
                    i
                }
                None => {
                    drop(inner);
                    wire::encode_fatal(
                        &mut out,
                        FatalCode::UnknownTenant,
                        "tenant not declared and defaults are disabled",
                    );
                    send_frame(&frame_tx, &out);
                    return;
                }
            },
        }
    };
    wire::encode_hello_ack(&mut out, cfg.max_frame as u32, cfg.max_items as u32);
    send_frame(&frame_tx, &out);

    loop {
        let msg = match read_client_msg(&mut r, &limits, &mut frame) {
            Ok(Some(msg)) => msg,
            Ok(None) => return, // clean close (or drain's Shutdown::Read)
            Err(e) => {
                wire::encode_fatal(&mut out, FatalCode::for_wire_error(&e), &e.to_string());
                send_frame(&frame_tx, &out);
                return;
            }
        };
        match msg {
            wire::ClientMsg::Hello { .. } => {
                wire::encode_fatal(&mut out, FatalCode::BadHandshake, "duplicate Hello");
                send_frame(&frame_tx, &out);
                return;
            }
            wire::ClientMsg::Stats { corr } => {
                // Telemetry bypasses admission: reads a snapshot, never
                // queues behind tenant backlogs.
                let mut stats = handle.stats();
                stats.tenants = admission.inner.lock().unwrap().tenant_stats();
                wire::encode_stats_reply(&mut out, corr, &stats.to_json());
                send_frame(&frame_tx, &out);
            }
            wire::ClientMsg::Request {
                corr,
                consistency,
                request,
            } => {
                let mut inner = admission.inner.lock().unwrap();
                if inner.draining {
                    wire::encode_error(&mut out, corr, RequestError::ShutDown);
                    send_frame(&frame_tx, &out);
                    continue;
                }
                let t = &mut inner.tenants[tenant_idx];
                if t.staged.len() >= t.spec.stage_cap {
                    // Load shed: hint scales with how congested the
                    // service actually is, so a saturated queue backs
                    // clients off harder than a momentary blip.
                    t.shed += 1;
                    let depth = handle.queue_depth();
                    let capacity = handle.queue_capacity().max(1);
                    let congestion = (depth as f64 / capacity as f64).clamp(0.0, 1.0);
                    let after = cfg.retry_hint_base.mul_f64(1.0 + 3.0 * congestion);
                    drop(inner);
                    wire::encode_retry(&mut out, corr, after, depth as u32, capacity as u32);
                    send_frame(&frame_tx, &out);
                    continue;
                }
                t.staged.push_back(Staged {
                    corr,
                    request,
                    consistency,
                    writer: frame_tx.clone(),
                    staged_at: Instant::now(),
                });
                drop(inner);
                admission.cv.notify_all();
            }
        }
    }
}

fn read_client_msg(
    r: &mut impl std::io::Read,
    limits: &DecodeLimits,
    frame: &mut Vec<u8>,
) -> Result<Option<wire::ClientMsg>, wire::WireError> {
    match wire::read_frame(r, limits.max_frame, frame) {
        Ok(false) => Ok(None),
        Ok(true) => wire::decode_client_msg(frame, limits).map(Some),
        // EOF inside a frame is a protocol violation (the peer promised
        // more bytes), answered typed on the write half if it is still
        // open; a reset/aborted transport is just a gone peer.
        Err(FrameReadError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(wire::WireError::Truncated)
        }
        Err(FrameReadError::Io(_)) => Ok(None),
        Err(FrameReadError::Wire(e)) => Err(e),
    }
}

// ---------------------------------------------------------------------
// Admission pump + completion collector.
// ---------------------------------------------------------------------

/// The single admission thread: sweeps staging queues in DRR order and
/// feeds the service. Holding the admission lock across `try_submit`
/// (non-blocking) makes the service-side admission order — and the write
/// barriers in it — one deterministic sequence.
fn pump_loop(
    admission: &Admission,
    handle: &ServiceHandle,
    quantum: u64,
    inflight_tx: &mpsc::Sender<InFlight>,
) {
    let mut inner = admission.inner.lock().unwrap();
    loop {
        if let Some(i) = inner.drr_next(quantum) {
            let Staged {
                corr,
                request,
                consistency,
                writer,
                staged_at,
            } = inner.tenants[i]
                .staged
                .pop_front()
                .expect("drr admitted a head");
            let cost = request.len().max(1) as u64;
            // Per-request consistency wins; the tenant-default byte
            // resolves here, where the tenant's spec is at hand.
            let resolved = consistency.unwrap_or(inner.tenants[i].spec.default_consistency);
            match handle.try_submit_at(request, resolved) {
                Ok(ticket) => {
                    inner.tenants[i].in_flight += 1;
                    inner.tenants[i].admitted += 1;
                    if inflight_tx
                        .send(InFlight {
                            ticket,
                            corr,
                            writer,
                            tenant: i,
                            staged_at,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Err(e @ SubmitError::Full { .. }) => {
                    // Intake full: put the request back at the head with
                    // its deficit refunded and wait for a completion to
                    // free space (the collector notifies).
                    inner.tenants[i].deficit += cost;
                    inner.tenants[i].staged.push_front(Staged {
                        corr,
                        request: e.into_request(),
                        consistency,
                        writer,
                        staged_at,
                    });
                    inner = admission
                        .cv
                        .wait_timeout(inner, Duration::from_micros(500))
                        .unwrap()
                        .0;
                }
                Err(SubmitError::ReadOnly(_)) => {
                    inner.tenants[i].failed += 1;
                    let mut out = Vec::new();
                    wire::encode_error(&mut out, corr, RequestError::ReadOnly);
                    let _ = writer.send(out);
                }
                Err(SubmitError::ShutDown(_)) => {
                    inner.tenants[i].failed += 1;
                    let mut out = Vec::new();
                    wire::encode_error(&mut out, corr, RequestError::ShutDown);
                    let _ = writer.send(out);
                }
            }
            continue;
        }
        if inner.draining && inner.staged_total() == 0 {
            return; // drops inflight_tx → collector drains and exits
        }
        inner = admission
            .cv
            .wait_timeout(inner, Duration::from_millis(5))
            .unwrap()
            .0;
    }
}

/// Redeems tickets in admission order, encodes the outcome, and routes
/// it to the owning connection's writer. Every admitted ticket is
/// redeemed exactly once — dead connections just lose the frame.
fn collector_loop(admission: &Admission, inflight_rx: &mpsc::Receiver<InFlight>) {
    let mut out = Vec::new();
    while let Ok(inf) = inflight_rx.recv() {
        let ok = match inf.ticket.recv_reply() {
            Ok(reply) => {
                wire::encode_reply(
                    &mut out,
                    inf.corr,
                    reply.shards_skipped,
                    reply.epoch,
                    &reply.response,
                );
                true
            }
            Err(e) => {
                wire::encode_error(&mut out, inf.corr, e.into());
                false
            }
        };
        send_frame(&inf.writer, &out);
        let mut inner = admission.inner.lock().unwrap();
        let t = &mut inner.tenants[inf.tenant];
        t.in_flight -= 1;
        if ok {
            t.completed += 1;
            t.latency.record(inf.staged_at.elapsed());
        } else {
            t.failed += 1;
        }
        drop(inner);
        admission.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_geom::{Aabb, Point3};

    fn staged(writer: &mpsc::Sender<Vec<u8>>) -> Staged {
        Staged {
            corr: 0,
            request: Request::RangeCount(vec![Aabb::new(
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(1.0, 1.0, 1.0),
            )]),
            consistency: None,
            writer: writer.clone(),
            staged_at: Instant::now(),
        }
    }

    /// The DRR invariant, deterministically: with weights 9:1, equal
    /// unit-cost requests and both queues always backlogged, admissions
    /// split 9:1 (exactly, over any whole number of refresh rounds).
    #[test]
    fn drr_sweep_honours_weights() {
        let (tx, _rx) = mpsc::channel();
        let mut inner = AdmissionInner {
            tenants: vec![
                TenantState::new(TenantSpec::new("hot", 9)),
                TenantState::new(TenantSpec::new("trickle", 1)),
            ],
            index: HashMap::new(),
            cursor: 0,
            draining: false,
        };
        for _ in 0..600 {
            inner.tenants[0].staged.push_back(staged(&tx));
            inner.tenants[1].staged.push_back(staged(&tx));
        }
        let mut admitted = [0u64; 2];
        for _ in 0..500 {
            let i = inner.drr_next(1).expect("backlogged queues always admit");
            inner.tenants[i].staged.pop_front();
            admitted[i] += 1;
        }
        assert_eq!(admitted[0] + admitted[1], 500);
        // 9:1 within one refresh round of slack.
        assert!(
            admitted[0] >= 440 && admitted[0] <= 460,
            "hot tenant took {} of 500",
            admitted[0]
        );
        assert!(
            admitted[1] >= 40 && admitted[1] <= 60,
            "trickle tenant took {} of 500",
            admitted[1]
        );
    }

    /// An in-flight-capped tenant is skipped without losing its turn:
    /// when the cap clears it resumes at its weighted share.
    #[test]
    fn drr_skips_capped_tenants() {
        let (tx, _rx) = mpsc::channel();
        let mut inner = AdmissionInner {
            tenants: vec![
                TenantState::new(TenantSpec::new("a", 1).with_caps(1, 64)),
                TenantState::new(TenantSpec::new("b", 1)),
            ],
            index: HashMap::new(),
            cursor: 0,
            draining: false,
        };
        for _ in 0..100 {
            inner.tenants[0].staged.push_back(staged(&tx));
            inner.tenants[1].staged.push_back(staged(&tx));
        }
        // Tenant a sits at its in-flight cap: the sweep keeps serving b.
        inner.tenants[0].in_flight = 1;
        for _ in 0..10 {
            let i = inner.drr_next(1).expect("b stays admissible");
            assert_eq!(i, 1, "capped tenant must be skipped");
            inner.tenants[i].staged.pop_front();
        }
        // Completion clears the cap; a resumes.
        inner.tenants[0].in_flight = 0;
        let resumed = (0..10)
            .map(|_| {
                let i = inner.drr_next(1).unwrap();
                inner.tenants[i].staged.pop_front();
                i
            })
            .filter(|&i| i == 0)
            .count();
        assert!(resumed >= 4, "uncapped tenant resumed only {resumed}/10");
    }

    /// Empty queues reset deficits: a tenant cannot bank credit while
    /// idle and then burst past its weight when it returns.
    #[test]
    fn drr_resets_idle_deficit() {
        let (tx, _rx) = mpsc::channel();
        let mut inner = AdmissionInner {
            tenants: vec![
                TenantState::new(TenantSpec::new("idle", 9)),
                TenantState::new(TenantSpec::new("busy", 1)),
            ],
            index: HashMap::new(),
            cursor: 0,
            draining: false,
        };
        for _ in 0..50 {
            inner.tenants[1].staged.push_back(staged(&tx));
        }
        // Many rounds with `idle` absent: its deficit must stay 0.
        for _ in 0..20 {
            let i = inner.drr_next(1).unwrap();
            inner.tenants[i].staged.pop_front();
            assert_eq!(i, 1);
        }
        assert_eq!(inner.tenants[0].deficit, 0, "idle tenant banked deficit");
    }
}
