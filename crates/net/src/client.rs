//! A minimal blocking client for the wire protocol.
//!
//! [`NetClient`] supports two styles:
//!
//! * **Synchronous** — [`NetClient::call`] sends one request and blocks
//!   for its outcome; [`NetClient::call_with_retry`] additionally obeys
//!   server `Retry` hints (sleeping the congestion-scaled backoff the
//!   server suggested) until the request is admitted or the budget runs
//!   out.
//! * **Pipelined** — [`NetClient::enqueue`] stacks any number of
//!   requests without flushing, [`NetClient::flush`] ships them in one
//!   syscall burst, and [`NetClient::recv_msg`] drains responses in
//!   whatever order the server produced them, matched by correlation id.
//!
//! The client is deliberately thread-unaware: one `NetClient` per
//! connection per thread. Open several connections for concurrency —
//! that is the server's multiplexing model, and what the bench driver
//! does.

use crate::wire::{self, DecodeLimits, ServerMsg};
use crate::NetError;
use simspatial_service::{Consistency, Request, Response};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// The outcome of one synchronous [`NetClient::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum CallOutcome {
    /// The request completed.
    Reply {
        /// The response payload.
        response: Response,
        /// Dead shards skipped serving it (partial coverage when > 0).
        shards_skipped: u32,
        /// The epoch the service reported: the published epoch a
        /// snapshot read ran against, or — for a write — the epoch whose
        /// publication made it visible. Feed it back as
        /// `Consistency::ReadYourWrites { min_epoch }` to guarantee a
        /// later read observes this request. Zero when the backend does
        /// not publish snapshots.
        epoch: u64,
    },
    /// The request was admitted but failed typed.
    Rejected(wire::RequestError),
    /// The request was shed before admission; retry after the hint.
    Retry {
        /// Server-suggested backoff, scaled by its observed congestion.
        after: Duration,
        /// Service intake queue depth at shed time.
        depth: u32,
        /// Service intake queue capacity.
        capacity: u32,
    },
}

/// One blocking connection to a [`NetServer`](crate::NetServer).
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_corr: u64,
    buf: Vec<u8>,
    frame: Vec<u8>,
    max_reply_frame: usize,
    server_max_frame: u32,
    server_max_items: u32,
    consistency: Option<Consistency>,
}

impl NetClient {
    /// Connects, performs the `Hello` handshake declaring `tenant`, and
    /// returns a ready client.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        let mut client = NetClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_corr: 1,
            buf: Vec::new(),
            frame: Vec::new(),
            max_reply_frame: 64 << 20,
            server_max_frame: 0,
            server_max_items: 0,
            consistency: None,
        };
        wire::encode_hello(&mut client.buf, tenant);
        wire::write_frame(&mut client.writer, &client.buf)?;
        client.writer.flush()?;
        match client.recv_msg()? {
            ServerMsg::HelloAck {
                max_frame,
                max_items,
                ..
            } => {
                client.server_max_frame = max_frame;
                client.server_max_items = max_items;
                Ok(client)
            }
            other => Err(unexpected(other)),
        }
    }

    /// The largest frame the client will accept from the server.
    /// Responses are server-sized (a range query may return many ids),
    /// so this defaults much larger (64 MiB) than the server's
    /// client-frame limit.
    pub fn set_max_reply_frame(&mut self, bytes: usize) {
        self.max_reply_frame = bytes;
    }

    /// The server's advertised per-frame limit for client requests.
    pub fn server_max_frame(&self) -> u32 {
        self.server_max_frame
    }

    /// The server's advertised per-request item limit.
    pub fn server_max_items(&self) -> u32 {
        self.server_max_items
    }

    /// Sets the consistency mode stamped on every subsequent request
    /// from this client. `None` (the initial state) emits the
    /// tenant-default byte, letting the server resolve the mode from
    /// the connection's tenant profile.
    pub fn set_consistency(&mut self, consistency: Option<Consistency>) {
        self.consistency = consistency;
    }

    /// The consistency mode currently stamped on requests.
    pub fn consistency(&self) -> Option<Consistency> {
        self.consistency
    }

    /// Queues one request without flushing; returns its correlation id.
    /// Pair with [`NetClient::flush`] and [`NetClient::recv_msg`] to
    /// pipeline many in-flight requests on one connection.
    pub fn enqueue(&mut self, request: &Request) -> Result<u64, NetError> {
        self.enqueue_at(request, self.consistency)
    }

    /// Queues one request under an explicit consistency mode,
    /// overriding the client-level setting for this request only.
    pub fn enqueue_at(
        &mut self,
        request: &Request,
        consistency: Option<Consistency>,
    ) -> Result<u64, NetError> {
        let corr = self.next_corr;
        self.next_corr += 1;
        wire::encode_request(&mut self.buf, corr, consistency, request);
        wire::write_frame(&mut self.writer, &self.buf)?;
        Ok(corr)
    }

    /// Ships everything queued by [`NetClient::enqueue`].
    pub fn flush(&mut self) -> Result<(), NetError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Queues and ships one request; returns its correlation id.
    pub fn send(&mut self, request: &Request) -> Result<u64, NetError> {
        let corr = self.enqueue(request)?;
        self.flush()?;
        Ok(corr)
    }

    /// Blocks for the next server message (any correlation id). A
    /// `Fatal` frame or a close with responses outstanding surfaces as
    /// an error — the connection is unusable afterwards.
    pub fn recv_msg(&mut self) -> Result<ServerMsg, NetError> {
        if !wire::read_frame(&mut self.reader, self.max_reply_frame, &mut self.frame)? {
            return Err(NetError::Closed);
        }
        match wire::decode_server_msg(&self.frame)? {
            ServerMsg::Fatal { code, message } => Err(NetError::Fatal { code, message }),
            msg => Ok(msg),
        }
    }

    /// Sends one request and blocks for its outcome. Assumes no other
    /// requests are outstanding on this connection (use the pipelined
    /// API otherwise): a response with a different correlation id is a
    /// protocol error.
    pub fn call(&mut self, request: &Request) -> Result<CallOutcome, NetError> {
        self.call_at(request, self.consistency)
    }

    /// Like [`NetClient::call`], under an explicit consistency mode for
    /// this request only (`None` defers to the tenant default).
    pub fn call_at(
        &mut self,
        request: &Request,
        consistency: Option<Consistency>,
    ) -> Result<CallOutcome, NetError> {
        let corr = self.enqueue_at(request, consistency)?;
        self.flush()?;
        match self.recv_msg()? {
            ServerMsg::Reply {
                corr: c,
                shards_skipped,
                epoch,
                response,
            } if c == corr => Ok(CallOutcome::Reply {
                response,
                shards_skipped,
                epoch,
            }),
            ServerMsg::Error { corr: c, error } if c == corr => Ok(CallOutcome::Rejected(error)),
            ServerMsg::Retry {
                corr: c,
                after,
                depth,
                capacity,
            } if c == corr => Ok(CallOutcome::Retry {
                after,
                depth,
                capacity,
            }),
            other => Err(unexpected(other)),
        }
    }

    /// Like [`NetClient::call`], but obeys up to `max_retries` server
    /// `Retry` hints, sleeping each suggested backoff before resending.
    /// Returns the final outcome — still `Retry` if the budget ran out.
    pub fn call_with_retry(
        &mut self,
        request: &Request,
        max_retries: u32,
    ) -> Result<CallOutcome, NetError> {
        let mut outcome = self.call(request)?;
        for _ in 0..max_retries {
            match outcome {
                CallOutcome::Retry { after, .. } => {
                    std::thread::sleep(after);
                    outcome = self.call(request)?;
                }
                done => return Ok(done),
            }
        }
        Ok(outcome)
    }

    /// Requests a stats snapshot; returns the server's JSON payload
    /// (`ServiceStats::to_json`, including per-tenant counters).
    pub fn request_stats(&mut self) -> Result<String, NetError> {
        let corr = self.next_corr;
        self.next_corr += 1;
        wire::encode_stats(&mut self.buf, corr);
        wire::write_frame(&mut self.writer, &self.buf)?;
        self.writer.flush()?;
        match self.recv_msg()? {
            ServerMsg::StatsReply { corr: c, json } if c == corr => Ok(json),
            other => Err(unexpected(other)),
        }
    }

    /// The decode limits the server advertised at handshake, for
    /// callers that want to pre-validate requests client-side.
    pub fn advertised_limits(&self) -> DecodeLimits {
        DecodeLimits {
            max_frame: self.server_max_frame as usize,
            max_items: self.server_max_items as usize,
        }
    }
}

fn unexpected(msg: ServerMsg) -> NetError {
    let _ = msg;
    NetError::Wire(wire::WireError::Protocol(
        "unexpected message for this call",
    ))
}
