//! Execution backends the scheduler dispatches coalesced batches to.
//!
//! The scheduler is backend-agnostic: anything that can run one range
//! batch and one per-`k` kNN batch fits. Two implementations ship:
//!
//! * [`EngineBackend`] — a single [`QueryEngine`] over one index. The
//!   dispatcher thread executes inline: one worker total, the degenerate
//!   (but often fastest single-core) deployment.
//! * [`ShardedBackend`] — a [`ShardedEngine`] split into its
//!   [`ShardPlanner`] and per-shard
//!   [`ShardExecutor`](simspatial_index::ShardExecutor)s, each executor
//!   pinned to a **persistent worker thread**. The dispatcher routes each
//!   batch into per-shard lanes, ships lanes over channels, and merges the
//!   returned lanes through the planner's deduplicating sinks — so shard
//!   execution overlaps across cores while results stay byte-identical to
//!   a serial [`ShardedEngine`] run.

use simspatial_geom::{Aabb, Element, ElementId, Point3, Shape};
use simspatial_index::{
    BatchResults, KnnBatchResults, KnnIndex, KnnLane, QueryEngine, QueryStats, RangeLane,
    ShardExecutor, ShardPlanner, ShardedEngine, SpatialIndex, UpdateLane, UpdateStats,
};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A batch execution target for the service scheduler.
///
/// Contract mirrors the engine layer: `range_batch` fills one id list per
/// query (in plan emission order), `knn_batch` one ascending
/// `(distance, id)` list per probe; both reset `out` first and return the
/// batch accounting. Writable backends additionally apply coalesced write
/// batches through [`ServiceBackend::update_batch`] and advertise it via
/// [`ServiceBackend::supports_updates`] — the service rejects write
/// requests at admission ([`SubmitError::ReadOnly`](crate::SubmitError))
/// when the backend does not.
pub trait ServiceBackend: Send + 'static {
    /// Executes one coalesced range batch.
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> QueryStats;

    /// Executes one coalesced kNN batch at a single `k`.
    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> QueryStats;

    /// Applies one coalesced write batch: each `(id, shape)` entry replaces
    /// that element's geometry (duplicate ids resolve last-write-wins).
    /// Called by the scheduler between query runs so the write-barrier
    /// ordering holds. The default (read-only backend) applies nothing and
    /// reports every entry skipped — unreachable through the service,
    /// which rejects writes at admission when
    /// [`ServiceBackend::supports_updates`] is false.
    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateStats {
        UpdateStats {
            skipped: updates.len() as u64,
            ..UpdateStats::default()
        }
    }

    /// True when [`ServiceBackend::update_batch`] actually applies updates.
    fn supports_updates(&self) -> bool {
        false
    }

    /// Structure bytes the backend holds (surfaced through `ServiceStats`;
    /// refreshed after every update application, so post-migration shrink
    /// is visible).
    fn memory_bytes(&self) -> usize;

    /// Elements per shard (one entry for unsharded backends); refreshed
    /// after every update application.
    fn shard_sizes(&self) -> Vec<usize>;

    /// Stops any worker threads. Called once by the scheduler on orderly
    /// shutdown; must be idempotent.
    fn shutdown(&mut self) {}
}

/// A pluggable write path for [`EngineBackend`]: applies a coalesced
/// update batch to the element data and brings the index in sync.
///
/// Two families of implementations ship:
///
/// * [`RebuildUpdater`] (this crate) — mutates the data and rebuilds the
///   index from scratch with a stored build function; works for **any**
///   index type, and the paper's own measurements show full rebuilds are
///   competitive under massive movement.
/// * `simspatial_moving::StrategyWrites` — adapts any
///   `UpdateStrategy` (grid migration, bottom-up R-Tree updates, buffered
///   updates, …) so a simulation's maintenance strategy serves the
///   service's write path directly.
pub trait IndexUpdater<I>: Send + 'static {
    /// Applies `updates` (last-write-wins per id) to `data` and brings
    /// `index` in sync. `data` follows the dataset convention
    /// (`element.id == position`); entries with out-of-range ids must be
    /// skipped and counted.
    fn apply(
        &mut self,
        index: &mut I,
        data: &mut [Element],
        updates: &[(ElementId, Shape)],
    ) -> UpdateStats;
}

/// The stored index build function of a [`RebuildUpdater`].
pub type BuildFn<I> = Box<dyn Fn(&[Element]) -> I + Send>;

/// The rebuild-from-scratch [`IndexUpdater`]: applies the geometry changes
/// to the element data, then rebuilds the index over the updated slice with
/// the stored build function. Correct for every index type.
pub struct RebuildUpdater<I> {
    build: BuildFn<I>,
}

impl<I> RebuildUpdater<I> {
    /// An updater that rebuilds with `build` after every write batch.
    pub fn new(build: impl Fn(&[Element]) -> I + Send + 'static) -> Self {
        Self {
            build: Box::new(build),
        }
    }
}

impl<I: Send + 'static> IndexUpdater<I> for RebuildUpdater<I> {
    fn apply(
        &mut self,
        index: &mut I,
        data: &mut [Element],
        updates: &[(ElementId, Shape)],
    ) -> UpdateStats {
        let start = Instant::now();
        let mut stats = UpdateStats::default();
        // Last-write-wins: reverse iteration, first sighting of an id wins.
        let mut seen = vec![false; data.len()];
        for &(id, shape) in updates.iter().rev() {
            match data.get_mut(id as usize) {
                Some(e) if !seen[id as usize] => {
                    seen[id as usize] = true;
                    e.shape = shape;
                    stats.applied += 1;
                }
                _ => stats.skipped += 1,
            }
        }
        // Every element is (re)placed by the rebuild.
        stats.migrations = stats.applied;
        *index = (self.build)(data);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        stats
    }
}

/// A single-engine backend: one index, one [`QueryEngine`], executed inline
/// on the dispatcher thread (the "single worker" deployment). Read-only by
/// default; attach an [`IndexUpdater`] ([`EngineBackend::with_updater`] or
/// [`EngineBackend::build_writable`]) to serve the write path too.
pub struct EngineBackend<I> {
    data: Vec<Element>,
    index: I,
    engine: QueryEngine,
    updater: Option<Box<dyn IndexUpdater<I>>>,
}

impl<I: SpatialIndex + KnnIndex + Send + 'static> EngineBackend<I> {
    /// A read-only backend over `data` served by a pre-built `index`.
    pub fn new(data: Vec<Element>, index: I) -> Self {
        Self {
            data,
            index,
            engine: QueryEngine::new(),
            updater: None,
        }
    }

    /// Builds the index from `data` with `build`, then wraps both
    /// (read-only).
    pub fn build(data: Vec<Element>, build: impl FnOnce(&[Element]) -> I) -> Self {
        let index = build(&data);
        Self::new(data, index)
    }

    /// A writable backend: queries as usual, write batches applied through
    /// `updater` (e.g. a `simspatial_moving` strategy adapter).
    pub fn with_updater(data: Vec<Element>, index: I, updater: impl IndexUpdater<I>) -> Self {
        let mut backend = Self::new(data, index);
        backend.updater = Some(Box::new(updater));
        backend
    }

    /// A writable backend whose write path rebuilds the index with `build`
    /// after every update application ([`RebuildUpdater`]).
    pub fn build_writable(
        data: Vec<Element>,
        build: impl Fn(&[Element]) -> I + Send + 'static,
    ) -> Self {
        let index = build(&data);
        Self::with_updater(data, index, RebuildUpdater::new(build))
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }
}

impl<I: SpatialIndex + KnnIndex + Send + 'static> ServiceBackend for EngineBackend<I> {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> QueryStats {
        self.engine
            .range_collect(&self.index, &self.data, queries, out)
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> QueryStats {
        self.engine
            .knn_collect(&self.index, &self.data, points, k, out)
    }

    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateStats {
        match self.updater.as_mut() {
            Some(updater) => updater.apply(&mut self.index, &mut self.data, updates),
            None => UpdateStats {
                skipped: updates.len() as u64,
                ..UpdateStats::default()
            },
        }
    }

    fn supports_updates(&self) -> bool {
        self.updater.is_some()
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.engine.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        vec![self.data.len()]
    }
}

/// A routed lane travelling to a shard worker (to execute) and back (with
/// results filled) — the same type in both directions, so lane allocations
/// recycle across dispatches without re-wrapping.
enum Job {
    Range(RangeLane),
    Knn(KnnLane),
    Update(UpdateLane),
}

struct ShardWorker {
    /// `None` after shutdown — dropping the sender ends the worker loop.
    job_tx: Option<mpsc::Sender<Job>>,
    done_rx: mpsc::Receiver<Job>,
    thread: Option<JoinHandle<()>>,
}

impl ShardWorker {
    fn send(&self, job: Job) {
        self.job_tx
            .as_ref()
            .expect("backend already shut down")
            .send(job)
            .expect("shard worker exited unexpectedly");
    }

    fn stop(&mut self) {
        self.job_tx = None; // closes the channel; the worker loop exits
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A region-sharded backend with one **persistent worker thread per
/// shard**. Built by splitting a [`ShardedEngine`] into planner +
/// executors ([`ShardedEngine::into_parts`]) and moving each executor onto
/// its own thread; the scheduler-side half routes, scatters lanes,
/// gathers, and merges.
///
/// Results are byte-identical to running the same `ShardedEngine`
/// serially: routing, execution plans and the deduplicating merge are the
/// exact same code — only *where* each shard's sub-batch runs changes.
pub struct ShardedBackend {
    planner: ShardPlanner,
    workers: Vec<ShardWorker>,
    sizes: Vec<usize>,
    /// Per-shard structure bytes, captured at spawn and refreshed from the
    /// [`UpdateLane`] reports after every write batch — so post-migration
    /// shrink is reflected even though the executors live on their worker
    /// threads.
    shard_memory: Vec<usize>,
    /// Whether every executor had a rebuild function attached
    /// (`ShardedEngine::with_rebuild`) — the write path needs it.
    updatable: bool,
    range_lanes: Vec<RangeLane>,
    knn_home: Vec<KnnLane>,
    knn_fan: Vec<KnnLane>,
    update_lanes: Vec<UpdateLane>,
    /// Scatter bookkeeping: which workers got a job this phase.
    sent: Vec<bool>,
}

impl ShardedBackend {
    /// Splits `engine` and pins each shard executor to a freshly spawned
    /// worker thread. The backend is writable iff the engine was built
    /// with a rebuild function
    /// ([`ShardedEngine::with_rebuild`]).
    pub fn spawn<I: SpatialIndex + KnnIndex + Send + 'static>(engine: ShardedEngine<I>) -> Self {
        let sizes = engine.shard_sizes();
        let updatable = engine.is_updatable();
        let (planner, executors) = engine.into_parts();
        let shard_memory: Vec<usize> = executors.iter().map(ShardExecutor::memory_bytes).collect();
        let workers: Vec<ShardWorker> = executors
            .into_iter()
            .enumerate()
            .map(|(i, mut exec)| {
                let (job_tx, job_rx) = mpsc::channel::<Job>();
                let (done_tx, done_rx) = mpsc::channel::<Job>();
                let thread = std::thread::Builder::new()
                    .name(format!("simspatial-shard-{i}"))
                    .spawn(move || {
                        while let Ok(mut job) = job_rx.recv() {
                            match &mut job {
                                Job::Range(lane) => lane.run(&mut exec),
                                Job::Knn(lane) => lane.run(&mut exec),
                                Job::Update(lane) => lane.run(&mut exec),
                            }
                            if done_tx.send(job).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn shard worker thread");
                ShardWorker {
                    job_tx: Some(job_tx),
                    done_rx,
                    thread: Some(thread),
                }
            })
            .collect();
        let n = workers.len();
        Self {
            planner,
            workers,
            sizes,
            shard_memory,
            updatable,
            range_lanes: Vec::new(),
            knn_home: Vec::new(),
            knn_fan: Vec::new(),
            update_lanes: Vec::new(),
            sent: vec![false; n],
        }
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// Ships every non-empty range lane to its worker and waits for all of
    /// them to come back (empty lanes skip the round trip).
    fn run_range_lanes(&mut self) {
        for (i, worker) in self.workers.iter().enumerate() {
            self.sent[i] = !self.range_lanes[i].is_empty();
            if self.sent[i] {
                let lane = std::mem::take(&mut self.range_lanes[i]);
                worker.send(Job::Range(lane));
            }
        }
        for (i, worker) in self.workers.iter().enumerate() {
            if !self.sent[i] {
                continue;
            }
            match worker.done_rx.recv().expect("shard worker exited") {
                Job::Range(lane) => self.range_lanes[i] = lane,
                _ => unreachable!("one job in flight per worker"),
            }
        }
    }

    /// Ships every non-empty update lane to its worker, waits for all to
    /// come back, and refreshes the per-shard size/memory gauges from the
    /// lane reports.
    fn run_update_lanes(&mut self) {
        for (i, worker) in self.workers.iter().enumerate() {
            self.sent[i] = !self.update_lanes[i].is_empty();
            if self.sent[i] {
                let lane = std::mem::take(&mut self.update_lanes[i]);
                worker.send(Job::Update(lane));
            }
        }
        for (i, worker) in self.workers.iter().enumerate() {
            if !self.sent[i] {
                continue;
            }
            match worker.done_rx.recv().expect("shard worker exited") {
                Job::Update(lane) => {
                    self.sizes[i] = lane.report().len_after;
                    self.shard_memory[i] = lane.report().memory_bytes;
                    self.update_lanes[i] = lane;
                }
                _ => unreachable!("one job in flight per worker"),
            }
        }
    }

    /// Ships every non-empty kNN lane of `which` phase to its worker and
    /// waits for completion.
    fn run_knn_lanes(&mut self, fan_phase: bool) {
        let lanes = if fan_phase {
            &mut self.knn_fan
        } else {
            &mut self.knn_home
        };
        for (i, worker) in self.workers.iter().enumerate() {
            self.sent[i] = !lanes[i].is_empty();
            if self.sent[i] {
                let lane = std::mem::take(&mut lanes[i]);
                worker.send(Job::Knn(lane));
            }
        }
        for (i, worker) in self.workers.iter().enumerate() {
            if !self.sent[i] {
                continue;
            }
            match worker.done_rx.recv().expect("shard worker exited") {
                Job::Knn(lane) => lanes[i] = lane,
                _ => unreachable!("one job in flight per worker"),
            }
        }
    }
}

impl ServiceBackend for ShardedBackend {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> QueryStats {
        let start = Instant::now();
        self.planner.route_range(queries, &mut self.range_lanes);
        self.run_range_lanes();
        out.reset();
        let mut stats = self
            .planner
            .merge_range(queries.len(), &mut self.range_lanes, out);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        stats
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> QueryStats {
        let start = Instant::now();
        self.planner.route_knn_home(points, k, &mut self.knn_home);
        self.run_knn_lanes(false);
        self.planner
            .route_knn_fanout(points, k, &self.knn_home, &mut self.knn_fan);
        self.run_knn_lanes(true);
        out.reset();
        let mut stats =
            self.planner
                .merge_knn(points.len(), k, &mut self.knn_home, &mut self.knn_fan, out);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        stats
    }

    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateStats {
        // Fail on the calling thread with a clear message (the service
        // never routes writes here when read-only, but the trait is
        // public): without this, the panic would surface on a detached
        // worker thread after the planner already advanced its envelopes.
        assert!(
            self.updatable,
            "write batch on a read-only sharded backend — build the engine with_rebuild"
        );
        let start = Instant::now();
        let mut stats = self.planner.route_updates(updates, &mut self.update_lanes);
        self.run_update_lanes();
        stats.elapsed_s = start.elapsed().as_secs_f64();
        stats
    }

    fn supports_updates(&self) -> bool {
        self.updatable
    }

    fn memory_bytes(&self) -> usize {
        self.planner.memory_bytes()
            + self.shard_memory.iter().sum::<usize>()
            + self
                .range_lanes
                .iter()
                .map(RangeLane::memory_bytes)
                .sum::<usize>()
            + self
                .knn_home
                .iter()
                .chain(self.knn_fan.iter())
                .map(KnnLane::memory_bytes)
                .sum::<usize>()
            + self
                .update_lanes
                .iter()
                .map(UpdateLane::memory_bytes)
                .sum::<usize>()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.sizes.clone()
    }

    fn shutdown(&mut self) {
        for w in &mut self.workers {
            w.stop();
        }
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}
