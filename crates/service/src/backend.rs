//! Execution backends the scheduler dispatches coalesced batches to.
//!
//! The scheduler is backend-agnostic: anything that can run one range
//! batch and one per-`k` kNN batch fits. Two implementations ship:
//!
//! * [`EngineBackend`] — a single [`QueryEngine`] over one index. The
//!   dispatcher thread executes inline: one worker total, the degenerate
//!   (but often fastest single-core) deployment.
//! * [`ShardedBackend`] — a [`ShardedEngine`] split into its
//!   [`ShardPlanner`] and per-shard
//!   [`ShardExecutor`](simspatial_index::ShardExecutor)s, executed on a
//!   **work-stealing worker pool**. The dispatcher routes each batch into
//!   per-shard lanes and scatters them as stealable jobs: each pool worker
//!   owns a local deque (a shard's jobs land on its owner's queue) and
//!   steals the oldest job from a sibling when its own queue drains, so an
//!   uneven shard split no longer leaves workers idle. Results stay
//!   byte-identical to a serial [`ShardedEngine`] run: routing, execution
//!   plans and the deduplicating merges are the exact same code — only
//!   *where* each shard's sub-batch runs changes.
//!
//! The pool is sized `min(parallel::num_threads(), shard count)` at spawn,
//! so `SIMSPATIAL_THREADS=1` (or a single-core host) degrades to one
//! worker without cross-thread ping-pong, and a backend never spawns more
//! threads than it has shards to run.

use crate::fault::FaultKind;
use simspatial_geom::{parallel, Aabb, Element, ElementId, Point3, Shape};
use simspatial_index::{
    BatchResults, KnnBatchResults, KnnIndex, KnnLane, QueryEngine, QueryStats, RangeLane,
    ShardExecutor, ShardPlanner, ShardedEngine, SpatialIndex, UpdateLane, UpdateStats,
};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The report of one executed query batch: the usual execution accounting
/// plus the failure metadata the supervision layer needs to complete every
/// request honestly.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// The execution accounting (timings, result counts, predicate tests).
    pub stats: QueryStats,
    /// Queries/probes the backend could **not** answer correctly:
    /// `(index within the batch, shard held responsible)`. The scheduler
    /// completes the owning requests with
    /// [`RecvError::WorkerFailed`](crate::RecvError::WorkerFailed) instead
    /// of returning silently-wrong results — today this is kNN probes
    /// whose home or fan-out set includes a dead shard.
    pub failed: Vec<(u32, usize)>,
    /// Queries answered with **reduced coverage**:
    /// `(index within the batch, number of shards skipped)`. Range and
    /// count queries over dead shards degrade rather than fail: the result
    /// is correct over the surviving shards, and the skip count travels to
    /// the client as partial-coverage metadata.
    pub partial: Vec<(u32, u32)>,
}

impl From<QueryStats> for BatchReport {
    fn from(stats: QueryStats) -> Self {
        Self {
            stats,
            failed: Vec::new(),
            partial: Vec::new(),
        }
    }
}

/// The report of one applied write batch: accounting plus the shard (if
/// any) on which the write could not be (fully) applied.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateReport {
    /// The write accounting (applied/migrations/skipped, timing).
    pub stats: UpdateStats,
    /// `Some(shard)` when the write's durability is compromised: a shard
    /// died while applying it, or an injected fault dropped it before it
    /// reached the backend. The scheduler completes the affected write
    /// requests with
    /// [`RecvError::WorkerFailed`](crate::RecvError::WorkerFailed).
    pub failed: Option<usize>,
}

impl From<UpdateStats> for UpdateReport {
    fn from(stats: UpdateStats) -> Self {
        Self {
            stats,
            failed: None,
        }
    }
}

/// Cumulative failure counters a backend exposes to the service stats:
/// what the supervision layer caught, repaired, and gave up on — plus the
/// worker-pool utilisation gauges that make load imbalance observable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackendTelemetry {
    /// Panics caught on backend worker threads (shard-worker jobs).
    pub panics_caught: u64,
    /// Shard executors successfully rebuilt from the planner's retained
    /// element store after a panic.
    pub shard_restarts: u64,
    /// Shards declared dead: restart budget exhausted, or no rebuild path
    /// available. Dead shards are skipped by queries (range/count degrade
    /// to partial coverage; kNN fails typed) and never resurrect.
    pub shards_dead: u64,
    /// Pool jobs executed by a worker other than the owner of the queue
    /// they were scattered to — the work-stealing rebalance counter.
    pub worker_steals: u64,
    /// Per-pool-worker cumulative busy time (nanoseconds spent executing
    /// shard jobs). Empty for backends without a worker pool.
    pub worker_busy_ns: Vec<u64>,
}

/// Restart discipline for supervised shard workers: how many times a shard
/// may be rebuilt over its lifetime, and how the supervisor backs off
/// between attempts when rebuilding itself keeps failing.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Lifetime restart budget per shard; the panic that exceeds it (or
    /// any panic, when no rebuild path exists) declares the shard dead.
    pub max_restarts: u32,
    /// Backoff before the second restart attempt; doubles per subsequent
    /// attempt (the first attempt is immediate).
    pub backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
        }
    }
}

/// One coalesced **query run** of a dispatch: the maximal run of query
/// requests between two write barriers, flattened into the coalesced range
/// batch plus one kNN batch per distinct `k`. Built by the scheduler,
/// executed in one call through [`ServiceBackend::query_run`] — which is
/// what lets a backend run the independent sub-batches concurrently.
#[derive(Debug, Default)]
pub struct QueryRun {
    /// Every range/count box of the run, in admission order.
    pub range: Vec<Aabb>,
    /// Per-`k` probe groups, ascending by `k`, probes in admission order
    /// within each group.
    pub knn: Vec<(usize, Vec<Point3>)>,
}

impl QueryRun {
    /// True when the run carries no work at all.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty() && self.knn.is_empty()
    }
}

/// Result buffers for one [`QueryRun`]; the scheduler reuses one across
/// dispatches so the buffers recycle.
#[derive(Debug, Default)]
pub struct QueryRunResults {
    /// Results of the range sub-batch (one id list per box).
    pub range: BatchResults,
    /// One result set per kNN group, index-aligned with [`QueryRun::knn`]
    /// (surplus buffers from wider earlier runs are left in place).
    pub knn: Vec<KnnBatchResults>,
}

impl QueryRunResults {
    /// Grows the per-group kNN buffer list to at least `groups` entries.
    pub fn ensure_knn(&mut self, groups: usize) {
        while self.knn.len() < groups {
            self.knn.push(KnnBatchResults::new());
        }
    }
}

/// What happened to one sub-batch of an executed [`QueryRun`].
#[derive(Debug, Clone)]
pub enum SubBatchOutcome {
    /// The sub-batch executed and reported. (Its results may still be
    /// arity-mismatched under fault injection — the scheduler validates
    /// result counts before trusting them.)
    Ran(BatchReport),
    /// The backend call panicked; the panic was caught and the backend
    /// recovered, so later sub-batches still ran.
    Panicked,
    /// Not executed: an earlier sub-batch panicked and the backend could
    /// not vouch for its state ([`QueryRunReport::poisoned`] is set).
    Skipped,
}

/// The per-sub-batch outcomes of one [`ServiceBackend::query_run`] call.
#[derive(Debug, Clone, Default)]
pub struct QueryRunReport {
    /// Outcome of the range sub-batch; `None` when the run had no boxes.
    pub range: Option<SubBatchOutcome>,
    /// Outcome per kNN group, index-aligned with [`QueryRun::knn`].
    pub knn: Vec<SubBatchOutcome>,
    /// Panics caught inside the run (the scheduler folds these into its
    /// `panics_caught` accounting).
    pub panics: u64,
    /// Set when a panic occurred and [`ServiceBackend::recover`] returned
    /// `false`: the backend state is unknown and the scheduler must poison
    /// the service.
    pub poisoned: bool,
}

/// A batch execution target for the service scheduler.
///
/// Contract mirrors the engine layer: `range_batch` fills one id list per
/// query (in plan emission order), `knn_batch` one ascending
/// `(distance, id)` list per probe; both reset `out` first and return the
/// batch accounting. Writable backends additionally apply coalesced write
/// batches through [`ServiceBackend::update_batch`] and advertise it via
/// [`ServiceBackend::supports_updates`] — the service rejects write
/// requests at admission ([`SubmitError::ReadOnly`](crate::SubmitError))
/// when the backend does not.
pub trait ServiceBackend: Send + 'static {
    /// Executes one coalesced range batch. The returned
    /// [`BatchReport::partial`] entries flag queries answered with reduced
    /// shard coverage; [`BatchReport::failed`] flags queries that must
    /// complete with a typed error.
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport;

    /// Executes one coalesced kNN batch at a single `k` (same report
    /// contract as [`ServiceBackend::range_batch`]).
    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport;

    /// Executes one whole [`QueryRun`] — the independent sub-batches
    /// (range + one kNN batch per `k`) between two write barriers.
    ///
    /// The default runs them **sequentially** in the canonical order
    /// (range first, then kNN groups ascending by `k`), each under
    /// `catch_unwind` with the same panic/recover discipline the scheduler
    /// used to apply per call — so existing backends (and the chaos
    /// wrapper, whose fault schedule is keyed by backend-call index in
    /// exactly this order) behave identically. [`ShardedBackend`]
    /// overrides it to scatter **all** sub-batches' shard lanes onto its
    /// worker pool at once, overlapping independent sub-batches across
    /// cores while keeping results byte-identical to the sequential order
    /// (the per-sub-batch merges are deterministic and unordered between
    /// independent sub-batches).
    fn query_run(&mut self, run: &QueryRun, out: &mut QueryRunResults) -> QueryRunReport {
        out.ensure_knn(run.knn.len());
        let mut report = QueryRunReport::default();
        let mut aborted = false;
        if !run.range.is_empty() {
            let call = catch_unwind(AssertUnwindSafe(|| {
                self.range_batch(&run.range, &mut out.range)
            }));
            report.range = Some(match call {
                Ok(r) => SubBatchOutcome::Ran(r),
                Err(_) => {
                    report.panics += 1;
                    if !self.recover(false) {
                        report.poisoned = true;
                        aborted = true;
                    }
                    SubBatchOutcome::Panicked
                }
            });
        }
        for (g, (k, points)) in run.knn.iter().enumerate() {
            if aborted {
                report.knn.push(SubBatchOutcome::Skipped);
                continue;
            }
            let out_g = &mut out.knn[g];
            let call = catch_unwind(AssertUnwindSafe(|| self.knn_batch(points, *k, out_g)));
            report.knn.push(match call {
                Ok(r) => SubBatchOutcome::Ran(r),
                Err(_) => {
                    report.panics += 1;
                    if !self.recover(false) {
                        report.poisoned = true;
                        aborted = true;
                    }
                    SubBatchOutcome::Panicked
                }
            });
        }
        report
    }

    /// Applies one coalesced write batch: each `(id, shape)` entry replaces
    /// that element's geometry (duplicate ids resolve last-write-wins).
    /// Called by the scheduler between query runs so the write-barrier
    /// ordering holds. The default (read-only backend) applies nothing and
    /// reports every entry skipped — unreachable through the service,
    /// which rejects writes at admission when
    /// [`ServiceBackend::supports_updates`] is false.
    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateReport {
        UpdateStats {
            skipped: updates.len() as u64,
            ..UpdateStats::default()
        }
        .into()
    }

    /// True when [`ServiceBackend::update_batch`] actually applies updates.
    fn supports_updates(&self) -> bool {
        false
    }

    /// Inserts new elements, allocating fresh element ids (id allocation
    /// is the backend's job — for the sharded backend, the planner's).
    /// Returns the allocated ids in input order. The default (no
    /// membership support) allocates nothing and reports every entry
    /// skipped — unreachable through the service, which rejects
    /// [`Request::Insert`](crate::Request::Insert) at admission when
    /// [`ServiceBackend::supports_membership`] is false.
    fn insert_batch(&mut self, shapes: &[Shape]) -> (Vec<ElementId>, UpdateReport) {
        (
            Vec::new(),
            UpdateStats {
                skipped: shapes.len() as u64,
                ..UpdateStats::default()
            }
            .into(),
        )
    }

    /// Removes elements by id (tombstoned: the ids never come back, and
    /// later updates to them are skipped). Same default/admission contract
    /// as [`ServiceBackend::insert_batch`].
    fn remove_batch(&mut self, ids: &[ElementId]) -> UpdateReport {
        UpdateStats {
            skipped: ids.len() as u64,
            ..UpdateStats::default()
        }
        .into()
    }

    /// True when [`ServiceBackend::insert_batch`] /
    /// [`ServiceBackend::remove_batch`] actually change dataset
    /// membership.
    fn supports_membership(&self) -> bool {
        false
    }

    /// Called by the scheduler after a panic unwound out of a backend call
    /// on the dispatcher thread. Returns `true` when the backend restored
    /// (or never lost) a consistent state and can keep serving; `false`
    /// poisons the service — every subsequent request completes with
    /// [`RecvError::WorkerFailed`](crate::RecvError::WorkerFailed) instead
    /// of touching a possibly-corrupt backend.
    ///
    /// The default is honest for a generic backend: a query panic is
    /// recoverable (queries must not mutate durable state), a write panic
    /// is not (the batch may be half-applied with no way to verify).
    fn recover(&mut self, after_write: bool) -> bool {
        !after_write
    }

    /// Cumulative supervision counters (panics caught on worker threads,
    /// shard restarts, shards dead). Pulled into
    /// [`ServiceStats`](crate::ServiceStats) after every dispatch.
    fn telemetry(&self) -> BackendTelemetry {
        BackendTelemetry::default()
    }

    /// Installs deterministic worker-level faults (`(shard, job sequence,
    /// kind)` triples) into the backend's worker threads — the test-only
    /// hook [`ChaosBackend`](crate::ChaosBackend) uses to schedule shard
    /// crashes and stalls. Backends without worker threads ignore it.
    fn install_worker_faults(&mut self, _faults: &[(usize, u64, FaultKind)]) {}

    /// True when the backend serves **published snapshot reads**: the
    /// scheduler then hoists [`Consistency::Snapshot`](crate::Consistency)
    /// reads ahead of a dispatch's write barriers (executing them through
    /// [`ServiceBackend::snapshot_query_run`]) and calls
    /// [`ServiceBackend::publish`] after every applied write.
    fn supports_snapshots(&self) -> bool {
        false
    }

    /// Publishes the backend's current state as the read snapshot for
    /// `epoch`. The scheduler calls this once at startup (epoch 0) and
    /// immediately after **every** applied write barrier, strictly between
    /// backend calls (no queries or writes in flight) — which is the
    /// invariant everything else leans on: between two publishes, live
    /// state is byte-identical to the last published epoch. Must be
    /// idempotent per epoch: the scheduler retries after a caught panic,
    /// and a retried publish must not publish the epoch twice. The default
    /// does nothing — a backend without snapshot copies already satisfies
    /// the contract, because its current state *is* the published state.
    fn publish(&mut self, _epoch: u64) {}

    /// Executes one query run against the **last published snapshot**
    /// instead of live state. The default forwards to
    /// [`ServiceBackend::query_run`]: for a backend without snapshot
    /// copies, current state equals the last published epoch whenever a
    /// snapshot run executes (see [`ServiceBackend::publish`]), so the
    /// live path already answers at the published epoch.
    fn snapshot_query_run(&mut self, run: &QueryRun, out: &mut QueryRunResults) -> QueryRunReport {
        self.query_run(run, out)
    }

    /// Bytes currently held by published snapshot copies (0 for backends
    /// that share state instead of copying). Surfaced through
    /// [`ServiceStats`](crate::ServiceStats) and guarded by the
    /// epoch-reclamation property test: replaced copies are freed, so an
    /// idle service holds at most one published snapshot per shard.
    fn snapshot_clone_bytes(&self) -> u64 {
        0
    }

    /// Structure bytes the backend holds (surfaced through `ServiceStats`;
    /// refreshed after every update application, so post-migration shrink
    /// is visible).
    fn memory_bytes(&self) -> usize;

    /// Elements per shard (one entry for unsharded backends); refreshed
    /// after every update application.
    fn shard_sizes(&self) -> Vec<usize>;

    /// Stops any worker threads. Called once by the scheduler on orderly
    /// shutdown; must be idempotent.
    fn shutdown(&mut self) {}
}

/// A pluggable write path for [`EngineBackend`]: applies a coalesced
/// update batch to the element data and brings the index in sync.
///
/// Two families of implementations ship:
///
/// * [`RebuildUpdater`] (this crate) — mutates the data and rebuilds the
///   index from scratch with a stored build function; works for **any**
///   index type, and the paper's own measurements show full rebuilds are
///   competitive under massive movement.
/// * `simspatial_moving::StrategyWrites` — adapts any
///   `UpdateStrategy` (grid migration, bottom-up R-Tree updates, buffered
///   updates, …) so a simulation's maintenance strategy serves the
///   service's write path directly.
pub trait IndexUpdater<I>: Send + 'static {
    /// Applies `updates` (last-write-wins per id) to `data` and brings
    /// `index` in sync. `data` follows the dataset convention
    /// (`element.id == position`); entries with out-of-range ids must be
    /// skipped and counted.
    fn apply(
        &mut self,
        index: &mut I,
        data: &mut [Element],
        updates: &[(ElementId, Shape)],
    ) -> UpdateStats;

    /// Restores index–data consistency after a panic unwound out of
    /// [`IndexUpdater::apply`], returning `true` on success. Recovery is
    /// about **consistency, not atomicity**: the interrupted batch may be
    /// partially applied to `data` (each element holds either its old or
    /// its new geometry — the affected write requests complete with a
    /// typed error either way); a successful recovery guarantees the index
    /// agrees with whatever `data` now holds, so subsequent queries are
    /// correct over it.
    ///
    /// The default returns `false` — an updater that cannot re-derive its
    /// index from the data cannot make that guarantee, and the service
    /// poisons itself rather than serve from a possibly-inconsistent
    /// index.
    fn recover(&mut self, _index: &mut I, _data: &mut [Element]) -> bool {
        false
    }
}

/// The stored index build function of a [`RebuildUpdater`].
pub type BuildFn<I> = Box<dyn Fn(&[Element]) -> I + Send>;

/// The rebuild-from-scratch [`IndexUpdater`]: applies the geometry changes
/// to the element data, then rebuilds the index over the updated slice with
/// the stored build function. Correct for every index type.
pub struct RebuildUpdater<I> {
    build: BuildFn<I>,
}

impl<I> RebuildUpdater<I> {
    /// An updater that rebuilds with `build` after every write batch.
    pub fn new(build: impl Fn(&[Element]) -> I + Send + 'static) -> Self {
        Self {
            build: Box::new(build),
        }
    }
}

impl<I: Send + 'static> IndexUpdater<I> for RebuildUpdater<I> {
    fn apply(
        &mut self,
        index: &mut I,
        data: &mut [Element],
        updates: &[(ElementId, Shape)],
    ) -> UpdateStats {
        let start = Instant::now();
        let mut stats = UpdateStats::default();
        // Last-write-wins: reverse iteration, first sighting of an id wins.
        let mut seen = vec![false; data.len()];
        for &(id, shape) in updates.iter().rev() {
            match data.get_mut(id as usize) {
                Some(e) if !seen[id as usize] => {
                    seen[id as usize] = true;
                    e.shape = shape;
                    stats.applied += 1;
                }
                _ => stats.skipped += 1,
            }
        }
        // Every element is (re)placed by the rebuild.
        stats.migrations = stats.applied;
        stats.shipped = updates.len() as u64;
        stats.structural = data.len() as u64;
        stats.rebuilds = 1;
        *index = (self.build)(data);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        stats
    }

    /// A rebuild updater always recovers: rebuilding from the current data
    /// restores index–data consistency by construction.
    fn recover(&mut self, index: &mut I, data: &mut [Element]) -> bool {
        *index = (self.build)(data);
        true
    }
}

/// A single-engine backend: one index, one [`QueryEngine`], executed inline
/// on the dispatcher thread (the "single worker" deployment). Read-only by
/// default; attach an [`IndexUpdater`] ([`EngineBackend::with_updater`] or
/// [`EngineBackend::build_writable`]) to serve the write path too.
pub struct EngineBackend<I> {
    data: Vec<Element>,
    index: I,
    engine: QueryEngine,
    updater: Option<Box<dyn IndexUpdater<I>>>,
}

impl<I: SpatialIndex + KnnIndex + Send + 'static> EngineBackend<I> {
    /// A read-only backend over `data` served by a pre-built `index`.
    pub fn new(data: Vec<Element>, index: I) -> Self {
        Self {
            data,
            index,
            engine: QueryEngine::new(),
            updater: None,
        }
    }

    /// Builds the index from `data` with `build`, then wraps both
    /// (read-only).
    pub fn build(data: Vec<Element>, build: impl FnOnce(&[Element]) -> I) -> Self {
        let index = build(&data);
        Self::new(data, index)
    }

    /// A writable backend: queries as usual, write batches applied through
    /// `updater` (e.g. a `simspatial_moving` strategy adapter).
    pub fn with_updater(data: Vec<Element>, index: I, updater: impl IndexUpdater<I>) -> Self {
        let mut backend = Self::new(data, index);
        backend.updater = Some(Box::new(updater));
        backend
    }

    /// A writable backend whose write path rebuilds the index with `build`
    /// after every update application ([`RebuildUpdater`]).
    pub fn build_writable(
        data: Vec<Element>,
        build: impl Fn(&[Element]) -> I + Send + 'static,
    ) -> Self {
        let index = build(&data);
        Self::with_updater(data, index, RebuildUpdater::new(build))
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }
}

impl<I: SpatialIndex + KnnIndex + Send + 'static> ServiceBackend for EngineBackend<I> {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport {
        self.engine
            .range_collect(&self.index, &self.data, queries, out)
            .into()
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport {
        self.engine
            .knn_collect(&self.index, &self.data, points, k, out)
            .into()
    }

    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateReport {
        match self.updater.as_mut() {
            Some(updater) => updater.apply(&mut self.index, &mut self.data, updates),
            None => UpdateStats {
                skipped: updates.len() as u64,
                ..UpdateStats::default()
            },
        }
        .into()
    }

    fn supports_updates(&self) -> bool {
        self.updater.is_some()
    }

    /// Snapshot reads are free on a single inline engine: the scheduler
    /// publishes after every write application and runs everything on one
    /// thread, so current state always equals the last published epoch —
    /// the default `publish`/`snapshot_query_run` (share, don't copy) are
    /// exact, and hoisted snapshot reads still skip ahead of the write
    /// barriers queued behind them.
    fn supports_snapshots(&self) -> bool {
        true
    }

    fn recover(&mut self, after_write: bool) -> bool {
        if !after_write {
            // Queries only touch per-call engine scratch, which the next
            // call resets.
            return true;
        }
        match self.updater.as_mut() {
            Some(updater) => updater.recover(&mut self.index, &mut self.data),
            // No write path, so nothing could have been mid-mutation.
            None => true,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.engine.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        vec![self.data.len()]
    }
}

/// A routed lane travelling to a shard worker (to execute) and back (with
/// results filled) — the same type in both directions, so lane allocations
/// recycle across dispatches without re-wrapping.
enum Job {
    Range(RangeLane),
    Knn(KnnLane),
    Update(UpdateLane),
}

/// What a pool worker sends back per job: which shard it ran on, the tag
/// the scatter phase attached (e.g. the kNN group index, so the gather can
/// route the lane home), the lane (results filled on success, torn on
/// panic — the gather never uses a panicked lane's contents) and whether
/// the job panicked. A worker always reports, even for a job it failed —
/// that is the no-hang guarantee: the gather's `recv` is matched by
/// exactly one `WorkerDone` per job scattered.
struct WorkerDone {
    shard: usize,
    tag: usize,
    job: Job,
    panicked: bool,
}

/// A job travelling through the worker pool: the shard whose executor must
/// run it, the scatter phase's routing tag, the lane itself, and which
/// slot set it runs against (`snap` = the shard's published snapshot
/// executor instead of its live one).
struct PoolJob {
    shard: usize,
    tag: usize,
    job: Job,
    snap: bool,
}

/// A shard's scheduled worker-level faults, shared between the backend
/// (installation) and the pool workers (lookup). Survives shard restarts,
/// as does the job sequence counter, so a fault schedule spans executor
/// incarnations deterministically.
type WorkerFaults = Arc<Mutex<Vec<(u64, FaultKind)>>>;

/// The type-erased per-shard execution core a pool worker calls: owns the
/// shard's [`ShardExecutor`] and runs any lane variant against it. The
/// `fork` hook is what snapshot publication is built on — it freezes a
/// copy of the executor without the backend knowing the index type.
trait RunnerCore: Send {
    /// Runs one routed lane against the owned executor.
    fn run(&mut self, job: &mut Job);
    /// A frozen copy of the owned executor for snapshot serving, or `None`
    /// when the index type is not `Clone` (backend spawned without
    /// snapshot support).
    fn fork(&self) -> Option<ShardRunner>;
    /// Bytes held by the owned executor (snapshot-clone accounting).
    fn memory_bytes(&self) -> usize;
}

/// A boxed [`RunnerCore`] — what executor slots hold.
type ShardRunner = Box<dyn RunnerCore>;

/// The plain runner: executes lanes, cannot fork (no `Clone` bound).
struct ExecRunner<I>(ShardExecutor<I>);

impl<I: SpatialIndex + KnnIndex + Send + 'static> RunnerCore for ExecRunner<I> {
    fn run(&mut self, job: &mut Job) {
        match job {
            Job::Range(lane) => lane.run(&mut self.0),
            Job::Knn(lane) => lane.run(&mut self.0),
            Job::Update(lane) => lane.run(&mut self.0),
        }
    }

    fn fork(&self) -> Option<ShardRunner> {
        None
    }

    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// The snapshot-capable runner: identical execution, plus
/// [`ShardExecutor::fork`] at publish time.
struct ForkableRunner<I>(ShardExecutor<I>);

impl<I: SpatialIndex + KnnIndex + Clone + Send + 'static> RunnerCore for ForkableRunner<I> {
    fn run(&mut self, job: &mut Job) {
        match job {
            Job::Range(lane) => lane.run(&mut self.0),
            Job::Knn(lane) => lane.run(&mut self.0),
            Job::Update(lane) => lane.run(&mut self.0),
        }
    }

    fn fork(&self) -> Option<ShardRunner> {
        Some(Box::new(ForkableRunner(self.0.fork())))
    }

    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// The per-shard executor slots, shared between the backend (supervision:
/// rebuild, declare dead) and the pool workers (execution). `None` marks a
/// torn executor — a job panicked inside it and only a supervisor rebuild
/// from the planner's retained element store may bring the shard back.
/// The slot mutex also serialises same-shard jobs when a scatter put more
/// than one in flight (independent sub-batches of one query run).
type RunnerSlots = Arc<Vec<Mutex<Option<ShardRunner>>>>;

fn lock_slot(slot: &Mutex<Option<ShardRunner>>) -> std::sync::MutexGuard<'_, Option<ShardRunner>> {
    // A panic can never unwind while the guard is held (job panics are
    // caught inside), but stay robust against poisoning anyway.
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wraps one shard executor into its type-erased pool runner.
fn make_runner<I: SpatialIndex + KnnIndex + Send + 'static>(exec: ShardExecutor<I>) -> ShardRunner {
    Box::new(ExecRunner(exec))
}

/// Wraps one shard executor into a snapshot-capable pool runner.
fn make_forkable_runner<I: SpatialIndex + KnnIndex + Clone + Send + 'static>(
    exec: ShardExecutor<I>,
) -> ShardRunner {
    Box::new(ForkableRunner(exec))
}

/// The deque state of the worker pool, under one mutex: cheap to lock
/// (queue operations only — jobs execute outside it) and simple to reason
/// about, which is what the byte-identical guarantee rides on.
struct PoolState {
    /// One local deque per pool worker. A shard's jobs are scattered onto
    /// queue `shard % workers`; the owner pops its **front**, thieves pop
    /// other queues' **backs** — stolen work is the oldest queued, which
    /// keeps a queue's jobs flowing roughly in scatter order.
    queues: Vec<VecDeque<PoolJob>>,
    shutdown: bool,
}

/// Everything the pool workers share with the backend.
struct PoolShared {
    state: Mutex<PoolState>,
    work_available: Condvar,
    /// Jobs executed by a worker other than their queue's owner.
    steals: AtomicU64,
    /// Per-worker cumulative busy nanoseconds (time executing jobs).
    busy_ns: Vec<AtomicU64>,
}

impl PoolShared {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The work-stealing worker pool of a [`ShardedBackend`]: `min(threads,
/// shards)` persistent workers executing shard jobs from per-worker local
/// deques, with idle workers stealing across queues.
struct WorkerPool {
    shared: Arc<PoolShared>,
    done_rx: mpsc::Receiver<WorkerDone>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns the pool: `min(parallel::num_threads(), shards)` workers
    /// (at least one), each holding clones of the executor slots, fault
    /// schedules and sequence counters.
    fn spawn(
        shards: usize,
        slots: &RunnerSlots,
        snap_slots: &RunnerSlots,
        fault_lists: &[WorkerFaults],
        seqs: &[Arc<AtomicU64>],
    ) -> Self {
        let workers = parallel::num_threads().min(shards.max(1)).max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
            steals: AtomicU64::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        });
        let (done_tx, done_rx) = mpsc::channel::<WorkerDone>();
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let slots = Arc::clone(slots);
                let snap_slots = Arc::clone(snap_slots);
                let faults: Vec<WorkerFaults> = fault_lists.iter().map(Arc::clone).collect();
                let seqs: Vec<Arc<AtomicU64>> = seqs.iter().map(Arc::clone).collect();
                let done_tx = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("simspatial-pool-{w}"))
                    .spawn(move || {
                        pool_worker_loop(w, &shared, &slots, &snap_slots, &faults, &seqs, &done_tx)
                    })
                    .expect("spawn pool worker thread")
            })
            .collect();
        Self {
            shared,
            done_rx,
            threads,
        }
    }

    /// Number of pool workers.
    fn workers(&self) -> usize {
        self.threads.len().max(1)
    }

    /// Enqueues one job onto its shard's owner queue and wakes a worker.
    /// `snap` routes it to the shard's published snapshot executor.
    fn submit(&self, shard: usize, tag: usize, job: Job, snap: bool) {
        let mut state = self.shared.lock_state();
        assert!(!state.shutdown, "backend already shut down");
        let owner = shard % state.queues.len();
        state.queues[owner].push_back(PoolJob {
            shard,
            tag,
            job,
            snap,
        });
        drop(state);
        self.shared.work_available.notify_one();
    }

    /// Receives one completion. Every scattered job produces exactly one
    /// (panicked jobs included), so a gather of `in_flight` `recv_done`
    /// calls never hangs.
    fn recv_done(&self) -> WorkerDone {
        self.done_rx
            .recv()
            .expect("pool workers outlive in-flight jobs")
    }

    /// Stops and joins every worker. Idempotent.
    fn stop(&mut self) {
        self.shared.lock_state().shutdown = true;
        self.shared.work_available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// One pool worker: pop the front of the own queue, steal the back of a
/// sibling's otherwise, sleep on the condvar when everything is empty.
///
/// Every job runs under `catch_unwind` (over an `AssertUnwindSafe` closure
/// — the executor never crosses the boundary again after a panic): a
/// panicking job clears the shard's executor slot (the executor may be
/// torn mid-update, so the only safe continuation is a supervisor rebuild)
/// and still produces a `WorkerDone { panicked: true }` report. Fault
/// lookup and the per-shard job sequence counter live here — outside the
/// executor slot's runner — so a schedule keyed by sequence number spans
/// executor incarnations deterministically.
fn pool_worker_loop(
    worker: usize,
    shared: &PoolShared,
    slots: &RunnerSlots,
    snap_slots: &RunnerSlots,
    faults: &[WorkerFaults],
    seqs: &[Arc<AtomicU64>],
    done_tx: &mpsc::Sender<WorkerDone>,
) {
    loop {
        let (pool_job, stolen) = {
            let mut state = shared.lock_state();
            loop {
                if let Some(job) = state.queues[worker].pop_front() {
                    break (job, false);
                }
                let n = state.queues.len();
                let victim = (1..n)
                    .map(|d| (worker + d) % n)
                    .find(|&v| !state.queues[v].is_empty());
                if let Some(v) = victim {
                    let job = state.queues[v].pop_back().expect("victim queue non-empty");
                    break (job, true);
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_available
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
        }
        let PoolJob {
            shard,
            tag,
            mut job,
            snap,
        } = pool_job;
        let started = Instant::now();
        // Snapshot jobs draw from the same per-shard sequence as live jobs,
        // so one schedule covers both paths deterministically (runs that
        // never submit snapshot jobs consume exactly the pre-snapshot
        // sequence, keeping existing fault plans stable).
        let seq = seqs[shard].fetch_add(1, Ordering::Relaxed);
        let fault = faults[shard]
            .lock()
            .ok()
            .and_then(|f| f.iter().find(|&&(at, _)| at == seq).map(|&(_, k)| k));
        let slot_set = if snap { snap_slots } else { slots };
        let mut slot = lock_slot(&slot_set[shard]);
        let panicked = match slot.as_mut() {
            // Torn since the scatter (an earlier in-flight job panicked):
            // report as panicked without running — the supervisor decides.
            None => true,
            Some(runner) => catch_unwind(AssertUnwindSafe(|| {
                match fault {
                    Some(FaultKind::Panic) => {
                        panic!("chaos: injected fault on shard {shard}, job {seq}")
                    }
                    Some(FaultKind::Delay(d)) => std::thread::sleep(d),
                    _ => {}
                }
                runner.run(&mut job)
            }))
            .is_err(),
        };
        if panicked {
            *slot = None;
        }
        drop(slot);
        shared.busy_ns[worker].fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if done_tx
            .send(WorkerDone {
                shard,
                tag,
                job,
                panicked,
            })
            .is_err()
        {
            return; // the backend is gone; nothing left to report to
        }
    }
}

/// The type-erased shard-restart recipe a [`ShardedBackend`] stores at
/// spawn: rebuilds shard `i`'s executor from the planner's element store
/// and wraps it into a fresh pool runner, returning the runner plus the
/// rebuilt shard's `(len, memory_bytes)` gauges. `Err` when the rebuild
/// itself panicked (the supervisor backs off and retries).
type RespawnFn =
    Box<dyn Fn(&ShardPlanner, usize) -> Result<(ShardRunner, usize, usize), ()> + Send>;

/// A region-sharded backend executing on a **work-stealing worker pool**.
/// Built by splitting a [`ShardedEngine`] into planner + executors
/// ([`ShardedEngine::into_parts`]) and parking each executor in a shared
/// slot the pool workers run jobs against; the scheduler-side half routes,
/// scatters lanes as stealable jobs, gathers, and merges.
///
/// Results are byte-identical to running the same `ShardedEngine`
/// serially: routing, execution plans and the deduplicating merge are the
/// exact same code — only *where* each shard's sub-batch runs changes.
pub struct ShardedBackend {
    planner: ShardPlanner,
    pool: WorkerPool,
    /// Per-shard executor slots, shared with the pool workers. `None`
    /// marks a torn executor between a panic and the supervisor's verdict
    /// (rebuilt or dead); outside `handle_panics` every live shard is
    /// `Some` and every dead shard is `None`.
    slots: RunnerSlots,
    sizes: Vec<usize>,
    /// Per-shard structure bytes, captured at spawn and refreshed from the
    /// [`UpdateLane`] reports after every write batch — so post-migration
    /// shrink is reflected even though the executors live on their worker
    /// threads.
    shard_memory: Vec<usize>,
    /// Whether every executor had a rebuild function attached
    /// (`ShardedEngine::with_rebuild`) — the write path needs it.
    updatable: bool,
    policy: SupervisorPolicy,
    /// Remaining lifetime restart budget per shard.
    restarts_left: Vec<u32>,
    /// Shards whose restart budget is exhausted (or that panicked with no
    /// rebuild path). Dead shards never resurrect.
    dead: Vec<bool>,
    telemetry: BackendTelemetry,
    /// Rebuilds a shard's executor from the planner's element store and
    /// wraps it into a fresh pool runner. `None` when the engine was built
    /// without a rebuild function — then any panic kills its shard.
    factory: Option<RespawnFn>,
    /// Per-shard fault schedules, shared with the pool workers (the
    /// matching per-shard job sequence counters live in the workers'
    /// cloned `Arc`s and survive executor rebuilds).
    fault_lists: Vec<WorkerFaults>,
    /// Per-shard **published snapshot** executor slots, shared with the
    /// pool workers (snapshot jobs run against these). `None` for shards
    /// with no published snapshot (pre-first-publish, dead, or torn by a
    /// panicked snapshot job awaiting repair). Replacing a slot drops the
    /// previous copy — at most one published snapshot per shard, ever.
    snap_slots: RunnerSlots,
    /// Shards whose live state changed since the last publish (write
    /// lanes routed to them, or restarts mid-write); only these are forked
    /// at the next [`ServiceBackend::publish`].
    snap_dirty: Vec<bool>,
    /// Per-shard snapshot copy bytes (the clone-bytes gauge input).
    snap_bytes: Vec<usize>,
    /// Whether executors can fork snapshot copies
    /// ([`ShardedBackend::spawn_snapshot`]).
    snapshots: bool,
    range_lanes: Vec<RangeLane>,
    knn_home: Vec<KnnLane>,
    knn_fan: Vec<KnnLane>,
    /// Per-kNN-group lane scratch for [`ServiceBackend::query_run`]'s
    /// combined scatter (indexed `[group][shard]`).
    knn_home_groups: Vec<Vec<KnnLane>>,
    knn_fan_groups: Vec<Vec<KnnLane>>,
    update_lanes: Vec<UpdateLane>,
}

impl ShardedBackend {
    /// Splits `engine` into planner + executors and spawns the
    /// work-stealing worker pool over them, supervised under
    /// [`SupervisorPolicy::default`]. The backend is writable iff the
    /// engine was built with a rebuild function
    /// ([`ShardedEngine::with_rebuild`]).
    pub fn spawn<I: SpatialIndex + KnnIndex + Send + 'static>(engine: ShardedEngine<I>) -> Self {
        Self::spawn_with(engine, SupervisorPolicy::default())
    }

    /// [`ShardedBackend::spawn`] with an explicit restart discipline.
    pub fn spawn_with<I: SpatialIndex + KnnIndex + Send + 'static>(
        engine: ShardedEngine<I>,
        policy: SupervisorPolicy,
    ) -> Self {
        Self::spawn_inner(engine, policy, make_runner::<I>, false)
    }

    /// [`ShardedBackend::spawn`] with **published snapshot reads**
    /// enabled: requires a `Clone` index type so each shard executor can
    /// fork a frozen copy at publish time ([`ShardExecutor::fork`] —
    /// copy-on-publish of the dirtied shards only). The scheduler detects
    /// the capability through [`ServiceBackend::supports_snapshots`] and
    /// serves [`Consistency::Snapshot`](crate::Consistency) reads from the
    /// copies while live executors apply later write barriers.
    pub fn spawn_snapshot<I: SpatialIndex + KnnIndex + Clone + Send + 'static>(
        engine: ShardedEngine<I>,
    ) -> Self {
        Self::spawn_snapshot_with(engine, SupervisorPolicy::default())
    }

    /// [`ShardedBackend::spawn_snapshot`] with an explicit restart
    /// discipline.
    pub fn spawn_snapshot_with<I: SpatialIndex + KnnIndex + Clone + Send + 'static>(
        engine: ShardedEngine<I>,
        policy: SupervisorPolicy,
    ) -> Self {
        Self::spawn_inner(engine, policy, make_forkable_runner::<I>, true)
    }

    fn spawn_inner<I: SpatialIndex + KnnIndex + Send + 'static>(
        engine: ShardedEngine<I>,
        policy: SupervisorPolicy,
        wrap: fn(ShardExecutor<I>) -> ShardRunner,
        snapshots: bool,
    ) -> Self {
        let sizes = engine.shard_sizes();
        let updatable = engine.is_updatable();
        let (planner, executors) = engine.into_parts();
        let shard_memory: Vec<usize> = executors.iter().map(ShardExecutor::memory_bytes).collect();
        // Every executor of one engine shares the same rebuild function, so
        // the first one's copy serves as the restart recipe for all shards.
        // Likewise the incremental apply function: the supervisor restores
        // it after a planner-store rebuild, so a restarted shard comes back
        // in the same write mode it crashed in.
        let rebuild = executors.first().and_then(ShardExecutor::rebuild_fn);
        let apply = executors.first().and_then(ShardExecutor::apply_fn);
        let n = executors.len();
        let fault_lists: Vec<WorkerFaults> =
            (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
        let seqs: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let slots: RunnerSlots = Arc::new(
            executors
                .into_iter()
                .map(|exec| Mutex::new(Some(wrap(exec))))
                .collect(),
        );
        // Snapshot slots start empty; the scheduler's startup publish
        // (epoch 0) forks the initial copies when snapshots are enabled.
        let snap_slots: RunnerSlots = Arc::new((0..n).map(|_| Mutex::new(None)).collect());
        let pool = WorkerPool::spawn(n, &slots, &snap_slots, &fault_lists, &seqs);
        let factory: Option<RespawnFn> = rebuild.map(|rb| {
            Box::new(move |planner: &ShardPlanner, shard: usize| {
                let rb = rb.clone();
                let ap = apply.clone();
                // The rebuild closure is user code: a panic inside it
                // must not take down the supervisor.
                catch_unwind(AssertUnwindSafe(move || {
                    // Restart rebuilds from the planner store (writes
                    // already folded in), then restores the incremental
                    // write mode for subsequent lanes.
                    let mut exec = ShardExecutor::from_planner(planner, shard, rb);
                    exec.set_apply(ap);
                    let len = exec.len();
                    let mem = exec.memory_bytes();
                    (wrap(exec), len, mem)
                }))
                .map_err(|_| ())
            }) as RespawnFn
        });
        Self {
            planner,
            pool,
            slots,
            sizes,
            shard_memory,
            updatable,
            restarts_left: vec![policy.max_restarts; n],
            policy,
            dead: vec![false; n],
            telemetry: BackendTelemetry::default(),
            factory,
            fault_lists,
            snap_slots,
            snap_dirty: vec![true; n],
            snap_bytes: vec![0; n],
            snapshots,
            range_lanes: Vec::new(),
            knn_home: Vec::new(),
            knn_fan: Vec::new(),
            knn_home_groups: Vec::new(),
            knn_fan_groups: Vec::new(),
            update_lanes: Vec::new(),
        }
    }

    /// Number of shards (live, quarantined, or dead).
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of pool worker threads executing shard jobs.
    pub fn pool_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Indices of shards declared dead by the supervisor.
    pub fn dead_shards(&self) -> Vec<usize> {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i)
            .collect()
    }

    /// Quarantine → restart → dead transition for every shard in
    /// `panicked`: attempts a rebuild from the planner's element store
    /// under the restart budget, with exponential backoff between
    /// consecutive failing attempts. A shard that cannot be restarted
    /// (budget exhausted, rebuild itself panicking, or no rebuild path at
    /// all) is declared dead. Runs strictly after a gather completed, so
    /// no job of these shards is in flight while the slot is rebuilt.
    fn handle_panics(&mut self, panicked: &[usize]) {
        // A combined scatter can have several jobs of one shard in flight;
        // all of them report panicked once the slot tears. One supervision
        // verdict per shard.
        let mut list = panicked.to_vec();
        list.sort_unstable();
        list.dedup();
        for i in list {
            if self.dead[i] {
                continue;
            }
            self.telemetry.panics_caught += 1;
            // The panicking worker already cleared the slot; clear it
            // anyway to cover every report path.
            *lock_slot(&self.slots[i]) = None;
            let mut restarted = false;
            let mut attempt = 0u32;
            while self.restarts_left[i] > 0 {
                self.restarts_left[i] -= 1;
                if attempt > 0 {
                    let shift = (attempt - 1).min(10);
                    let backoff =
                        (self.policy.backoff * (1u32 << shift)).min(self.policy.max_backoff);
                    std::thread::sleep(backoff);
                }
                attempt += 1;
                if !self.planner.has_element_store() {
                    break;
                }
                let Some(factory) = self.factory.as_ref() else {
                    break;
                };
                match factory(&self.planner, i) {
                    Ok((runner, len, mem)) => {
                        *lock_slot(&self.slots[i]) = Some(runner);
                        self.sizes[i] = len;
                        self.shard_memory[i] = mem;
                        self.telemetry.shard_restarts += 1;
                        restarted = true;
                        break;
                    }
                    Err(()) => continue,
                }
            }
            if !restarted {
                self.dead[i] = true;
                self.telemetry.shards_dead += 1;
                self.sizes[i] = 0;
                self.shard_memory[i] = 0;
                // A dead shard drops its published snapshot too: snapshot
                // reads degrade over exactly the surviving shard set, same
                // as the live path.
                *lock_slot(&self.snap_slots[i]) = None;
                self.snap_bytes[i] = 0;
                self.snap_dirty[i] = false;
            }
        }
    }

    /// Gathers `in_flight` completions from the pool, routing each lane
    /// back to its scratch slot: range lanes to `range_lanes`, update
    /// lanes to `update_lanes` (refreshing the size/memory gauges of
    /// shards that succeeded), kNN lanes to the single-batch scratch
    /// (`grouped == false`, `tag` 0 = home, 1 = fanout) or the per-group
    /// scratch (`grouped == true`, `tag` = group; `fan_phase` picks home
    /// vs fanout). Returns the panicked shards, deduplicated.
    fn gather(&mut self, in_flight: usize, grouped: bool, fan_phase: bool) -> Vec<usize> {
        let mut panicked = Vec::new();
        for _ in 0..in_flight {
            let done = self.pool.recv_done();
            let WorkerDone {
                shard,
                tag,
                job,
                panicked: p,
            } = done;
            match job {
                Job::Range(lane) => self.range_lanes[shard] = lane,
                Job::Update(lane) => {
                    if !p {
                        self.sizes[shard] = lane.report().len_after;
                        self.shard_memory[shard] = lane.report().memory_bytes;
                    }
                    self.update_lanes[shard] = lane;
                }
                Job::Knn(lane) => {
                    let lanes = match (grouped, fan_phase, tag) {
                        (true, false, g) => &mut self.knn_home_groups[g],
                        (true, true, g) => &mut self.knn_fan_groups[g],
                        (false, _, 0) => &mut self.knn_home,
                        (false, _, _) => &mut self.knn_fan,
                    };
                    lanes[shard] = lane;
                }
            }
            if p {
                panicked.push(shard);
            }
        }
        panicked.sort_unstable();
        panicked.dedup();
        panicked
    }

    /// Scatters every non-empty range lane onto the pool and waits for all
    /// of them to come back (empty lanes skip the round trip). Returns the
    /// shards whose job panicked — their lanes carry torn results and the
    /// batch must be re-run after supervision.
    fn run_range_lanes(&mut self) -> Vec<usize> {
        let mut in_flight = 0usize;
        for i in 0..self.range_lanes.len() {
            if self.range_lanes[i].is_empty() {
                continue;
            }
            let lane = std::mem::take(&mut self.range_lanes[i]);
            self.pool.submit(i, 0, Job::Range(lane), false);
            in_flight += 1;
        }
        self.gather(in_flight, false, false)
    }

    /// Scatters every non-empty update lane, waits for all to come back,
    /// and refreshes the per-shard size/memory gauges from the lane
    /// reports of the shards that succeeded. Returns panicked shards.
    fn run_update_lanes(&mut self) -> Vec<usize> {
        let mut in_flight = 0usize;
        for i in 0..self.update_lanes.len() {
            if self.update_lanes[i].is_empty() {
                continue;
            }
            let lane = std::mem::take(&mut self.update_lanes[i]);
            self.pool.submit(i, 0, Job::Update(lane), false);
            in_flight += 1;
        }
        self.gather(in_flight, false, false)
    }

    /// The shared tail of every write-path call (updates, inserts,
    /// removals): drops lanes aimed at already-dead shards (coverage is
    /// already degraded and the planner store stays authoritative, so the
    /// batch does not fail), scatters the rest, supervises panicked
    /// shards, and folds the executed lanes' write-amplification counters
    /// into `stats`. Returns the first shard that ended **dead**, if any —
    /// the typed write failure.
    fn finish_write(&mut self, stats: &mut UpdateStats) -> Option<usize> {
        for (i, &dead) in self.dead.iter().enumerate() {
            if dead {
                self.update_lanes[i].clear();
            }
        }
        // Shards receiving any write work are dirty for the next publish —
        // a restart mid-write is covered too (it rebuilds from the
        // already-advanced planner store, and the lane that provoked it
        // was non-empty by definition).
        for (i, lane) in self.update_lanes.iter().enumerate() {
            if !lane.is_empty() {
                self.snap_dirty[i] = true;
            }
        }
        let panicked = self.run_update_lanes();
        let mut failed = None;
        if !panicked.is_empty() {
            self.handle_panics(&panicked);
            failed = panicked.iter().copied().find(|&i| self.dead[i]);
        }
        for lane in &self.update_lanes {
            lane.report().fold_into(stats);
        }
        failed
    }

    /// Scatters every non-empty kNN lane of the given single-batch phase
    /// and waits for completion. Returns panicked shards.
    fn run_knn_lanes(&mut self, fan_phase: bool) -> Vec<usize> {
        let mut in_flight = 0usize;
        let tag = usize::from(fan_phase);
        let lanes = if fan_phase {
            &mut self.knn_fan
        } else {
            &mut self.knn_home
        };
        for (i, lane) in lanes.iter_mut().enumerate() {
            if lane.is_empty() {
                continue;
            }
            self.pool
                .submit(i, tag, Job::Knn(std::mem::take(lane)), false);
            in_flight += 1;
        }
        self.gather(in_flight, false, fan_phase)
    }

    /// Shards a query run must route around. For a live run that is the
    /// dead set; a snapshot run additionally avoids live shards whose
    /// snapshot slot is empty (a fork that failed and could not be
    /// repaired), which get the same partial/failed treatment as dead
    /// shards rather than silently answering from the wrong epoch.
    fn blocked_shards(&self, snap: bool) -> Vec<bool> {
        (0..self.slots.len())
            .map(|i| self.dead[i] || (snap && lock_slot(&self.snap_slots[i]).is_none()))
            .collect()
    }

    /// Supervision for a panic inside a *snapshot* job: the live shard is
    /// untouched (the job ran against the frozen copy), so instead of a
    /// quarantine/restart cycle the snapshot is simply re-forked from the
    /// live executor. That is exact, not approximate: the scheduler
    /// publishes after every write barrier, so whenever a snapshot run is
    /// on the pool the live state *is* the published epoch's state.
    fn repair_snapshots(&mut self, panicked: &[usize]) {
        let mut shards: Vec<usize> = panicked.to_vec();
        shards.sort_unstable();
        shards.dedup();
        for i in shards {
            self.telemetry.panics_caught += 1;
            let forked = if self.dead[i] {
                None
            } else {
                catch_unwind(AssertUnwindSafe(|| {
                    lock_slot(&self.slots[i]).as_ref().and_then(|r| r.fork())
                }))
                .ok()
                .flatten()
            };
            self.snap_bytes[i] = forked.as_ref().map_or(0, |r| r.memory_bytes());
            *lock_slot(&self.snap_slots[i]) = forked;
        }
    }

    /// Shared body of `query_run` / `snapshot_query_run`: the whole query
    /// run — range batch plus every per-`k` kNN batch — scatters onto the
    /// worker pool as **one wave** of shard jobs, so independent
    /// sub-batches overlap across cores instead of executing back-to-back.
    /// kNN fan-out (which needs each group's home results as seeds) forms
    /// a second wave. The per-sub-batch merges run on the backend thread
    /// afterwards and are the exact same deterministic code as the
    /// sequential path, so results are byte-identical to executing the
    /// sub-batches one by one. With `snap` set, jobs execute against the
    /// published snapshot executors instead of the live ones; routing
    /// still uses the planner, which is exact because the planner's
    /// region/envelope state only gates *which shards are visited*, and
    /// snapshot runs only execute when live and published state agree on
    /// membership (the scheduler publishes after every write barrier).
    fn run_query_run(
        &mut self,
        run: &QueryRun,
        out: &mut QueryRunResults,
        snap: bool,
    ) -> QueryRunReport {
        let start = Instant::now();
        out.ensure_knn(run.knn.len());
        while self.knn_home_groups.len() < run.knn.len() {
            self.knn_home_groups.push(Vec::new());
            self.knn_fan_groups.push(Vec::new());
        }
        // Reads are idempotent, so supervision is the same retry loop as
        // the per-batch paths, over the whole run: any panic quarantines/
        // restarts the shard (live run) or re-forks its snapshot (snapshot
        // run) and re-runs the run against the post-supervision shard set.
        let mut partial = vec![0u32; run.range.len()];
        let mut failed: Vec<Vec<(u32, usize)>> = vec![Vec::new(); run.knn.len()];
        loop {
            // ---- Route wave-1 work: the coalesced range batch plus each
            // kNN group's home lanes, dropping lanes aimed at blocked
            // shards (partial coverage for range, typed failure for kNN).
            let blocked = self.blocked_shards(snap);
            self.planner.route_range(&run.range, &mut self.range_lanes);
            partial.iter_mut().for_each(|n| *n = 0);
            for (i, &blk) in blocked.iter().enumerate() {
                if blk {
                    for &qi in self.range_lanes[i].routed() {
                        partial[qi as usize] += 1;
                    }
                    self.range_lanes[i].clear();
                }
            }
            for (g, (k, points)) in run.knn.iter().enumerate() {
                failed[g].clear();
                self.planner
                    .route_knn_home(points, *k, &mut self.knn_home_groups[g]);
                for (i, &blk) in blocked.iter().enumerate() {
                    if blk {
                        for &qi in self.knn_home_groups[g][i].routed() {
                            failed[g].push((qi, i));
                        }
                        self.knn_home_groups[g][i].clear();
                    }
                }
            }
            // ---- Wave 1: every range lane and every group's home lanes
            // scatter together. One shard's jobs serialise on its executor
            // slot; independent shards (and stolen jobs) overlap.
            let mut in_flight = 0usize;
            for i in 0..self.range_lanes.len() {
                if self.range_lanes[i].is_empty() {
                    continue;
                }
                let lane = std::mem::take(&mut self.range_lanes[i]);
                self.pool.submit(i, 0, Job::Range(lane), snap);
                in_flight += 1;
            }
            for g in 0..run.knn.len() {
                for i in 0..self.knn_home_groups[g].len() {
                    if self.knn_home_groups[g][i].is_empty() {
                        continue;
                    }
                    let lane = std::mem::take(&mut self.knn_home_groups[g][i]);
                    self.pool.submit(i, g, Job::Knn(lane), snap);
                    in_flight += 1;
                }
            }
            let panicked = self.gather(in_flight, true, false);
            if !panicked.is_empty() {
                if snap {
                    self.repair_snapshots(&panicked);
                } else {
                    self.handle_panics(&panicked);
                }
                continue;
            }
            // ---- Wave 2: each group's fan-out lanes (seeded by its home
            // results), again as one combined scatter.
            let blocked = self.blocked_shards(snap);
            let mut in_flight = 0usize;
            for (g, (k, points)) in run.knn.iter().enumerate() {
                self.planner.route_knn_fanout(
                    points,
                    *k,
                    &self.knn_home_groups[g],
                    &mut self.knn_fan_groups[g],
                );
                for (i, &blk) in blocked.iter().enumerate() {
                    if blk {
                        for &qi in self.knn_fan_groups[g][i].routed() {
                            failed[g].push((qi, i));
                        }
                        self.knn_fan_groups[g][i].clear();
                    }
                }
                for i in 0..self.knn_fan_groups[g].len() {
                    if self.knn_fan_groups[g][i].is_empty() {
                        continue;
                    }
                    let lane = std::mem::take(&mut self.knn_fan_groups[g][i]);
                    self.pool.submit(i, g, Job::Knn(lane), snap);
                    in_flight += 1;
                }
            }
            let panicked = self.gather(in_flight, true, true);
            if !panicked.is_empty() {
                if snap {
                    self.repair_snapshots(&panicked);
                } else {
                    self.handle_panics(&panicked);
                }
                continue;
            }
            break;
        }
        // ---- Deterministic merges, sub-batch by sub-batch.
        let mut report = QueryRunReport::default();
        if !run.range.is_empty() {
            out.range.reset();
            let stats =
                self.planner
                    .merge_range(run.range.len(), &mut self.range_lanes, &mut out.range);
            report.range = Some(SubBatchOutcome::Ran(BatchReport {
                stats,
                failed: Vec::new(),
                partial: partial
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(q, &n)| (q as u32, n))
                    .collect(),
            }));
        }
        for (g, (k, points)) in run.knn.iter().enumerate() {
            out.knn[g].reset();
            let stats = self.planner.merge_knn(
                points.len(),
                *k,
                &mut self.knn_home_groups[g],
                &mut self.knn_fan_groups[g],
                &mut out.knn[g],
            );
            let mut f = std::mem::take(&mut failed[g]);
            f.sort_unstable();
            f.dedup_by_key(|&mut (q, _)| q);
            report.knn.push(SubBatchOutcome::Ran(BatchReport {
                stats,
                failed: f,
                partial: Vec::new(),
            }));
        }
        // The run executed as one combined scatter, so per-sub-batch wall
        // time is not attributable: the whole run's elapsed lands on the
        // first sub-batch and the rest report zero, keeping the *summed*
        // execution time honest.
        let elapsed = start.elapsed().as_secs_f64();
        let mut assigned = false;
        if let Some(SubBatchOutcome::Ran(r)) = report.range.as_mut() {
            r.stats.elapsed_s = elapsed;
            assigned = true;
        }
        for o in report.knn.iter_mut() {
            if let SubBatchOutcome::Ran(r) = o {
                r.stats.elapsed_s = if assigned { 0.0 } else { elapsed };
                assigned = true;
            }
        }
        report
    }
}

impl ServiceBackend for ShardedBackend {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport {
        let start = Instant::now();
        // Reads are idempotent, so supervision is a retry loop: route,
        // drop lanes aimed at dead shards (recording partial coverage),
        // run; if any worker panicked, quarantine/restart it and re-run
        // the whole batch against the post-supervision shard set.
        let mut partial = vec![0u32; queries.len()];
        loop {
            self.planner.route_range(queries, &mut self.range_lanes);
            partial.iter_mut().for_each(|n| *n = 0);
            for (i, &dead) in self.dead.iter().enumerate() {
                if dead {
                    for &qi in self.range_lanes[i].routed() {
                        partial[qi as usize] += 1;
                    }
                    self.range_lanes[i].clear();
                }
            }
            let panicked = self.run_range_lanes();
            if panicked.is_empty() {
                break;
            }
            self.handle_panics(&panicked);
        }
        out.reset();
        let mut stats = self
            .planner
            .merge_range(queries.len(), &mut self.range_lanes, out);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        BatchReport {
            stats,
            failed: Vec::new(),
            partial: partial
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(q, &n)| (q as u32, n))
                .collect(),
        }
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport {
        let start = Instant::now();
        // Same retry-loop discipline as `range_batch`, over both kNN
        // phases. A query touching a dead shard (home or fanout) cannot be
        // answered correctly — partial neighbours would be silently wrong
        // — so it is reported failed instead of degraded.
        let mut failed: Vec<(u32, usize)> = Vec::new();
        loop {
            failed.clear();
            self.planner.route_knn_home(points, k, &mut self.knn_home);
            for (i, &dead) in self.dead.iter().enumerate() {
                if dead {
                    for &qi in self.knn_home[i].routed() {
                        failed.push((qi, i));
                    }
                    self.knn_home[i].clear();
                }
            }
            let panicked = self.run_knn_lanes(false);
            if !panicked.is_empty() {
                self.handle_panics(&panicked);
                continue;
            }
            self.planner
                .route_knn_fanout(points, k, &self.knn_home, &mut self.knn_fan);
            for (i, &dead) in self.dead.iter().enumerate() {
                if dead {
                    for &qi in self.knn_fan[i].routed() {
                        failed.push((qi, i));
                    }
                    self.knn_fan[i].clear();
                }
            }
            let panicked = self.run_knn_lanes(true);
            if !panicked.is_empty() {
                self.handle_panics(&panicked);
                continue;
            }
            break;
        }
        out.reset();
        let mut stats =
            self.planner
                .merge_knn(points.len(), k, &mut self.knn_home, &mut self.knn_fan, out);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        failed.sort_unstable();
        failed.dedup_by_key(|&mut (q, _)| q);
        BatchReport {
            stats,
            failed,
            partial: Vec::new(),
        }
    }

    /// The multicore override: the whole query run — range batch plus
    /// every per-`k` kNN batch — scatters onto the worker pool as **one
    /// wave** of shard jobs, so independent sub-batches overlap across
    /// cores instead of executing back-to-back. kNN fan-out (which needs
    /// each group's home results as seeds) forms a second wave. The
    /// per-sub-batch merges run on the backend thread afterwards and are
    /// the exact same deterministic code as the sequential path, so
    /// results are byte-identical to executing the sub-batches one by one.
    fn query_run(&mut self, run: &QueryRun, out: &mut QueryRunResults) -> QueryRunReport {
        self.run_query_run(run, out, false)
    }

    /// The snapshot override: identical routing, scatter and merge to
    /// [`ServiceBackend::query_run`], but every lane executes against the
    /// shard's **published snapshot** executor — so hoisted snapshot reads
    /// answer at the last published epoch while live executors are free to
    /// apply the write barriers queued behind them.
    fn snapshot_query_run(&mut self, run: &QueryRun, out: &mut QueryRunResults) -> QueryRunReport {
        if !self.snapshots {
            return self.run_query_run(run, out, false);
        }
        self.run_query_run(run, out, true)
    }

    fn supports_snapshots(&self) -> bool {
        self.snapshots
    }

    /// Copy-on-publish: forks a frozen executor copy for every shard whose
    /// state changed since the last publish and parks it in the shard's
    /// snapshot slot, replacing — and thereby freeing — the previous copy.
    /// Untouched shards keep their existing snapshot (no clone, no
    /// traffic), so a sparse tick copies only the shards it dirtied. Dead
    /// shards publish nothing. Idempotent per epoch: a clean pass leaves
    /// no shard dirty, so a scheduler retry after a caught panic re-forks
    /// only what the interrupted pass had not finished. A panic inside the
    /// user index's `Clone` is supervised like a worker panic — the shard
    /// restarts from the planner store and the fork is retried once
    /// against the rebuilt executor.
    fn publish(&mut self, _epoch: u64) {
        if !self.snapshots {
            return;
        }
        for i in 0..self.slots.len() {
            if !self.snap_dirty[i] {
                continue;
            }
            let mut attempts = 0u32;
            let forked = loop {
                if self.dead[i] {
                    break None;
                }
                let fork = catch_unwind(AssertUnwindSafe(|| {
                    lock_slot(&self.slots[i]).as_ref().and_then(|r| r.fork())
                }));
                match fork {
                    Ok(f) => break f,
                    Err(_) if attempts == 0 => {
                        attempts += 1;
                        self.handle_panics(&[i]);
                    }
                    Err(_) => break None,
                }
            };
            self.snap_bytes[i] = forked.as_ref().map_or(0, |r| r.memory_bytes());
            *lock_slot(&self.snap_slots[i]) = forked;
            self.snap_dirty[i] = false;
        }
    }

    fn snapshot_clone_bytes(&self) -> u64 {
        self.snap_bytes.iter().map(|&b| b as u64).sum()
    }

    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateReport {
        // Fail on the calling thread with a clear message (the service
        // never routes writes here when read-only, but the trait is
        // public): without this, the panic would surface on a detached
        // worker thread after the planner already advanced its envelopes.
        assert!(
            self.updatable,
            "write batch on a read-only sharded backend — build the engine with_rebuild"
        );
        let start = Instant::now();
        // Single pass, no retry: routing advances the planner's element
        // store, which is authoritative. A shard that panics mid-write and
        // restarts is rebuilt *from that advanced store*, so the write is
        // fully applied on it — only a shard that ends dead loses data,
        // and that is surfaced as a typed failure.
        let mut stats = self.planner.route_updates(updates, &mut self.update_lanes);
        let failed = self.finish_write(&mut stats);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        UpdateReport { stats, failed }
    }

    fn supports_updates(&self) -> bool {
        self.updatable
    }

    fn insert_batch(&mut self, shapes: &[Shape]) -> (Vec<ElementId>, UpdateReport) {
        assert!(
            self.updatable,
            "insert batch on a read-only sharded backend — build the engine with_rebuild"
        );
        let start = Instant::now();
        // Same single-pass discipline as `update_batch`: the planner
        // allocates the ids and grows its element store first, so a shard
        // that panics mid-insert is restarted *with* the new elements.
        let (ids, mut stats) = self.planner.route_inserts(shapes, &mut self.update_lanes);
        let failed = self.finish_write(&mut stats);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        (ids, UpdateReport { stats, failed })
    }

    fn remove_batch(&mut self, ids: &[ElementId]) -> UpdateReport {
        assert!(
            self.updatable,
            "remove batch on a read-only sharded backend — build the engine with_rebuild"
        );
        let start = Instant::now();
        // The planner tombstones removed ids up front: a restarted shard
        // excludes them, and later updates to them are skipped.
        let mut stats = self.planner.route_removals(ids, &mut self.update_lanes);
        let failed = self.finish_write(&mut stats);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        UpdateReport { stats, failed }
    }

    fn supports_membership(&self) -> bool {
        self.updatable
    }

    fn recover(&mut self, after_write: bool) -> bool {
        // Shard-worker panics never unwind to the dispatcher — they are
        // supervised internally. A panic that *does* cross this backend's
        // boundary happened in routing/merge code on the dispatcher
        // thread: reads re-route from scratch every batch (nothing torn),
        // but a write may have torn the planner's element store mid-route,
        // so the backend must poison.
        !after_write
    }

    fn telemetry(&self) -> BackendTelemetry {
        let mut t = self.telemetry.clone();
        t.worker_steals = self.pool.shared.steals.load(Ordering::Relaxed);
        t.worker_busy_ns = self
            .pool
            .shared
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        t
    }

    fn install_worker_faults(&mut self, faults: &[(usize, u64, FaultKind)]) {
        for &(shard, op, kind) in faults {
            if let Some(list) = self.fault_lists.get(shard) {
                if let Ok(mut l) = list.lock() {
                    l.push((op, kind));
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.planner.memory_bytes()
            + self.shard_memory.iter().sum::<usize>()
            + self
                .range_lanes
                .iter()
                .map(RangeLane::memory_bytes)
                .sum::<usize>()
            + self
                .knn_home
                .iter()
                .chain(self.knn_fan.iter())
                .map(KnnLane::memory_bytes)
                .sum::<usize>()
            + self
                .knn_home_groups
                .iter()
                .chain(self.knn_fan_groups.iter())
                .flatten()
                .map(KnnLane::memory_bytes)
                .sum::<usize>()
            + self
                .update_lanes
                .iter()
                .map(UpdateLane::memory_bytes)
                .sum::<usize>()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.sizes.clone()
    }

    fn shutdown(&mut self) {
        self.pool.stop();
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}
