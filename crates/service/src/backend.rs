//! Execution backends the scheduler dispatches coalesced batches to.
//!
//! The scheduler is backend-agnostic: anything that can run one range
//! batch and one per-`k` kNN batch fits. Two implementations ship:
//!
//! * [`EngineBackend`] — a single [`QueryEngine`] over one index. The
//!   dispatcher thread executes inline: one worker total, the degenerate
//!   (but often fastest single-core) deployment.
//! * [`ShardedBackend`] — a [`ShardedEngine`] split into its
//!   [`ShardPlanner`] and per-shard
//!   [`ShardExecutor`](simspatial_index::ShardExecutor)s, each executor
//!   pinned to a **persistent worker thread**. The dispatcher routes each
//!   batch into per-shard lanes, ships lanes over channels, and merges the
//!   returned lanes through the planner's deduplicating sinks — so shard
//!   execution overlaps across cores while results stay byte-identical to
//!   a serial [`ShardedEngine`] run.

use crate::fault::FaultKind;
use simspatial_geom::{Aabb, Element, ElementId, Point3, Shape};
use simspatial_index::{
    BatchResults, KnnBatchResults, KnnIndex, KnnLane, QueryEngine, QueryStats, RangeLane,
    ShardExecutor, ShardPlanner, ShardedEngine, SpatialIndex, UpdateLane, UpdateStats,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The report of one executed query batch: the usual execution accounting
/// plus the failure metadata the supervision layer needs to complete every
/// request honestly.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// The execution accounting (timings, result counts, predicate tests).
    pub stats: QueryStats,
    /// Queries/probes the backend could **not** answer correctly:
    /// `(index within the batch, shard held responsible)`. The scheduler
    /// completes the owning requests with
    /// [`RecvError::WorkerFailed`](crate::RecvError::WorkerFailed) instead
    /// of returning silently-wrong results — today this is kNN probes
    /// whose home or fan-out set includes a dead shard.
    pub failed: Vec<(u32, usize)>,
    /// Queries answered with **reduced coverage**:
    /// `(index within the batch, number of shards skipped)`. Range and
    /// count queries over dead shards degrade rather than fail: the result
    /// is correct over the surviving shards, and the skip count travels to
    /// the client as partial-coverage metadata.
    pub partial: Vec<(u32, u32)>,
}

impl From<QueryStats> for BatchReport {
    fn from(stats: QueryStats) -> Self {
        Self {
            stats,
            failed: Vec::new(),
            partial: Vec::new(),
        }
    }
}

/// The report of one applied write batch: accounting plus the shard (if
/// any) on which the write could not be (fully) applied.
#[derive(Debug, Clone, Copy, Default)]
pub struct UpdateReport {
    /// The write accounting (applied/migrations/skipped, timing).
    pub stats: UpdateStats,
    /// `Some(shard)` when the write's durability is compromised: a shard
    /// died while applying it, or an injected fault dropped it before it
    /// reached the backend. The scheduler completes the affected write
    /// requests with
    /// [`RecvError::WorkerFailed`](crate::RecvError::WorkerFailed).
    pub failed: Option<usize>,
}

impl From<UpdateStats> for UpdateReport {
    fn from(stats: UpdateStats) -> Self {
        Self {
            stats,
            failed: None,
        }
    }
}

/// Cumulative failure counters a backend exposes to the service stats:
/// what the supervision layer caught, repaired, and gave up on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendTelemetry {
    /// Panics caught on backend worker threads (shard-worker jobs).
    pub panics_caught: u64,
    /// Shard executors successfully rebuilt from the planner's retained
    /// element store after a panic.
    pub shard_restarts: u64,
    /// Shards declared dead: restart budget exhausted, or no rebuild path
    /// available. Dead shards are skipped by queries (range/count degrade
    /// to partial coverage; kNN fails typed) and never resurrect.
    pub shards_dead: u64,
}

/// Restart discipline for supervised shard workers: how many times a shard
/// may be rebuilt over its lifetime, and how the supervisor backs off
/// between attempts when rebuilding itself keeps failing.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Lifetime restart budget per shard; the panic that exceeds it (or
    /// any panic, when no rebuild path exists) declares the shard dead.
    pub max_restarts: u32,
    /// Backoff before the second restart attempt; doubles per subsequent
    /// attempt (the first attempt is immediate).
    pub backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
        }
    }
}

/// A batch execution target for the service scheduler.
///
/// Contract mirrors the engine layer: `range_batch` fills one id list per
/// query (in plan emission order), `knn_batch` one ascending
/// `(distance, id)` list per probe; both reset `out` first and return the
/// batch accounting. Writable backends additionally apply coalesced write
/// batches through [`ServiceBackend::update_batch`] and advertise it via
/// [`ServiceBackend::supports_updates`] — the service rejects write
/// requests at admission ([`SubmitError::ReadOnly`](crate::SubmitError))
/// when the backend does not.
pub trait ServiceBackend: Send + 'static {
    /// Executes one coalesced range batch. The returned
    /// [`BatchReport::partial`] entries flag queries answered with reduced
    /// shard coverage; [`BatchReport::failed`] flags queries that must
    /// complete with a typed error.
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport;

    /// Executes one coalesced kNN batch at a single `k` (same report
    /// contract as [`ServiceBackend::range_batch`]).
    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport;

    /// Applies one coalesced write batch: each `(id, shape)` entry replaces
    /// that element's geometry (duplicate ids resolve last-write-wins).
    /// Called by the scheduler between query runs so the write-barrier
    /// ordering holds. The default (read-only backend) applies nothing and
    /// reports every entry skipped — unreachable through the service,
    /// which rejects writes at admission when
    /// [`ServiceBackend::supports_updates`] is false.
    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateReport {
        UpdateStats {
            skipped: updates.len() as u64,
            ..UpdateStats::default()
        }
        .into()
    }

    /// True when [`ServiceBackend::update_batch`] actually applies updates.
    fn supports_updates(&self) -> bool {
        false
    }

    /// Called by the scheduler after a panic unwound out of a backend call
    /// on the dispatcher thread. Returns `true` when the backend restored
    /// (or never lost) a consistent state and can keep serving; `false`
    /// poisons the service — every subsequent request completes with
    /// [`RecvError::WorkerFailed`](crate::RecvError::WorkerFailed) instead
    /// of touching a possibly-corrupt backend.
    ///
    /// The default is honest for a generic backend: a query panic is
    /// recoverable (queries must not mutate durable state), a write panic
    /// is not (the batch may be half-applied with no way to verify).
    fn recover(&mut self, after_write: bool) -> bool {
        !after_write
    }

    /// Cumulative supervision counters (panics caught on worker threads,
    /// shard restarts, shards dead). Pulled into
    /// [`ServiceStats`](crate::ServiceStats) after every dispatch.
    fn telemetry(&self) -> BackendTelemetry {
        BackendTelemetry::default()
    }

    /// Installs deterministic worker-level faults (`(shard, job sequence,
    /// kind)` triples) into the backend's worker threads — the test-only
    /// hook [`ChaosBackend`](crate::ChaosBackend) uses to schedule shard
    /// crashes and stalls. Backends without worker threads ignore it.
    fn install_worker_faults(&mut self, _faults: &[(usize, u64, FaultKind)]) {}

    /// Structure bytes the backend holds (surfaced through `ServiceStats`;
    /// refreshed after every update application, so post-migration shrink
    /// is visible).
    fn memory_bytes(&self) -> usize;

    /// Elements per shard (one entry for unsharded backends); refreshed
    /// after every update application.
    fn shard_sizes(&self) -> Vec<usize>;

    /// Stops any worker threads. Called once by the scheduler on orderly
    /// shutdown; must be idempotent.
    fn shutdown(&mut self) {}
}

/// A pluggable write path for [`EngineBackend`]: applies a coalesced
/// update batch to the element data and brings the index in sync.
///
/// Two families of implementations ship:
///
/// * [`RebuildUpdater`] (this crate) — mutates the data and rebuilds the
///   index from scratch with a stored build function; works for **any**
///   index type, and the paper's own measurements show full rebuilds are
///   competitive under massive movement.
/// * `simspatial_moving::StrategyWrites` — adapts any
///   `UpdateStrategy` (grid migration, bottom-up R-Tree updates, buffered
///   updates, …) so a simulation's maintenance strategy serves the
///   service's write path directly.
pub trait IndexUpdater<I>: Send + 'static {
    /// Applies `updates` (last-write-wins per id) to `data` and brings
    /// `index` in sync. `data` follows the dataset convention
    /// (`element.id == position`); entries with out-of-range ids must be
    /// skipped and counted.
    fn apply(
        &mut self,
        index: &mut I,
        data: &mut [Element],
        updates: &[(ElementId, Shape)],
    ) -> UpdateStats;

    /// Restores index–data consistency after a panic unwound out of
    /// [`IndexUpdater::apply`], returning `true` on success. Recovery is
    /// about **consistency, not atomicity**: the interrupted batch may be
    /// partially applied to `data` (each element holds either its old or
    /// its new geometry — the affected write requests complete with a
    /// typed error either way); a successful recovery guarantees the index
    /// agrees with whatever `data` now holds, so subsequent queries are
    /// correct over it.
    ///
    /// The default returns `false` — an updater that cannot re-derive its
    /// index from the data cannot make that guarantee, and the service
    /// poisons itself rather than serve from a possibly-inconsistent
    /// index.
    fn recover(&mut self, _index: &mut I, _data: &mut [Element]) -> bool {
        false
    }
}

/// The stored index build function of a [`RebuildUpdater`].
pub type BuildFn<I> = Box<dyn Fn(&[Element]) -> I + Send>;

/// The rebuild-from-scratch [`IndexUpdater`]: applies the geometry changes
/// to the element data, then rebuilds the index over the updated slice with
/// the stored build function. Correct for every index type.
pub struct RebuildUpdater<I> {
    build: BuildFn<I>,
}

impl<I> RebuildUpdater<I> {
    /// An updater that rebuilds with `build` after every write batch.
    pub fn new(build: impl Fn(&[Element]) -> I + Send + 'static) -> Self {
        Self {
            build: Box::new(build),
        }
    }
}

impl<I: Send + 'static> IndexUpdater<I> for RebuildUpdater<I> {
    fn apply(
        &mut self,
        index: &mut I,
        data: &mut [Element],
        updates: &[(ElementId, Shape)],
    ) -> UpdateStats {
        let start = Instant::now();
        let mut stats = UpdateStats::default();
        // Last-write-wins: reverse iteration, first sighting of an id wins.
        let mut seen = vec![false; data.len()];
        for &(id, shape) in updates.iter().rev() {
            match data.get_mut(id as usize) {
                Some(e) if !seen[id as usize] => {
                    seen[id as usize] = true;
                    e.shape = shape;
                    stats.applied += 1;
                }
                _ => stats.skipped += 1,
            }
        }
        // Every element is (re)placed by the rebuild.
        stats.migrations = stats.applied;
        *index = (self.build)(data);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        stats
    }

    /// A rebuild updater always recovers: rebuilding from the current data
    /// restores index–data consistency by construction.
    fn recover(&mut self, index: &mut I, data: &mut [Element]) -> bool {
        *index = (self.build)(data);
        true
    }
}

/// A single-engine backend: one index, one [`QueryEngine`], executed inline
/// on the dispatcher thread (the "single worker" deployment). Read-only by
/// default; attach an [`IndexUpdater`] ([`EngineBackend::with_updater`] or
/// [`EngineBackend::build_writable`]) to serve the write path too.
pub struct EngineBackend<I> {
    data: Vec<Element>,
    index: I,
    engine: QueryEngine,
    updater: Option<Box<dyn IndexUpdater<I>>>,
}

impl<I: SpatialIndex + KnnIndex + Send + 'static> EngineBackend<I> {
    /// A read-only backend over `data` served by a pre-built `index`.
    pub fn new(data: Vec<Element>, index: I) -> Self {
        Self {
            data,
            index,
            engine: QueryEngine::new(),
            updater: None,
        }
    }

    /// Builds the index from `data` with `build`, then wraps both
    /// (read-only).
    pub fn build(data: Vec<Element>, build: impl FnOnce(&[Element]) -> I) -> Self {
        let index = build(&data);
        Self::new(data, index)
    }

    /// A writable backend: queries as usual, write batches applied through
    /// `updater` (e.g. a `simspatial_moving` strategy adapter).
    pub fn with_updater(data: Vec<Element>, index: I, updater: impl IndexUpdater<I>) -> Self {
        let mut backend = Self::new(data, index);
        backend.updater = Some(Box::new(updater));
        backend
    }

    /// A writable backend whose write path rebuilds the index with `build`
    /// after every update application ([`RebuildUpdater`]).
    pub fn build_writable(
        data: Vec<Element>,
        build: impl Fn(&[Element]) -> I + Send + 'static,
    ) -> Self {
        let index = build(&data);
        Self::with_updater(data, index, RebuildUpdater::new(build))
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }
}

impl<I: SpatialIndex + KnnIndex + Send + 'static> ServiceBackend for EngineBackend<I> {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport {
        self.engine
            .range_collect(&self.index, &self.data, queries, out)
            .into()
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport {
        self.engine
            .knn_collect(&self.index, &self.data, points, k, out)
            .into()
    }

    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateReport {
        match self.updater.as_mut() {
            Some(updater) => updater.apply(&mut self.index, &mut self.data, updates),
            None => UpdateStats {
                skipped: updates.len() as u64,
                ..UpdateStats::default()
            },
        }
        .into()
    }

    fn supports_updates(&self) -> bool {
        self.updater.is_some()
    }

    fn recover(&mut self, after_write: bool) -> bool {
        if !after_write {
            // Queries only touch per-call engine scratch, which the next
            // call resets.
            return true;
        }
        match self.updater.as_mut() {
            Some(updater) => updater.recover(&mut self.index, &mut self.data),
            // No write path, so nothing could have been mid-mutation.
            None => true,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.engine.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        vec![self.data.len()]
    }
}

/// A routed lane travelling to a shard worker (to execute) and back (with
/// results filled) — the same type in both directions, so lane allocations
/// recycle across dispatches without re-wrapping.
enum Job {
    Range(RangeLane),
    Knn(KnnLane),
    Update(UpdateLane),
}

/// What a shard worker sends back per job: the lane (results filled on
/// success, torn on panic — the gather never uses a panicked lane's
/// contents) and whether the job panicked. A worker always reports, even
/// for a job it failed — that is the no-hang guarantee: the gather's
/// `recv` is matched by exactly one `WorkerDone` per job sent.
struct WorkerDone {
    job: Job,
    panicked: bool,
}

/// A shard's scheduled worker-level faults, shared between the backend
/// (installation) and the worker thread (lookup). Survives worker
/// restarts, as does the job sequence counter, so a fault schedule spans
/// worker incarnations deterministically.
type WorkerFaults = Arc<Mutex<Vec<(u64, FaultKind)>>>;

struct ShardWorker {
    /// `None` after shutdown — dropping the sender ends the worker loop.
    job_tx: Option<mpsc::Sender<Job>>,
    done_rx: mpsc::Receiver<WorkerDone>,
    thread: Option<JoinHandle<()>>,
}

impl ShardWorker {
    /// Ships a job; hands it back if the worker thread is already gone
    /// (the caller treats that as a panicked shard). The `Err` variant
    /// deliberately carries the whole job so the lane can restore it for
    /// the restart retry — boxing would defeat the buffer recycling.
    #[allow(clippy::result_large_err)]
    fn send(&self, job: Job) -> Result<(), Job> {
        self.job_tx
            .as_ref()
            .expect("backend already shut down")
            .send(job)
            .map_err(|mpsc::SendError(job)| job)
    }

    fn stop(&mut self) {
        self.job_tx = None; // closes the channel; the worker loop exits
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spawns the persistent worker thread for one shard executor.
///
/// Every job runs under `catch_unwind` (over an `AssertUnwindSafe` closure
/// — the executor never crosses the boundary again after a panic, see
/// below): a panicking job still produces a `WorkerDone { panicked: true }`
/// report, after which the worker **retires** — the executor may be torn
/// mid-update, so the only safe continuation is a supervisor rebuild from
/// the planner's retained element store.
fn spawn_worker<I: SpatialIndex + KnnIndex + Send + 'static>(
    shard: usize,
    mut exec: ShardExecutor<I>,
    faults: WorkerFaults,
    seq: Arc<AtomicU64>,
) -> ShardWorker {
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (done_tx, done_rx) = mpsc::channel::<WorkerDone>();
    let thread = std::thread::Builder::new()
        .name(format!("simspatial-shard-{shard}"))
        .spawn(move || {
            while let Ok(mut job) = job_rx.recv() {
                let n = seq.fetch_add(1, Ordering::Relaxed);
                let fault = faults
                    .lock()
                    .ok()
                    .and_then(|f| f.iter().find(|&&(at, _)| at == n).map(|&(_, k)| k));
                let panicked = catch_unwind(AssertUnwindSafe(|| {
                    match fault {
                        Some(FaultKind::Panic) => {
                            panic!("chaos: injected fault on shard {shard}, job {n}")
                        }
                        Some(FaultKind::Delay(d)) => std::thread::sleep(d),
                        _ => {}
                    }
                    match &mut job {
                        Job::Range(lane) => lane.run(&mut exec),
                        Job::Knn(lane) => lane.run(&mut exec),
                        Job::Update(lane) => lane.run(&mut exec),
                    }
                }))
                .is_err();
                if done_tx.send(WorkerDone { job, panicked }).is_err() || panicked {
                    // Disconnected gather, or a torn executor: retire. The
                    // supervisor decides whether the shard restarts.
                    break;
                }
            }
        })
        .expect("spawn shard worker thread");
    ShardWorker {
        job_tx: Some(job_tx),
        done_rx,
        thread: Some(thread),
    }
}

/// The type-erased shard-restart recipe a [`ShardedBackend`] stores at
/// spawn: rebuilds shard `i`'s executor from the planner's element store
/// and spawns a fresh worker around it, returning the worker plus the
/// rebuilt shard's `(len, memory_bytes)` gauges. `Err` when the rebuild
/// itself panicked (the supervisor backs off and retries).
type RespawnFn = Box<
    dyn Fn(
            &ShardPlanner,
            usize,
            WorkerFaults,
            Arc<AtomicU64>,
        ) -> Result<(ShardWorker, usize, usize), ()>
        + Send,
>;

/// A region-sharded backend with one **persistent worker thread per
/// shard**. Built by splitting a [`ShardedEngine`] into planner +
/// executors ([`ShardedEngine::into_parts`]) and moving each executor onto
/// its own thread; the scheduler-side half routes, scatters lanes,
/// gathers, and merges.
///
/// Results are byte-identical to running the same `ShardedEngine`
/// serially: routing, execution plans and the deduplicating merge are the
/// exact same code — only *where* each shard's sub-batch runs changes.
pub struct ShardedBackend {
    planner: ShardPlanner,
    /// `None` marks a quarantined slot between a panic and the supervisor's
    /// verdict (restarted or dead); outside `handle_panics` every live
    /// shard is `Some` and every dead shard is `None`.
    workers: Vec<Option<ShardWorker>>,
    sizes: Vec<usize>,
    /// Per-shard structure bytes, captured at spawn and refreshed from the
    /// [`UpdateLane`] reports after every write batch — so post-migration
    /// shrink is reflected even though the executors live on their worker
    /// threads.
    shard_memory: Vec<usize>,
    /// Whether every executor had a rebuild function attached
    /// (`ShardedEngine::with_rebuild`) — the write path needs it.
    updatable: bool,
    policy: SupervisorPolicy,
    /// Remaining lifetime restart budget per shard.
    restarts_left: Vec<u32>,
    /// Shards whose restart budget is exhausted (or that panicked with no
    /// rebuild path). Dead shards never resurrect.
    dead: Vec<bool>,
    telemetry: BackendTelemetry,
    /// Rebuilds a shard's executor from the planner's element store and
    /// spawns a fresh worker around it. `None` when the engine was built
    /// without a rebuild function — then any panic kills its shard.
    factory: Option<RespawnFn>,
    /// Per-shard fault schedules and job sequence counters, shared with
    /// the worker threads (and their restarted successors).
    fault_lists: Vec<WorkerFaults>,
    seqs: Vec<Arc<AtomicU64>>,
    range_lanes: Vec<RangeLane>,
    knn_home: Vec<KnnLane>,
    knn_fan: Vec<KnnLane>,
    update_lanes: Vec<UpdateLane>,
    /// Scatter bookkeeping: which workers got a job this phase.
    sent: Vec<bool>,
}

impl ShardedBackend {
    /// Splits `engine` and pins each shard executor to a freshly spawned
    /// worker thread, supervised under [`SupervisorPolicy::default`]. The
    /// backend is writable iff the engine was built with a rebuild
    /// function ([`ShardedEngine::with_rebuild`]).
    pub fn spawn<I: SpatialIndex + KnnIndex + Send + 'static>(engine: ShardedEngine<I>) -> Self {
        Self::spawn_with(engine, SupervisorPolicy::default())
    }

    /// [`ShardedBackend::spawn`] with an explicit restart discipline.
    pub fn spawn_with<I: SpatialIndex + KnnIndex + Send + 'static>(
        engine: ShardedEngine<I>,
        policy: SupervisorPolicy,
    ) -> Self {
        let sizes = engine.shard_sizes();
        let updatable = engine.is_updatable();
        let (planner, executors) = engine.into_parts();
        let shard_memory: Vec<usize> = executors.iter().map(ShardExecutor::memory_bytes).collect();
        // Every executor of one engine shares the same rebuild function, so
        // the first one's copy serves as the restart recipe for all shards.
        let rebuild = executors.first().and_then(ShardExecutor::rebuild_fn);
        let n = executors.len();
        let fault_lists: Vec<WorkerFaults> =
            (0..n).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
        let seqs: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let workers: Vec<Option<ShardWorker>> = executors
            .into_iter()
            .enumerate()
            .map(|(i, exec)| {
                Some(spawn_worker(
                    i,
                    exec,
                    Arc::clone(&fault_lists[i]),
                    Arc::clone(&seqs[i]),
                ))
            })
            .collect();
        let factory: Option<RespawnFn> = rebuild.map(|rb| {
            Box::new(
                move |planner: &ShardPlanner,
                      shard: usize,
                      faults: WorkerFaults,
                      seq: Arc<AtomicU64>| {
                    let rb = rb.clone();
                    // The rebuild closure is user code: a panic inside it
                    // must not take down the supervisor.
                    catch_unwind(AssertUnwindSafe(move || {
                        let exec = ShardExecutor::from_planner(planner, shard, rb);
                        let len = exec.len();
                        let mem = exec.memory_bytes();
                        (spawn_worker(shard, exec, faults, seq), len, mem)
                    }))
                    .map_err(|_| ())
                },
            ) as RespawnFn
        });
        Self {
            planner,
            workers,
            sizes,
            shard_memory,
            updatable,
            restarts_left: vec![policy.max_restarts; n],
            policy,
            dead: vec![false; n],
            telemetry: BackendTelemetry::default(),
            factory,
            fault_lists,
            seqs,
            range_lanes: Vec::new(),
            knn_home: Vec::new(),
            knn_fan: Vec::new(),
            update_lanes: Vec::new(),
            sent: vec![false; n],
        }
    }

    /// Number of shard workers (live, quarantined, or dead).
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// Indices of shards declared dead by the supervisor.
    pub fn dead_shards(&self) -> Vec<usize> {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| i)
            .collect()
    }

    /// Quarantine → restart → dead transition for every shard in
    /// `panicked`: stops the retired worker, then attempts a rebuild from
    /// the planner's element store under the restart budget, with
    /// exponential backoff between consecutive failing attempts. A shard
    /// that cannot be restarted (budget exhausted, rebuild itself
    /// panicking, or no rebuild path at all) is declared dead.
    fn handle_panics(&mut self, panicked: &[usize]) {
        for &i in panicked {
            if self.dead[i] {
                continue;
            }
            self.telemetry.panics_caught += 1;
            if let Some(mut w) = self.workers[i].take() {
                w.stop();
            }
            let mut restarted = false;
            let mut attempt = 0u32;
            while self.restarts_left[i] > 0 {
                self.restarts_left[i] -= 1;
                if attempt > 0 {
                    let shift = (attempt - 1).min(10);
                    let backoff =
                        (self.policy.backoff * (1u32 << shift)).min(self.policy.max_backoff);
                    std::thread::sleep(backoff);
                }
                attempt += 1;
                if !self.planner.has_element_store() {
                    break;
                }
                let Some(factory) = self.factory.as_ref() else {
                    break;
                };
                match factory(
                    &self.planner,
                    i,
                    Arc::clone(&self.fault_lists[i]),
                    Arc::clone(&self.seqs[i]),
                ) {
                    Ok((worker, len, mem)) => {
                        self.workers[i] = Some(worker);
                        self.sizes[i] = len;
                        self.shard_memory[i] = mem;
                        self.telemetry.shard_restarts += 1;
                        restarted = true;
                        break;
                    }
                    Err(()) => continue,
                }
            }
            if !restarted {
                self.dead[i] = true;
                self.telemetry.shards_dead += 1;
                self.sizes[i] = 0;
                self.shard_memory[i] = 0;
            }
        }
    }

    /// Ships every non-empty range lane to its worker and waits for all of
    /// them to come back (empty lanes skip the round trip). Returns the
    /// shards whose job panicked — their lanes carry torn results and the
    /// batch must be re-run after supervision.
    fn run_range_lanes(&mut self) -> Vec<usize> {
        let mut panicked = Vec::new();
        for i in 0..self.workers.len() {
            self.sent[i] = false;
            if self.range_lanes[i].is_empty() {
                continue;
            }
            let Some(worker) = self.workers[i].as_ref() else {
                panicked.push(i);
                continue;
            };
            let lane = std::mem::take(&mut self.range_lanes[i]);
            match worker.send(Job::Range(lane)) {
                Ok(()) => self.sent[i] = true,
                Err(Job::Range(lane)) => {
                    self.range_lanes[i] = lane;
                    panicked.push(i);
                }
                Err(_) => unreachable!("send returns the job it was given"),
            }
        }
        for i in 0..self.workers.len() {
            if !self.sent[i] {
                continue;
            }
            let worker = self.workers[i].as_ref().expect("sent to a live worker");
            match worker.done_rx.recv() {
                Ok(WorkerDone {
                    job: Job::Range(lane),
                    panicked: p,
                }) => {
                    self.range_lanes[i] = lane;
                    if p {
                        panicked.push(i);
                    }
                }
                Ok(_) => unreachable!("one job in flight per worker"),
                Err(_) => panicked.push(i),
            }
        }
        panicked
    }

    /// Ships every non-empty update lane to its worker, waits for all to
    /// come back, and refreshes the per-shard size/memory gauges from the
    /// lane reports of the shards that succeeded. Returns panicked shards.
    fn run_update_lanes(&mut self) -> Vec<usize> {
        let mut panicked = Vec::new();
        for i in 0..self.workers.len() {
            self.sent[i] = false;
            if self.update_lanes[i].is_empty() {
                continue;
            }
            let Some(worker) = self.workers[i].as_ref() else {
                panicked.push(i);
                continue;
            };
            let lane = std::mem::take(&mut self.update_lanes[i]);
            match worker.send(Job::Update(lane)) {
                Ok(()) => self.sent[i] = true,
                Err(Job::Update(lane)) => {
                    self.update_lanes[i] = lane;
                    panicked.push(i);
                }
                Err(_) => unreachable!("send returns the job it was given"),
            }
        }
        for i in 0..self.workers.len() {
            if !self.sent[i] {
                continue;
            }
            let worker = self.workers[i].as_ref().expect("sent to a live worker");
            match worker.done_rx.recv() {
                Ok(WorkerDone {
                    job: Job::Update(lane),
                    panicked: p,
                }) => {
                    if p {
                        panicked.push(i);
                    } else {
                        self.sizes[i] = lane.report().len_after;
                        self.shard_memory[i] = lane.report().memory_bytes;
                    }
                    self.update_lanes[i] = lane;
                }
                Ok(_) => unreachable!("one job in flight per worker"),
                Err(_) => panicked.push(i),
            }
        }
        panicked
    }

    /// Ships every non-empty kNN lane of the given phase to its worker and
    /// waits for completion. Returns panicked shards.
    fn run_knn_lanes(&mut self, fan_phase: bool) -> Vec<usize> {
        let mut panicked = Vec::new();
        for i in 0..self.workers.len() {
            let lanes = if fan_phase {
                &mut self.knn_fan
            } else {
                &mut self.knn_home
            };
            self.sent[i] = false;
            if lanes[i].is_empty() {
                continue;
            }
            let Some(worker) = self.workers[i].as_ref() else {
                panicked.push(i);
                continue;
            };
            let lane = std::mem::take(&mut lanes[i]);
            match worker.send(Job::Knn(lane)) {
                Ok(()) => self.sent[i] = true,
                Err(Job::Knn(lane)) => {
                    let lanes = if fan_phase {
                        &mut self.knn_fan
                    } else {
                        &mut self.knn_home
                    };
                    lanes[i] = lane;
                    panicked.push(i);
                }
                Err(_) => unreachable!("send returns the job it was given"),
            }
        }
        for i in 0..self.workers.len() {
            if !self.sent[i] {
                continue;
            }
            let worker = self.workers[i].as_ref().expect("sent to a live worker");
            match worker.done_rx.recv() {
                Ok(WorkerDone {
                    job: Job::Knn(lane),
                    panicked: p,
                }) => {
                    let lanes = if fan_phase {
                        &mut self.knn_fan
                    } else {
                        &mut self.knn_home
                    };
                    lanes[i] = lane;
                    if p {
                        panicked.push(i);
                    }
                }
                Ok(_) => unreachable!("one job in flight per worker"),
                Err(_) => panicked.push(i),
            }
        }
        panicked
    }
}

impl ServiceBackend for ShardedBackend {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport {
        let start = Instant::now();
        // Reads are idempotent, so supervision is a retry loop: route,
        // drop lanes aimed at dead shards (recording partial coverage),
        // run; if any worker panicked, quarantine/restart it and re-run
        // the whole batch against the post-supervision shard set.
        let mut partial = vec![0u32; queries.len()];
        loop {
            self.planner.route_range(queries, &mut self.range_lanes);
            partial.iter_mut().for_each(|n| *n = 0);
            for (i, &dead) in self.dead.iter().enumerate() {
                if dead {
                    for &qi in self.range_lanes[i].routed() {
                        partial[qi as usize] += 1;
                    }
                    self.range_lanes[i].clear();
                }
            }
            let panicked = self.run_range_lanes();
            if panicked.is_empty() {
                break;
            }
            self.handle_panics(&panicked);
        }
        out.reset();
        let mut stats = self
            .planner
            .merge_range(queries.len(), &mut self.range_lanes, out);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        BatchReport {
            stats,
            failed: Vec::new(),
            partial: partial
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(q, &n)| (q as u32, n))
                .collect(),
        }
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport {
        let start = Instant::now();
        // Same retry-loop discipline as `range_batch`, over both kNN
        // phases. A query touching a dead shard (home or fanout) cannot be
        // answered correctly — partial neighbours would be silently wrong
        // — so it is reported failed instead of degraded.
        let mut failed: Vec<(u32, usize)> = Vec::new();
        loop {
            failed.clear();
            self.planner.route_knn_home(points, k, &mut self.knn_home);
            for (i, &dead) in self.dead.iter().enumerate() {
                if dead {
                    for &qi in self.knn_home[i].routed() {
                        failed.push((qi, i));
                    }
                    self.knn_home[i].clear();
                }
            }
            let panicked = self.run_knn_lanes(false);
            if !panicked.is_empty() {
                self.handle_panics(&panicked);
                continue;
            }
            self.planner
                .route_knn_fanout(points, k, &self.knn_home, &mut self.knn_fan);
            for (i, &dead) in self.dead.iter().enumerate() {
                if dead {
                    for &qi in self.knn_fan[i].routed() {
                        failed.push((qi, i));
                    }
                    self.knn_fan[i].clear();
                }
            }
            let panicked = self.run_knn_lanes(true);
            if !panicked.is_empty() {
                self.handle_panics(&panicked);
                continue;
            }
            break;
        }
        out.reset();
        let mut stats =
            self.planner
                .merge_knn(points.len(), k, &mut self.knn_home, &mut self.knn_fan, out);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        failed.sort_unstable();
        failed.dedup_by_key(|&mut (q, _)| q);
        BatchReport {
            stats,
            failed,
            partial: Vec::new(),
        }
    }

    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateReport {
        // Fail on the calling thread with a clear message (the service
        // never routes writes here when read-only, but the trait is
        // public): without this, the panic would surface on a detached
        // worker thread after the planner already advanced its envelopes.
        assert!(
            self.updatable,
            "write batch on a read-only sharded backend — build the engine with_rebuild"
        );
        let start = Instant::now();
        // Single pass, no retry: routing advances the planner's element
        // store, which is authoritative. A shard that panics mid-write and
        // restarts is rebuilt *from that advanced store*, so the write is
        // fully applied on it — only a shard that ends dead loses data,
        // and that is surfaced as a typed failure.
        let mut stats = self.planner.route_updates(updates, &mut self.update_lanes);
        for (i, &dead) in self.dead.iter().enumerate() {
            // Writes routed to already-dead shards: coverage is already
            // degraded and the planner store stays authoritative, so the
            // lane is dropped without failing the batch.
            if dead {
                self.update_lanes[i].clear();
            }
        }
        let panicked = self.run_update_lanes();
        let mut failed = None;
        if !panicked.is_empty() {
            self.handle_panics(&panicked);
            failed = panicked.iter().copied().find(|&i| self.dead[i]);
        }
        stats.elapsed_s = start.elapsed().as_secs_f64();
        UpdateReport { stats, failed }
    }

    fn supports_updates(&self) -> bool {
        self.updatable
    }

    fn recover(&mut self, after_write: bool) -> bool {
        // Shard-worker panics never unwind to the dispatcher — they are
        // supervised internally. A panic that *does* cross this backend's
        // boundary happened in routing/merge code on the dispatcher
        // thread: reads re-route from scratch every batch (nothing torn),
        // but a write may have torn the planner's element store mid-route,
        // so the backend must poison.
        !after_write
    }

    fn telemetry(&self) -> BackendTelemetry {
        self.telemetry
    }

    fn install_worker_faults(&mut self, faults: &[(usize, u64, FaultKind)]) {
        for &(shard, op, kind) in faults {
            if let Some(list) = self.fault_lists.get(shard) {
                if let Ok(mut l) = list.lock() {
                    l.push((op, kind));
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.planner.memory_bytes()
            + self.shard_memory.iter().sum::<usize>()
            + self
                .range_lanes
                .iter()
                .map(RangeLane::memory_bytes)
                .sum::<usize>()
            + self
                .knn_home
                .iter()
                .chain(self.knn_fan.iter())
                .map(KnnLane::memory_bytes)
                .sum::<usize>()
            + self
                .update_lanes
                .iter()
                .map(UpdateLane::memory_bytes)
                .sum::<usize>()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.sizes.clone()
    }

    fn shutdown(&mut self) {
        for w in self.workers.iter_mut().flatten() {
            w.stop();
        }
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}
