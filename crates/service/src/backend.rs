//! Execution backends the scheduler dispatches coalesced batches to.
//!
//! The scheduler is backend-agnostic: anything that can run one range
//! batch and one per-`k` kNN batch fits. Two implementations ship:
//!
//! * [`EngineBackend`] — a single [`QueryEngine`] over one index. The
//!   dispatcher thread executes inline: one worker total, the degenerate
//!   (but often fastest single-core) deployment.
//! * [`ShardedBackend`] — a [`ShardedEngine`] split into its
//!   [`ShardPlanner`] and per-shard
//!   [`ShardExecutor`](simspatial_index::ShardExecutor)s, each executor
//!   pinned to a **persistent worker thread**. The dispatcher routes each
//!   batch into per-shard lanes, ships lanes over channels, and merges the
//!   returned lanes through the planner's deduplicating sinks — so shard
//!   execution overlaps across cores while results stay byte-identical to
//!   a serial [`ShardedEngine`] run.

use simspatial_geom::{Aabb, Element, Point3};
use simspatial_index::{
    BatchResults, KnnBatchResults, KnnIndex, KnnLane, QueryEngine, QueryStats, RangeLane,
    ShardPlanner, ShardedEngine, SpatialIndex,
};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A batch execution target for the service scheduler.
///
/// Contract mirrors the engine layer: `range_batch` fills one id list per
/// query (in plan emission order), `knn_batch` one ascending
/// `(distance, id)` list per probe; both reset `out` first and return the
/// batch accounting.
pub trait ServiceBackend: Send + 'static {
    /// Executes one coalesced range batch.
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> QueryStats;

    /// Executes one coalesced kNN batch at a single `k`.
    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> QueryStats;

    /// Structure bytes the backend holds (surfaced through `ServiceStats`).
    fn memory_bytes(&self) -> usize;

    /// Elements per shard (one entry for unsharded backends).
    fn shard_sizes(&self) -> Vec<usize>;

    /// Stops any worker threads. Called once by the scheduler on orderly
    /// shutdown; must be idempotent.
    fn shutdown(&mut self) {}
}

/// A single-engine backend: one index, one [`QueryEngine`], executed inline
/// on the dispatcher thread (the "single worker" deployment).
pub struct EngineBackend<I> {
    data: Vec<Element>,
    index: I,
    engine: QueryEngine,
}

impl<I: SpatialIndex + KnnIndex + Send + 'static> EngineBackend<I> {
    /// A backend over `data` served by a pre-built `index`.
    pub fn new(data: Vec<Element>, index: I) -> Self {
        Self {
            data,
            index,
            engine: QueryEngine::new(),
        }
    }

    /// Builds the index from `data` with `build`, then wraps both.
    pub fn build(data: Vec<Element>, build: impl FnOnce(&[Element]) -> I) -> Self {
        let index = build(&data);
        Self::new(data, index)
    }

    /// The wrapped index.
    pub fn index(&self) -> &I {
        &self.index
    }
}

impl<I: SpatialIndex + KnnIndex + Send + 'static> ServiceBackend for EngineBackend<I> {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> QueryStats {
        self.engine
            .range_collect(&self.index, &self.data, queries, out)
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> QueryStats {
        self.engine
            .knn_collect(&self.index, &self.data, points, k, out)
    }

    fn memory_bytes(&self) -> usize {
        self.index.memory_bytes() + self.engine.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        vec![self.data.len()]
    }
}

/// A routed lane travelling to a shard worker (to execute) and back (with
/// results filled) — the same type in both directions, so lane allocations
/// recycle across dispatches without re-wrapping.
enum Job {
    Range(RangeLane),
    Knn(KnnLane),
}

struct ShardWorker {
    /// `None` after shutdown — dropping the sender ends the worker loop.
    job_tx: Option<mpsc::Sender<Job>>,
    done_rx: mpsc::Receiver<Job>,
    thread: Option<JoinHandle<()>>,
}

impl ShardWorker {
    fn send(&self, job: Job) {
        self.job_tx
            .as_ref()
            .expect("backend already shut down")
            .send(job)
            .expect("shard worker exited unexpectedly");
    }

    fn stop(&mut self) {
        self.job_tx = None; // closes the channel; the worker loop exits
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// A region-sharded backend with one **persistent worker thread per
/// shard**. Built by splitting a [`ShardedEngine`] into planner +
/// executors ([`ShardedEngine::into_parts`]) and moving each executor onto
/// its own thread; the scheduler-side half routes, scatters lanes,
/// gathers, and merges.
///
/// Results are byte-identical to running the same `ShardedEngine`
/// serially: routing, execution plans and the deduplicating merge are the
/// exact same code — only *where* each shard's sub-batch runs changes.
pub struct ShardedBackend {
    planner: ShardPlanner,
    workers: Vec<ShardWorker>,
    sizes: Vec<usize>,
    /// Structure bytes captured at spawn (executors live on their threads
    /// afterwards, so this is a build-time snapshot).
    base_memory: usize,
    range_lanes: Vec<RangeLane>,
    knn_home: Vec<KnnLane>,
    knn_fan: Vec<KnnLane>,
    /// Scatter bookkeeping: which workers got a job this phase.
    sent: Vec<bool>,
}

impl ShardedBackend {
    /// Splits `engine` and pins each shard executor to a freshly spawned
    /// worker thread.
    pub fn spawn<I: SpatialIndex + KnnIndex + Send + 'static>(engine: ShardedEngine<I>) -> Self {
        let sizes = engine.shard_sizes();
        let base_memory = engine.memory_bytes();
        let (planner, executors) = engine.into_parts();
        let workers: Vec<ShardWorker> = executors
            .into_iter()
            .enumerate()
            .map(|(i, mut exec)| {
                let (job_tx, job_rx) = mpsc::channel::<Job>();
                let (done_tx, done_rx) = mpsc::channel::<Job>();
                let thread = std::thread::Builder::new()
                    .name(format!("simspatial-shard-{i}"))
                    .spawn(move || {
                        while let Ok(mut job) = job_rx.recv() {
                            match &mut job {
                                Job::Range(lane) => lane.run(&mut exec),
                                Job::Knn(lane) => lane.run(&mut exec),
                            }
                            if done_tx.send(job).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn shard worker thread");
                ShardWorker {
                    job_tx: Some(job_tx),
                    done_rx,
                    thread: Some(thread),
                }
            })
            .collect();
        let n = workers.len();
        Self {
            planner,
            workers,
            sizes,
            base_memory,
            range_lanes: Vec::new(),
            knn_home: Vec::new(),
            knn_fan: Vec::new(),
            sent: vec![false; n],
        }
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// Ships every non-empty range lane to its worker and waits for all of
    /// them to come back (empty lanes skip the round trip).
    fn run_range_lanes(&mut self) {
        for (i, worker) in self.workers.iter().enumerate() {
            self.sent[i] = !self.range_lanes[i].is_empty();
            if self.sent[i] {
                let lane = std::mem::take(&mut self.range_lanes[i]);
                worker.send(Job::Range(lane));
            }
        }
        for (i, worker) in self.workers.iter().enumerate() {
            if !self.sent[i] {
                continue;
            }
            match worker.done_rx.recv().expect("shard worker exited") {
                Job::Range(lane) => self.range_lanes[i] = lane,
                Job::Knn(_) => unreachable!("one job in flight per worker"),
            }
        }
    }

    /// Ships every non-empty kNN lane of `which` phase to its worker and
    /// waits for completion.
    fn run_knn_lanes(&mut self, fan_phase: bool) {
        let lanes = if fan_phase {
            &mut self.knn_fan
        } else {
            &mut self.knn_home
        };
        for (i, worker) in self.workers.iter().enumerate() {
            self.sent[i] = !lanes[i].is_empty();
            if self.sent[i] {
                let lane = std::mem::take(&mut lanes[i]);
                worker.send(Job::Knn(lane));
            }
        }
        for (i, worker) in self.workers.iter().enumerate() {
            if !self.sent[i] {
                continue;
            }
            match worker.done_rx.recv().expect("shard worker exited") {
                Job::Knn(lane) => lanes[i] = lane,
                Job::Range(_) => unreachable!("one job in flight per worker"),
            }
        }
    }
}

impl ServiceBackend for ShardedBackend {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> QueryStats {
        let start = Instant::now();
        self.planner.route_range(queries, &mut self.range_lanes);
        self.run_range_lanes();
        out.reset();
        let mut stats = self
            .planner
            .merge_range(queries.len(), &mut self.range_lanes, out);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        stats
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> QueryStats {
        let start = Instant::now();
        self.planner.route_knn_home(points, k, &mut self.knn_home);
        self.run_knn_lanes(false);
        self.planner
            .route_knn_fanout(points, k, &self.knn_home, &mut self.knn_fan);
        self.run_knn_lanes(true);
        out.reset();
        let mut stats =
            self.planner
                .merge_knn(points.len(), k, &mut self.knn_home, &mut self.knn_fan, out);
        stats.elapsed_s = start.elapsed().as_secs_f64();
        stats
    }

    fn memory_bytes(&self) -> usize {
        self.base_memory
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.sizes.clone()
    }

    fn shutdown(&mut self) {
        for w in &mut self.workers {
            w.stop();
        }
    }
}

impl Drop for ShardedBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}
