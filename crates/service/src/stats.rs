//! Service-level observability: queue depth, coalescing effectiveness,
//! per-request latency and the aggregated execution accounting.

use simspatial_geom::stats::PredicateCounts;
use std::time::Duration;

/// Number of power-of-two latency buckets (microsecond-indexed): bucket
/// `i` counts requests whose latency was below `2^i` µs, giving usable
/// percentiles from sub-microsecond up to ~35 minutes.
pub const LATENCY_BUCKETS: usize = 32;

/// Number of power-of-two batch-size buckets: bucket `i` counts dispatches
/// that coalesced `[2^i, 2^(i+1))` requests.
pub const BATCH_BUCKETS: usize = 16;

/// A log₂-bucketed latency histogram with exact count/sum/max — compact
/// enough to update under the stats lock on every completion, precise
/// enough for p50/p95/p99 summaries.
#[derive(Debug, Clone, Copy)]
pub struct LatencyHistogram {
    /// Requests recorded.
    pub count: u64,
    /// Sum of latencies, seconds.
    pub sum_s: f64,
    /// Largest latency, seconds.
    pub max_s: f64,
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum_s: 0.0,
            max_s: 0.0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Records one request latency.
    pub fn record(&mut self, latency: Duration) {
        let s = latency.as_secs_f64();
        self.count += 1;
        self.sum_s += s;
        self.max_s = self.max_s.max(s);
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = if us == 0 {
            0
        } else {
            (u64::BITS - us.leading_zeros()) as usize
        };
        self.buckets[idx.min(LATENCY_BUCKETS - 1)] += 1;
    }

    /// Mean latency in seconds (0 when nothing was recorded).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile latency in seconds
    /// (`q` in `[0, 1]`): the upper edge of the histogram bucket the
    /// quantile falls in. 0 when nothing was recorded.
    pub fn quantile_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Bucket i spans latencies below 2^i µs.
                return (1u64 << i) as f64 * 1e-6;
            }
        }
        self.max_s
    }
}

/// Per-tenant admission/completion accounting for multi-tenant front
/// ends. The in-process service has no tenant dimension — every
/// [`ServiceStats`](crate::ServiceStats) it snapshots carries an empty
/// tenant list — but a front end multiplexing many clients onto the
/// intake queue (e.g. `simspatial-net`'s TCP server, which admits tenants
/// by weighted deficit round-robin) maintains one of these per declared
/// tenant and injects them into the snapshots it exports.
#[derive(Debug, Clone, Default)]
pub struct TenantStats {
    /// Tenant name as declared at handshake.
    pub name: String,
    /// Configured fair-admission weight (share of intake capacity under
    /// contention).
    pub weight: u32,
    /// Requests admitted into the shared intake queue on this tenant's
    /// behalf.
    pub admitted: u64,
    /// Requests shed before admission (staging quota exceeded) and
    /// answered with a protocol-level retry hint.
    pub shed: u64,
    /// Admitted requests that completed with a successful response.
    pub completed: u64,
    /// Admitted requests that completed with a typed error.
    pub failed: u64,
    /// Stage→completion latency distribution (includes fair-admission
    /// queueing, so a starved tenant shows up here, not just in `shed`).
    pub latency: LatencyHistogram,
}

/// A point-in-time snapshot of the service counters, returned by
/// [`ServiceHandle::stats`](crate::ServiceHandle::stats) and
/// [`SpatialService::stats`](crate::SpatialService::stats).
///
/// Everything a load test or operator dashboard needs: admission counters
/// and queue depth (backpressure), the batch-size histogram (is coalescing
/// actually forming big batches?), per-request latency percentiles, the
/// aggregated [`QueryStats`](simspatial_index::QueryStats)-style execution
/// accounting, and the backend's structure sizes.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed (responses delivered or abandoned by the client).
    pub completed: u64,
    /// `try_submit` rejections due to a full queue.
    pub rejected: u64,
    /// Requests currently queued (admission-time gauge).
    pub queue_depth: usize,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: usize,
    /// Scheduler dispatch cycles executed.
    pub dispatches: u64,
    /// Total requests over all dispatches (`/ dispatches` = mean coalesced
    /// batch size).
    pub coalesced_requests: u64,
    /// Dispatches by coalesced request count: bucket `i` counts dispatches
    /// that drained `[2^i, 2^(i+1))` requests.
    pub batch_hist: [u64; BATCH_BUCKETS],
    /// Seconds spent inside backend batch execution (excludes queueing).
    pub exec_elapsed_s: f64,
    /// Total results emitted across all dispatches.
    pub results: u64,
    /// Aggregated predicate counters across all dispatches.
    pub counts: PredicateCounts,
    /// Submit→completion latency distribution.
    pub latency: LatencyHistogram,
    /// Element updates applied through the write path (after
    /// last-write-wins coalescing of duplicate ids per application).
    pub updates_applied: u64,
    /// Elements whose placement changed while applying updates: shard
    /// migrations on a sharded backend, structural modifications (cell
    /// switches, reinsertions, rebuild-touched elements) on a single
    /// engine.
    pub migrations: u64,
    /// Updates not applied: unknown ids plus superseded duplicates.
    pub updates_skipped: u64,
    /// Element updates shipped into shard lanes before the executor
    /// decided what to touch. `updates_shipped / structural_touches` is
    /// the write-amplification ratio: a rebuild charges every surviving
    /// element, an incremental application only the dirty cells/nodes.
    pub updates_shipped: u64,
    /// Elements structurally touched while applying writes (moved between
    /// cells/nodes, reinserted, or rewritten by a rebuild).
    pub structural_touches: u64,
    /// Updates absorbed in place by an incremental executor: geometry
    /// rewritten with no structural work at all.
    pub updates_absorbed: u64,
    /// Whole-shard index rebuilds performed by write applications.
    pub shard_rebuilds: u64,
    /// Shard write lanes served incrementally where the rebuild fallback
    /// would otherwise have run.
    pub rebuilds_avoided: u64,
    /// Elements added through `Request::Insert` (planner-allocated ids).
    pub elements_inserted: u64,
    /// Elements tombstoned through `Request::Remove`.
    pub elements_removed: u64,
    /// Backend update applications executed (one per coalesced write run).
    pub update_dispatches: u64,
    /// Total element updates over all applications (`/ update_dispatches`
    /// = mean coalesced update batch size).
    pub coalesced_updates: u64,
    /// Update applications by coalesced update count: bucket `i` counts
    /// applications that carried `[2^i, 2^(i+1))` element updates.
    pub update_hist: [u64; BATCH_BUCKETS],
    /// Backend structure bytes (index + replicas + scratch + router),
    /// captured at service start and refreshed after every update
    /// application (so post-migration shrink is visible).
    pub memory_bytes: usize,
    /// Elements per backend shard (one entry for unsharded backends);
    /// refreshed after every update application.
    pub shard_sizes: Vec<usize>,
    /// Panics caught anywhere in the serving path: shard-worker jobs
    /// supervised inside the backend plus backend panics that unwound to
    /// the dispatcher and were absorbed there.
    pub panics_caught: u64,
    /// Shards successfully rebuilt from the planner's element store after
    /// a panic.
    pub shard_restarts: u64,
    /// Shards declared dead (restart budget exhausted / no rebuild path).
    pub shards_dead: u64,
    /// Backend pool jobs executed by a worker other than the owner of the
    /// queue they were scattered to — how often work-stealing rebalanced
    /// an uneven shard split. Zero for unsharded backends.
    pub worker_steals: u64,
    /// Per-pool-worker cumulative busy time (nanoseconds executing shard
    /// jobs). The spread across entries shows load imbalance; empty for
    /// backends without a worker pool.
    pub worker_busy_ns: Vec<u64>,
    /// Requests completed with `RecvError::DeadlineExceeded` — shed in the
    /// queue or expired by completion time.
    pub deadline_expired: u64,
    /// Client-side backoff retries taken by `submit_with_retry` across all
    /// handles.
    pub retries_attempted: u64,
    /// Successful range/count responses that skipped dead shards (their
    /// results are lower bounds over the surviving shards).
    pub partial_responses: u64,
    /// Requests completed with `RecvError::WorkerFailed`.
    pub failed_requests: u64,
    /// The last published epoch (0 for backends without snapshot support
    /// — see [`Consistency`](crate::Consistency)). Epoch 0 publishes at
    /// service start; every applied write barrier publishes the next.
    pub current_epoch: u64,
    /// Successful epoch publications over the service lifetime. While the
    /// service is healthy this is exactly `current_epoch + 1` (the startup
    /// epoch plus one per write barrier): a publish interrupted by a
    /// caught panic is retried and counted only when it lands, so no epoch
    /// is ever skipped or published twice.
    pub epochs_published: u64,
    /// Reads served at `Consistency::Snapshot`/`ReadYourWrites` from a
    /// published snapshot instead of the barrier path.
    pub snapshot_reads: u64,
    /// Snapshot reads that were hoisted over at least one write barrier
    /// admitted before them in the same dispatch — reads whose (stale but
    /// consistent) answer is the relaxation's visible payoff: each one
    /// skipped waiting on a write application. `snapshot_reads -
    /// stale_reads` ran with no write pending anyway.
    pub stale_reads: u64,
    /// Bytes currently held by published per-shard snapshot copies
    /// (refreshed every dispatch). Bounded by one snapshot per shard:
    /// publishing a shard's next snapshot frees its previous one, so this
    /// gauge returns to ~one-copy baseline once readers drain — the
    /// epoch-reclamation property test pins this.
    pub snapshot_clone_bytes: u64,
    /// Per-tenant admission accounting, populated by multi-tenant front
    /// ends (empty for in-process services — see [`TenantStats`]).
    pub tenants: Vec<TenantStats>,
}

impl ServiceStats {
    /// Mean number of requests coalesced per dispatch.
    pub fn mean_batch(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.coalesced_requests as f64 / self.dispatches as f64
        }
    }

    /// Mean number of element updates coalesced per backend update
    /// application.
    pub fn mean_update_batch(&self) -> f64 {
        if self.update_dispatches == 0 {
            0.0
        } else {
            self.coalesced_updates as f64 / self.update_dispatches as f64
        }
    }

    /// Machine-readable JSON snapshot (hand-rolled — the offline build has
    /// no serde). Single line, stable key order; latency histograms are
    /// summarized as mean/p50/p95/p99/max in microseconds. This is the
    /// payload a `Stats` wire request returns and the bench drivers embed
    /// in their reports.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(
            s,
            "\"submitted\":{},\"completed\":{},\"rejected\":{},\"queue_depth\":{},\"max_queue_depth\":{}",
            self.submitted, self.completed, self.rejected, self.queue_depth, self.max_queue_depth
        );
        let _ = write!(
            s,
            ",\"dispatches\":{},\"coalesced_requests\":{},\"mean_batch\":{:.3}",
            self.dispatches,
            self.coalesced_requests,
            self.mean_batch()
        );
        let _ = write!(
            s,
            ",\"exec_elapsed_s\":{:.6},\"results\":{}",
            self.exec_elapsed_s, self.results
        );
        s.push_str(",\"latency\":");
        latency_json(&mut s, &self.latency);
        let _ = write!(
            s,
            ",\"updates_applied\":{},\"migrations\":{},\"updates_skipped\":{},\"elements_inserted\":{},\"elements_removed\":{}",
            self.updates_applied,
            self.migrations,
            self.updates_skipped,
            self.elements_inserted,
            self.elements_removed
        );
        let _ = write!(
            s,
            ",\"panics_caught\":{},\"shard_restarts\":{},\"shards_dead\":{},\"deadline_expired\":{},\"retries_attempted\":{},\"partial_responses\":{},\"failed_requests\":{}",
            self.panics_caught,
            self.shard_restarts,
            self.shards_dead,
            self.deadline_expired,
            self.retries_attempted,
            self.partial_responses,
            self.failed_requests
        );
        let _ = write!(
            s,
            ",\"current_epoch\":{},\"epochs_published\":{},\"snapshot_reads\":{},\"stale_reads\":{},\"snapshot_clone_bytes\":{}",
            self.current_epoch,
            self.epochs_published,
            self.snapshot_reads,
            self.stale_reads,
            self.snapshot_clone_bytes
        );
        let _ = write!(s, ",\"memory_bytes\":{}", self.memory_bytes);
        s.push_str(",\"shard_sizes\":[");
        for (i, sz) in self.shard_sizes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{sz}");
        }
        s.push_str("],\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":{},\"weight\":{},\"admitted\":{},\"shed\":{},\"completed\":{},\"failed\":{},\"latency\":",
                json_string(&t.name),
                t.weight,
                t.admitted,
                t.shed,
                t.completed,
                t.failed
            );
            latency_json(&mut s, &t.latency);
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Multi-line human-readable summary (for examples and harnesses).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "requests: {} submitted, {} completed, {} rejected (queue depth {}, max {})\n",
            self.submitted, self.completed, self.rejected, self.queue_depth, self.max_queue_depth
        ));
        s.push_str(&format!(
            "dispatches: {} (mean batch {:.2} requests)\n",
            self.dispatches,
            self.mean_batch()
        ));
        s.push_str(&format!(
            "latency: mean {:.1}µs  p50 ≤{:.1}µs  p95 ≤{:.1}µs  p99 ≤{:.1}µs  max {:.1}µs\n",
            self.latency.mean_s() * 1e6,
            self.latency.quantile_s(0.50) * 1e6,
            self.latency.quantile_s(0.95) * 1e6,
            self.latency.quantile_s(0.99) * 1e6,
            self.latency.max_s * 1e6,
        ));
        s.push_str(&format!(
            "execution: {:.3}s in backend, {} results, {} tree / {} element tests\n",
            self.exec_elapsed_s, self.results, self.counts.tree_tests, self.counts.element_tests
        ));
        s.push_str(&format!(
            "writes: {} applied, {} migrations, {} skipped in {} applications (mean update batch {:.2})\n",
            self.updates_applied,
            self.migrations,
            self.updates_skipped,
            self.update_dispatches,
            self.mean_update_batch()
        ));
        s.push_str(&format!(
            "write amp: {} shipped → {} structural + {} absorbed ({} rebuilds, {} avoided); {} inserted, {} removed\n",
            self.updates_shipped,
            self.structural_touches,
            self.updates_absorbed,
            self.shard_rebuilds,
            self.rebuilds_avoided,
            self.elements_inserted,
            self.elements_removed,
        ));
        s.push_str(&format!(
            "failures: {} panics caught, {} shard restarts, {} shards dead, {} deadline-expired, {} failed, {} partial, {} retries\n",
            self.panics_caught,
            self.shard_restarts,
            self.shards_dead,
            self.deadline_expired,
            self.failed_requests,
            self.partial_responses,
            self.retries_attempted,
        ));
        s.push_str(&format!(
            "epochs: current {}, {} published, {} snapshot reads ({} stale), {} snapshot bytes\n",
            self.current_epoch,
            self.epochs_published,
            self.snapshot_reads,
            self.stale_reads,
            self.snapshot_clone_bytes,
        ));
        if !self.worker_busy_ns.is_empty() {
            let busy_ms: Vec<String> = self
                .worker_busy_ns
                .iter()
                .map(|&ns| format!("{:.1}", ns as f64 / 1e6))
                .collect();
            s.push_str(&format!(
                "pool: {} workers, busy [{}] ms, {} steals\n",
                self.worker_busy_ns.len(),
                busy_ms.join(", "),
                self.worker_steals,
            ));
        }
        for t in &self.tenants {
            s.push_str(&format!(
                "tenant {}: weight {}, {} admitted, {} shed, {} completed, {} failed, p99 ≤{:.1}µs\n",
                t.name,
                t.weight,
                t.admitted,
                t.shed,
                t.completed,
                t.failed,
                t.latency.quantile_s(0.99) * 1e6,
            ));
        }
        s.push_str(&format!(
            "backend: {} bytes, shard sizes {:?}",
            self.memory_bytes, self.shard_sizes
        ));
        s
    }
}

/// Appends the JSON summary object of one latency histogram
/// (microsecond-scaled mean/p50/p95/p99/max plus the count).
fn latency_json(out: &mut String, h: &LatencyHistogram) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"count\":{},\"mean_us\":{:.1},\"p50_us\":{:.1},\"p95_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{:.1}}}",
        h.count,
        h.mean_s() * 1e6,
        h.quantile_s(0.50) * 1e6,
        h.quantile_s(0.95) * 1e6,
        h.quantile_s(0.99) * 1e6,
        h.max_s * 1e6,
    );
}

/// Minimal JSON string escaping for tenant names.
fn json_string(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_histogram_percentiles() {
        let mut h = LatencyHistogram::default();
        for us in [1u64, 2, 4, 100, 100, 100, 100, 100, 10_000, 50_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count, 10);
        assert!(h.mean_s() > 0.0);
        // p50 falls in the 100µs cluster → upper bound 128µs.
        let p50 = h.quantile_s(0.5);
        assert!((100e-6..=256e-6).contains(&p50), "p50 = {p50}");
        // p99 falls at the 50ms outlier → upper bound 65.536ms.
        let p99 = h.quantile_s(0.99);
        assert!((50e-3..=128e-3).contains(&p99), "p99 = {p99}");
        assert!(h.quantile_s(0.0) > 0.0);
        assert_eq!(LatencyHistogram::default().quantile_s(0.5), 0.0);
    }

    #[test]
    fn mean_batch_handles_zero() {
        assert_eq!(ServiceStats::default().mean_batch(), 0.0);
    }

    #[test]
    fn stats_json_shape() {
        let mut stats = ServiceStats {
            submitted: 7,
            completed: 6,
            ..ServiceStats::default()
        };
        stats.latency.record(Duration::from_micros(120));
        stats.shard_sizes = vec![3, 4];
        stats.tenants.push(TenantStats {
            name: "si\"m".into(),
            weight: 9,
            admitted: 5,
            shed: 2,
            ..TenantStats::default()
        });
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"submitted\":7"), "{json}");
        assert!(json.contains("\"shard_sizes\":[3,4]"), "{json}");
        assert!(json.contains("\"name\":\"si\\\"m\""), "{json}");
        assert!(json.contains("\"weight\":9"), "{json}");
        assert!(json.contains("\"shed\":2"), "{json}");
        assert!(json.contains("\"p99_us\""), "{json}");
        assert!(!json.contains('\n'), "single line: {json}");
    }
}
