//! Deterministic fault injection: seeded fault schedules and the chaos
//! backend wrapper that executes them.
//!
//! The supervision machinery (panic isolation, shard quarantine/restart,
//! typed failure completion) is only trustworthy if the whole failure
//! matrix actually runs — so this module makes failures an *input*. A
//! [`FaultPlan`] is a deterministic schedule of faults keyed by backend
//! operation index (and optionally shard); [`ChaosBackend`] wraps any
//! [`ServiceBackend`] and injects them. Same plan, same request sequence →
//! the exact same failures, every run, in ordinary `cargo test`:
//!
//! * **Dispatcher-level faults** (`shard: None`) fire inside the chaos
//!   wrapper on the scheduler thread, *before* the inner backend is
//!   touched — a panicking/unresponsive backend call. Because the inner
//!   backend is never reached, an injected failure is a clean no-op on the
//!   dataset, which is what lets differential chaos tests compare the
//!   surviving responses byte-for-byte against a serial oracle.
//! * **Worker-level faults** (`shard: Some(s)`) are installed into a
//!   [`ShardedBackend`](crate::ShardedBackend)'s shard workers via
//!   [`ServiceBackend::install_worker_faults`] and fire on the worker
//!   thread, keyed by that shard's **job sequence number** (which survives
//!   worker restarts) — a crashing or slow shard. Only [`FaultKind::Panic`]
//!   and [`FaultKind::Delay`] make sense there ([`FaultKind::DropResponse`]
//!   is a dispatcher-level fault: a response that never arrives).

use crate::backend::{
    BackendTelemetry, BatchReport, QueryRun, QueryRunReport, QueryRunResults, ServiceBackend,
    UpdateReport,
};
use simspatial_geom::{Aabb, ElementId, Point3, Shape};
use simspatial_index::{BatchResults, KnnBatchResults, UpdateStats};
use std::time::Duration;

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the injection point (dispatcher call or shard worker job).
    /// Exercises the catch-unwind isolation, quarantine and restart paths.
    Panic,
    /// Sleep for the given duration before executing normally — a slow
    /// backend call or straggler shard. Exercises deadlines: the work
    /// completes, but possibly after the requests' deadlines expired.
    Delay(Duration),
    /// The operation's response is lost: queries return empty result
    /// buffers (the scheduler detects the arity mismatch and fails the
    /// affected requests), writes are not applied and report failure.
    /// Dispatcher-level only.
    DropResponse,
}

/// One scheduled fault: fire `kind` at operation `op` — the dispatcher's
/// backend-call index when `shard` is `None`, or shard `s`'s job sequence
/// number when `shard` is `Some(s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Backend-call index (dispatcher faults) or per-shard job sequence
    /// number (worker faults) the fault fires at.
    pub op: u64,
    /// `None` → dispatcher-level; `Some(s)` → shard `s`'s worker.
    pub shard: Option<usize>,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seeded schedule of injected faults.
///
/// Build one explicitly with the `*_at`/`*_on_shard` methods, generate one
/// pseudo-randomly with [`FaultPlan::random`], or pick the seed up from the
/// `SIMSPATIAL_FAULT_SEED` environment variable ([`FaultPlan::from_env`] —
/// how CI runs a fresh randomized chaos schedule on every build while
/// keeping any failure reproducible from the echoed seed).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<ScheduledFault>,
    /// Epoch-publication panics, keyed by **publish attempt index** — a
    /// separate counter from `op`, so publish faults joining a plan never
    /// shift an existing op-keyed schedule (every `publish` call consumes
    /// one index, retried attempts included).
    publish_faults: Vec<u64>,
}

/// `splitmix64` — the workspace's standard tiny deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing — the supervision-overhead baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// The seed this plan was generated from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    fn push(mut self, op: u64, shard: Option<usize>, kind: FaultKind) -> Self {
        self.faults.push(ScheduledFault { op, shard, kind });
        self
    }

    /// Panic on the dispatcher's `op`-th backend call.
    pub fn panic_at(self, op: u64) -> Self {
        self.push(op, None, FaultKind::Panic)
    }

    /// Delay the dispatcher's `op`-th backend call by `d`.
    pub fn delay_at(self, op: u64, d: Duration) -> Self {
        self.push(op, None, FaultKind::Delay(d))
    }

    /// Drop the response of the dispatcher's `op`-th backend call.
    pub fn drop_at(self, op: u64) -> Self {
        self.push(op, None, FaultKind::DropResponse)
    }

    /// Panic shard `shard`'s worker on its `seq`-th job.
    pub fn panic_on_shard(self, shard: usize, seq: u64) -> Self {
        self.push(seq, Some(shard), FaultKind::Panic)
    }

    /// Panic the `publish_idx`-th epoch-publication attempt — the fault
    /// fires **between** barrier application and epoch publication (the
    /// write is applied, the new epoch is not yet published), the exact
    /// window the snapshot chaos suite probes. The scheduler must retry
    /// and publish the epoch exactly once: the retry is the next publish
    /// attempt, so a lone fault at `publish_idx` lets attempt
    /// `publish_idx + 1` succeed. Publish faults are keyed by their own
    /// attempt counter and never shift an op-keyed schedule.
    pub fn panic_at_publish(mut self, publish_idx: u64) -> Self {
        self.publish_faults.push(publish_idx);
        self
    }

    /// True when the `publish_idx`-th publish attempt is scheduled to
    /// panic.
    pub fn publish_panic(&self, publish_idx: u64) -> bool {
        self.publish_faults.contains(&publish_idx)
    }

    /// Number of scheduled publish-attempt panics.
    pub fn planned_publish_panics(&self) -> u64 {
        self.publish_faults.len() as u64
    }

    /// Delay shard `shard`'s worker by `d` on its `seq`-th job.
    pub fn delay_on_shard(self, shard: usize, seq: u64, d: Duration) -> Self {
        self.push(seq, Some(shard), FaultKind::Delay(d))
    }

    /// A pseudo-random plan over roughly `ops` dispatcher operations and
    /// `shards` shard workers, fully determined by `seed`: the same seed
    /// always yields the same plan. Mixes all three fault kinds at the
    /// dispatcher level and panic/delay faults at the worker level
    /// (`shards == 0` → dispatcher faults only, for unsharded backends).
    pub fn random(seed: u64, ops: u64, shards: usize) -> Self {
        let mut state = seed;
        let mut plan = Self {
            seed,
            faults: Vec::new(),
            publish_faults: Vec::new(),
        };
        let n_faults = (ops / 6).clamp(1, 24);
        for _ in 0..n_faults {
            let op = splitmix64(&mut state) % ops.max(1);
            let roll = splitmix64(&mut state);
            let worker_level = shards > 0 && roll.is_multiple_of(2);
            let kind = match splitmix64(&mut state) % 3 {
                0 => FaultKind::Panic,
                1 => FaultKind::Delay(Duration::from_micros(200 + splitmix64(&mut state) % 800)),
                // A worker can't "drop" a response (the gather would hang);
                // lost responses are a dispatcher-level phenomenon.
                _ if worker_level => FaultKind::Panic,
                _ => FaultKind::DropResponse,
            };
            let shard = worker_level.then(|| (splitmix64(&mut state) % shards as u64) as usize);
            plan.faults.push(ScheduledFault { op, shard, kind });
        }
        plan
    }

    /// A randomized plan seeded from the `SIMSPATIAL_FAULT_SEED`
    /// environment variable, or `None` when it is unset/unparsable. CI sets
    /// a fresh value per run and echoes it on failure, so any red chaos run
    /// reproduces locally with the same variable.
    pub fn from_env(ops: u64, shards: usize) -> Option<Self> {
        let seed = std::env::var("SIMSPATIAL_FAULT_SEED").ok()?.parse().ok()?;
        Some(Self::random(seed, ops, shards))
    }

    /// The fault scheduled for the dispatcher's `op`-th backend call, if
    /// any (first match wins when a plan stacked several on one op).
    pub fn dispatcher_fault(&self, op: u64) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.shard.is_none() && f.op == op)
            .map(|f| f.kind)
    }

    /// The worker-level faults as `(shard, job sequence, kind)` triples —
    /// the payload [`ServiceBackend::install_worker_faults`] accepts.
    /// `DropResponse` entries are ignored (dispatcher-level only).
    pub fn worker_faults(&self) -> Vec<(usize, u64, FaultKind)> {
        self.faults
            .iter()
            .filter_map(|f| {
                let shard = f.shard?;
                (f.kind != FaultKind::DropResponse).then_some((shard, f.op, f.kind))
            })
            .collect()
    }

    /// Number of scheduled [`FaultKind::Panic`] faults (dispatcher +
    /// worker) — what the chaos tests compare telemetry counters against.
    pub fn planned_panics(&self) -> u64 {
        self.faults
            .iter()
            .filter(|f| f.kind == FaultKind::Panic)
            .count() as u64
    }
}

/// A [`ServiceBackend`] wrapper executing a [`FaultPlan`]: dispatcher-level
/// faults fire here (keyed by a backend-call counter), worker-level faults
/// are installed into the inner backend's shard workers at construction.
///
/// Injected dispatcher panics fire **before** the inner backend is called,
/// so the inner state is untouched and [`ChaosBackend::recover`] can
/// truthfully report the backend consistent — the service keeps serving.
/// Everything else (stats, telemetry, write support) forwards to the inner
/// backend unchanged, which is also what the supervision-overhead bench
/// wraps with an *empty* plan to price the wrapper itself.
pub struct ChaosBackend<B> {
    inner: B,
    plan: FaultPlan,
    /// Backend-call index: every `range_batch`/`knn_batch`/`update_batch`
    /// consumes one, panicking calls included — the op sequence only
    /// depends on the request sequence, never on fault outcomes.
    op: u64,
    /// Set immediately before an injected panic unwinds, so
    /// [`ChaosBackend::recover`] knows the inner backend was never reached.
    injected_panic: bool,
    /// Publish-attempt index: every `publish` call consumes one (panicking
    /// attempts included), independent of the `op` counter.
    publishes: u64,
}

impl<B: ServiceBackend> ChaosBackend<B> {
    /// Wraps `inner`, installing the plan's worker-level faults into it.
    pub fn new(mut inner: B, plan: FaultPlan) -> Self {
        inner.install_worker_faults(&plan.worker_faults());
        Self {
            inner,
            plan,
            op: 0,
            injected_panic: false,
            publishes: 0,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Consumes one op index and returns its scheduled fault, panicking
    /// right here when the schedule says so.
    fn next_op(&mut self) -> Option<FaultKind> {
        let op = self.op;
        self.op += 1;
        let fault = self.plan.dispatcher_fault(op);
        if fault == Some(FaultKind::Panic) {
            // Flag first: the unwind leaves `self` behind for `recover`.
            self.injected_panic = true;
            panic!("chaos: injected dispatcher panic at op {op}");
        }
        fault
    }
}

impl<B: ServiceBackend> ServiceBackend for ChaosBackend<B> {
    fn range_batch(&mut self, queries: &[Aabb], out: &mut BatchResults) -> BatchReport {
        match self.next_op() {
            Some(FaultKind::DropResponse) => {
                // The response never arrives: the out buffer stays empty and
                // the scheduler detects the arity mismatch. The inner
                // backend is not consulted (queries are side-effect free
                // either way).
                out.reset();
                BatchReport::default()
            }
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.range_batch(queries, out)
            }
            _ => self.inner.range_batch(queries, out),
        }
    }

    fn knn_batch(&mut self, points: &[Point3], k: usize, out: &mut KnnBatchResults) -> BatchReport {
        match self.next_op() {
            Some(FaultKind::DropResponse) => {
                out.reset();
                BatchReport::default()
            }
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.knn_batch(points, k, out)
            }
            _ => self.inner.knn_batch(points, k, out),
        }
    }

    fn update_batch(&mut self, updates: &[(ElementId, Shape)]) -> UpdateReport {
        match self.next_op() {
            Some(FaultKind::DropResponse) => {
                // The write is lost before reaching the backend: a clean
                // no-op on the dataset, reported as a failure so the write
                // requests complete with a typed error (the serial oracle
                // must skip the same write).
                UpdateReport {
                    stats: UpdateStats {
                        skipped: updates.len() as u64,
                        ..UpdateStats::default()
                    },
                    failed: Some(0),
                }
            }
            Some(FaultKind::Delay(d)) => {
                std::thread::sleep(d);
                self.inner.update_batch(updates)
            }
            _ => self.inner.update_batch(updates),
        }
    }

    fn supports_updates(&self) -> bool {
        self.inner.supports_updates()
    }

    // Membership batches forward directly without consuming a fault-plan
    // op: fault schedules are keyed by (dispatcher) backend-call index over
    // the query/update call sequence, and membership ops joining a plan
    // must not shift existing schedules. Worker-level faults installed via
    // `install_worker_faults` still fire inside membership lanes.
    fn insert_batch(&mut self, shapes: &[Shape]) -> (Vec<ElementId>, UpdateReport) {
        self.inner.insert_batch(shapes)
    }

    fn remove_batch(&mut self, ids: &[ElementId]) -> UpdateReport {
        self.inner.remove_batch(ids)
    }

    fn supports_membership(&self) -> bool {
        self.inner.supports_membership()
    }

    // The snapshot hooks forward without consuming a dispatcher op — like
    // membership, epoch machinery joining a plan must not shift an
    // existing op-keyed schedule. Publish panics have their own schedule
    // (`FaultPlan::panic_at_publish`), keyed by publish attempt index.
    fn supports_snapshots(&self) -> bool {
        self.inner.supports_snapshots()
    }

    fn publish(&mut self, epoch: u64) {
        let idx = self.publishes;
        self.publishes += 1;
        if self.plan.publish_panic(idx) {
            // The barrier is applied, the epoch is not yet published: the
            // exact window the snapshot chaos suite probes. Inner state is
            // untouched by the panic, so `recover` reports healthy and the
            // scheduler's retry (the next attempt index) completes the
            // publication exactly once.
            self.injected_panic = true;
            panic!("chaos: injected panic at publish attempt {idx}");
        }
        self.inner.publish(epoch);
    }

    fn snapshot_query_run(&mut self, run: &QueryRun, out: &mut QueryRunResults) -> QueryRunReport {
        self.inner.snapshot_query_run(run, out)
    }

    fn snapshot_clone_bytes(&self) -> u64 {
        self.inner.snapshot_clone_bytes()
    }

    fn recover(&mut self, after_write: bool) -> bool {
        if self.injected_panic {
            // The panic was ours and fired before the inner backend was
            // called: the inner state is untouched, keep serving.
            self.injected_panic = false;
            true
        } else {
            self.inner.recover(after_write)
        }
    }

    fn telemetry(&self) -> BackendTelemetry {
        self.inner.telemetry()
    }

    fn install_worker_faults(&mut self, faults: &[(usize, u64, FaultKind)]) {
        self.inner.install_worker_faults(faults);
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn shard_sizes(&self) -> Vec<usize> {
        self.inner.shard_sizes()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(42, 100, 4);
        let b = FaultPlan::random(42, 100, 4);
        assert_eq!(a.faults(), b.faults());
        assert_eq!(a.seed(), 42);
        assert!(!a.is_empty());
        let c = FaultPlan::random(43, 100, 4);
        assert_ne!(a.faults(), c.faults(), "different seeds, different plans");
        // Every fault lands inside the op/shard budget.
        for f in a.faults() {
            assert!(f.op < 100);
            if let Some(s) = f.shard {
                assert!(s < 4);
                assert_ne!(f.kind, FaultKind::DropResponse);
            }
        }
    }

    #[test]
    fn builder_and_lookups() {
        let plan = FaultPlan::new()
            .panic_at(3)
            .delay_at(5, Duration::from_millis(1))
            .drop_at(7)
            .panic_on_shard(1, 2)
            .delay_on_shard(0, 4, Duration::from_millis(2));
        assert_eq!(plan.len(), 5);
        assert_eq!(plan.dispatcher_fault(3), Some(FaultKind::Panic));
        assert_eq!(plan.dispatcher_fault(7), Some(FaultKind::DropResponse));
        assert_eq!(plan.dispatcher_fault(2), None);
        // Shard faults never surface as dispatcher faults.
        assert_eq!(plan.dispatcher_fault(4), None);
        let workers = plan.worker_faults();
        assert_eq!(workers.len(), 2);
        assert!(workers.contains(&(1, 2, FaultKind::Panic)));
        assert_eq!(plan.planned_panics(), 2);
    }

    #[test]
    fn unsharded_random_plans_stay_dispatcher_level() {
        let plan = FaultPlan::random(7, 64, 0);
        assert!(plan.worker_faults().is_empty());
    }
}
