//! The client-facing request/response vocabulary and completion tickets.

use simspatial_geom::{Aabb, ElementId, Point3};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One client request: a small batch of queries of one family, or a batch
/// of element updates. The scheduler coalesces the queries of many
/// concurrent requests into the large per-dispatch batches the SoA kernel
/// is fastest at, then splits the results back per request; consecutive
/// write requests coalesce into one backend update application.
///
/// **Write-barrier ordering**: every write request is a barrier in the
/// admission order. A query admitted *before* a write sees the pre-write
/// dataset; a query admitted *after* it sees the post-write dataset —
/// exactly as if all requests ran serially in admission order
/// (differentially tested in `tests/service_stress.rs`).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Range queries: one result id list per box, in the order the index
    /// plan emits (identical to a serial `QueryEngine::range_collect`).
    Range(Vec<Aabb>),
    /// Range queries where only the per-box result counts are wanted —
    /// cheapest way to probe selectivity over the wire.
    RangeCount(Vec<Aabb>),
    /// kNN probes, each with its own `k`: the `k` nearest elements per
    /// probe in ascending `(distance, id)` order. Probes with equal `k`
    /// across concurrent requests coalesce into one batched kernel pass.
    Knn(Vec<(Point3, usize)>),
    /// Sparse element updates: each `(id, aabb)` entry replaces that
    /// element's geometry with the box `aabb` (its new envelope — the
    /// paper's indexes approximate elements by bounding box, and the wire
    /// vocabulary does the same). Duplicate ids — within one request or
    /// across requests coalesced into the same application — resolve
    /// last-write-wins in admission order. Requires a writable backend
    /// ([`SubmitError::ReadOnly`] otherwise).
    Update(Vec<(ElementId, Aabb)>),
    /// One whole simulation tick: entry `i` is the new envelope of element
    /// `i` (ids are implicit positions, matching the dataset convention).
    /// The bulk mirror of [`Request::Update`] for stepping an entire
    /// moving dataset through the same admission path as the queries that
    /// monitor it. Requires a writable backend.
    Step(Vec<Aabb>),
    /// A **delta tick**: one simulation tick carrying only the elements
    /// that actually moved, as explicit `(id, new envelope)` pairs. Same
    /// write-barrier ordering and cross-shard migration semantics as
    /// [`Request::Step`] — a delta tick followed by queries is
    /// indistinguishable from the full tick it abbreviates — but the wire
    /// payload and the backend write work scale with the *moved* count,
    /// not the dataset size. Emitted by `ServedSimulation` when the moved
    /// fraction falls below its delta threshold. Requires a writable
    /// backend.
    StepDelta(Vec<(ElementId, Aabb)>),
    /// Inserts new elements with the given envelopes. The backend
    /// allocates fresh ids (ascending, in input order) and returns them in
    /// [`Response::Insert`]. A write barrier like `Update`. Requires a
    /// backend with membership support ([`SubmitError::ReadOnly`]
    /// otherwise — only the sharded backend's planner can allocate ids).
    Insert(Vec<Aabb>),
    /// Removes elements by id. Removed ids are tombstoned: they never come
    /// back, later updates to them are skipped, and queries no longer see
    /// them. Unknown/duplicate ids are counted skipped. A write barrier.
    /// Requires a backend with membership support.
    Remove(Vec<ElementId>),
}

impl Request {
    /// Number of individual queries/probes/updates carried by this request.
    pub fn len(&self) -> usize {
        match self {
            Request::Range(qs) | Request::RangeCount(qs) => qs.len(),
            Request::Knn(ps) => ps.len(),
            Request::Update(us) => us.len(),
            Request::Step(envs) | Request::Insert(envs) => envs.len(),
            Request::StepDelta(moves) => moves.len(),
            Request::Remove(ids) => ids.len(),
        }
    }

    /// True when the request carries no queries or updates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the write-path variants
    /// (`Update`/`Step`/`StepDelta`/`Insert`/`Remove`), which act as write
    /// barriers in the admission order.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Update(_)
                | Request::Step(_)
                | Request::StepDelta(_)
                | Request::Insert(_)
                | Request::Remove(_)
        )
    }

    /// True for the membership-changing variants (`Insert`/`Remove`),
    /// which need a backend that can allocate and tombstone ids
    /// ([`ServiceBackend::supports_membership`](crate::ServiceBackend::supports_membership)).
    pub fn is_membership(&self) -> bool {
        matches!(self, Request::Insert(_) | Request::Remove(_))
    }
}

/// How strongly a request's answer must be ordered against the write
/// barriers in flight around it.
///
/// Writes ignore this field — every write is always a barrier in the
/// admission order and publishes a new epoch when applied. For reads it
/// selects which dataset version answers:
///
/// * [`Consistency::Snapshot`] (the default) answers from the **last
///   published epoch**: the scheduler hoists the read in front of any
///   write barriers queued in the same dispatch and runs it against the
///   per-shard snapshots published by the previous barrier. The answer
///   may be stale, but it is never torn — it equals the [`Barrier`]
///   answer evaluated at exactly the epoch the reply reports
///   (differentially tested in `tests/service_snapshot.rs`).
/// * [`Consistency::ReadYourWrites`] is `Snapshot` with a floor: the read
///   does not run until the published epoch reaches `min_epoch`. Pass the
///   [`Reply::epoch`] of your last acknowledged write to be guaranteed to
///   observe it (write acks carry the epoch that made the write visible).
/// * [`Consistency::Barrier`] is the pre-epoch semantics and the
///   differential oracle: the read runs in strict admission order against
///   the live dataset, paying for every write barrier ahead of it.
///
/// [`Barrier`]: Consistency::Barrier
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Read the last published epoch; never waits on pending writes.
    #[default]
    Snapshot,
    /// Read a published epoch `>= min_epoch` — snapshot freshness floored
    /// at the submitter's last acknowledged write.
    ReadYourWrites {
        /// The lowest epoch this read may observe (inclusive).
        min_epoch: u64,
    },
    /// Strict admission-order serialization behind every write barrier.
    Barrier,
}

/// The response to one [`Request`], shape-matched per variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-box result id lists, parallel to `Request::Range`.
    Range(Vec<Vec<ElementId>>),
    /// Per-box result counts, parallel to `Request::RangeCount`.
    RangeCount(Vec<u64>),
    /// Per-probe `(id, distance)` lists, parallel to `Request::Knn`.
    Knn(Vec<Vec<(ElementId, f32)>>),
    /// Acknowledgement of a `Request::Update`: the write barrier has been
    /// applied. Carries the number of update entries the request held —
    /// entries with unknown ids or superseded by later duplicates are
    /// included here but counted as skipped in the authoritative
    /// dataset-wide totals, [`ServiceStats`](crate::ServiceStats)
    /// `updates_applied`/`updates_skipped`.
    Update(u64),
    /// Acknowledgement of a `Request::Step`: the tick has been applied.
    /// Carries the number of envelope entries the tick held (see
    /// [`Response::Update`] for the carried-vs-applied distinction).
    Step(u64),
    /// Acknowledgement of a `Request::StepDelta`: the delta tick has been
    /// applied. Carries the number of moved-element entries it held.
    StepDelta(u64),
    /// Acknowledgement of a `Request::Insert`: the ids the backend
    /// allocated, ascending, parallel to the request's envelopes.
    Insert(Vec<ElementId>),
    /// Acknowledgement of a `Request::Remove`: the number of id entries
    /// the request held (unknown/duplicate ids are counted skipped in
    /// [`ServiceStats`](crate::ServiceStats), not here).
    Remove(u64),
}

impl Response {
    /// The range result lists, if this is a `Range` response.
    pub fn into_range(self) -> Option<Vec<Vec<ElementId>>> {
        match self {
            Response::Range(r) => Some(r),
            _ => None,
        }
    }

    /// The per-box counts, if this is a `RangeCount` response.
    pub fn into_range_counts(self) -> Option<Vec<u64>> {
        match self {
            Response::RangeCount(c) => Some(c),
            _ => None,
        }
    }

    /// The kNN result lists, if this is a `Knn` response.
    pub fn into_knn(self) -> Option<Vec<Vec<(ElementId, f32)>>> {
        match self {
            Response::Knn(r) => Some(r),
            _ => None,
        }
    }

    /// The carried entry count, if this is an `Update` or `Step` write
    /// acknowledgement (entries skipped as unknown/superseded are counted
    /// in [`ServiceStats`](crate::ServiceStats), not here).
    pub fn into_applied(self) -> Option<u64> {
        match self {
            Response::Update(n)
            | Response::Step(n)
            | Response::StepDelta(n)
            | Response::Remove(n) => Some(n),
            Response::Insert(ids) => Some(ids.len() as u64),
            _ => None,
        }
    }

    /// The allocated element ids, if this is an `Insert` response.
    pub fn into_inserted_ids(self) -> Option<Vec<ElementId>> {
        match self {
            Response::Insert(ids) => Some(ids),
            _ => None,
        }
    }
}

/// Why a submission was not accepted. Every variant hands the request back
/// so the caller can retry or reroute without cloning up front.
#[derive(Debug)]
pub enum SubmitError {
    /// The service has been shut down (or its dispatcher died).
    ShutDown(Request),
    /// The bounded intake queue is full (returned by
    /// [`ServiceHandle::try_submit`](crate::ServiceHandle::try_submit)
    /// only — the blocking `submit` waits instead). This is the
    /// backpressure signal: the client is producing faster than the
    /// service drains. The rejection carries the congestion gauges
    /// observed at rejection time, so backoff (client-side
    /// [`submit_with_retry`](crate::ServiceHandle::submit_with_retry), or
    /// a protocol-level retry hint in a network front end) can scale to
    /// actual congestion instead of blind jitter.
    Full {
        /// The rejected request, handed back for retry.
        request: Request,
        /// Queue depth observed at rejection time (≈ `capacity`; can lag
        /// a concurrent drain by a few entries).
        depth: usize,
        /// The intake queue bound
        /// ([`ServiceConfig::queue_cap`](crate::ServiceConfig::queue_cap)).
        capacity: usize,
        /// High-water mark of the queue depth over the service lifetime —
        /// `high_water` pinned at `capacity` means sustained overload,
        /// not a burst.
        high_water: usize,
    },
    /// A write request (`Update`/`Step`) was submitted to a service whose
    /// backend has no write path (no updater / no shard rebuild function).
    /// Rejected at admission so no write ever reaches a read-only backend.
    ReadOnly(Request),
}

impl SubmitError {
    /// Takes the rejected request back out of the error.
    pub fn into_request(self) -> Request {
        match self {
            SubmitError::ShutDown(r) | SubmitError::ReadOnly(r) => r,
            SubmitError::Full { request, .. } => request,
        }
    }

    /// Queue congestion at rejection time in `[0, 1]` — `depth/capacity`
    /// for [`SubmitError::Full`], `1.0` for the terminal variants (they
    /// never clear, so maximal backoff is the honest hint).
    pub fn congestion(&self) -> f64 {
        match self {
            SubmitError::Full {
                depth, capacity, ..
            } => (*depth as f64 / (*capacity).max(1) as f64).clamp(0.0, 1.0),
            _ => 1.0,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShutDown(_) => write!(f, "service is shut down"),
            SubmitError::Full {
                depth,
                capacity,
                high_water,
                ..
            } => write!(
                f,
                "service intake queue is full ({depth}/{capacity}, high-water {high_water})"
            ),
            SubmitError::ReadOnly(_) => write!(f, "service backend is read-only"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a [`Ticket`] produced no response. Every admitted ticket completes
/// with exactly one outcome — a [`Response`] or one of these — on every
/// service exit path; a ticket never hangs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The service shut down before completing this request.
    ShutDown,
    /// A backend worker failed while serving this request and could not be
    /// recovered in a way that preserves the request's correctness: a dead
    /// shard overlapping a kNN probe, a write lost to a shard death, or a
    /// dispatcher-level backend panic that poisoned the service.
    WorkerFailed {
        /// The shard the failure is attributed to (0 for unsharded
        /// backends and service-level poisoning).
        shard: usize,
    },
    /// The request's deadline expired — either before dispatch (shed at
    /// admission, the backend never saw it) or by completion time (the
    /// work ran but the answer arrived too late to be useful).
    DeadlineExceeded,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::ShutDown => {
                write!(f, "service shut down before completing the request")
            }
            RecvError::WorkerFailed { shard } => {
                write!(
                    f,
                    "backend worker failed serving the request (shard {shard})"
                )
            }
            RecvError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for RecvError {}

/// A completed request outcome plus its measured submit→completion latency
/// and coverage metadata — the scheduler-side payload behind a [`Ticket`].
#[derive(Debug)]
pub(crate) struct Completion {
    pub result: Result<Response, RecvError>,
    pub latency: Duration,
    pub shards_skipped: u32,
    pub epoch: u64,
}

/// A full completion record: the response, its latency, and degradation
/// metadata. Returned by [`Ticket::recv_reply`] for callers that need to
/// know whether a successful range/count response has partial coverage.
#[derive(Debug)]
pub struct Reply {
    /// The response payload.
    pub response: Response,
    /// Submit→completion latency as measured by the scheduler.
    pub latency: Duration,
    /// Dead shards skipped while serving this request (range/count only —
    /// nonzero means the result is a lower bound over the surviving
    /// shards, not the full dataset).
    pub shards_skipped: u32,
    /// The epoch this answer reflects. For reads: the published epoch the
    /// query ran against ([`Consistency::Snapshot`]/`ReadYourWrites`) or
    /// the live epoch at execution time ([`Consistency::Barrier`]). For
    /// writes: the epoch whose publication made this write visible — feed
    /// it back as `ReadYourWrites { min_epoch }` to observe your own
    /// write. Backends without snapshot support report 0 throughout.
    pub epoch: u64,
}

/// An in-flight request's completion slot. Obtained from
/// [`ServiceHandle::submit`](crate::ServiceHandle::submit); redeem it with
/// [`Ticket::recv`]. Tickets are independent of the handle that produced
/// them, so a client can pipeline: submit several requests, then collect.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Completion>,
    pub(crate) submitted: Instant,
}

impl Ticket {
    /// Blocks until the request completes. Errors if the service shuts
    /// down, a worker failure loses the request, or its deadline expires —
    /// never hangs: every admitted ticket is completed exactly once.
    pub fn recv(self) -> Result<Response, RecvError> {
        self.recv_timed().map(|(response, _)| response)
    }

    /// Like [`Ticket::recv`], additionally returning the request's
    /// submit→completion latency. The latency is measured by the scheduler
    /// on the monotonic clock ([`Instant`]): from the `submit`/`try_submit`
    /// call to the moment the completion was delivered into the ticket —
    /// it includes queueing and dispatch, not the caller's time-to-`recv`.
    pub fn recv_timed(self) -> Result<(Response, Duration), RecvError> {
        self.recv_reply().map(|r| (r.response, r.latency))
    }

    /// Blocks for the full completion record, including partial-coverage
    /// metadata (see [`Reply::shards_skipped`]).
    pub fn recv_reply(self) -> Result<Reply, RecvError> {
        match self.rx.recv() {
            Ok(c) => c.result.map(|response| Reply {
                response,
                latency: c.latency,
                shards_skipped: c.shards_skipped,
                epoch: c.epoch,
            }),
            Err(mpsc::RecvError) => Err(RecvError::ShutDown),
        }
    }

    /// Blocks at most `timeout` (measured here, on the caller's monotonic
    /// clock — independent of any service-side deadline on the request).
    /// `None` when the wait timed out with the request still in flight;
    /// the ticket stays redeemable afterwards.
    pub fn recv_deadline(&self, timeout: Duration) -> Option<Result<Response, RecvError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(c) => Some(c.result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(RecvError::ShutDown)),
        }
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_recv(&self) -> Option<Result<Response, RecvError>> {
        match self.rx.try_recv() {
            Ok(c) => Some(c.result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(RecvError::ShutDown)),
        }
    }

    /// When the request was submitted (for caller-side latency accounting).
    pub fn submitted_at(&self) -> Instant {
        self.submitted
    }
}
