//! The client-facing request/response vocabulary and completion tickets.

use simspatial_geom::{Aabb, ElementId, Point3};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// One client request: a small batch of queries of one family. The
/// scheduler coalesces the queries of many concurrent requests into the
/// large per-dispatch batches the SoA kernel is fastest at, then splits the
/// results back per request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Range queries: one result id list per box, in the order the index
    /// plan emits (identical to a serial `QueryEngine::range_collect`).
    Range(Vec<Aabb>),
    /// Range queries where only the per-box result counts are wanted —
    /// cheapest way to probe selectivity over the wire.
    RangeCount(Vec<Aabb>),
    /// kNN probes, each with its own `k`: the `k` nearest elements per
    /// probe in ascending `(distance, id)` order. Probes with equal `k`
    /// across concurrent requests coalesce into one batched kernel pass.
    Knn(Vec<(Point3, usize)>),
}

impl Request {
    /// Number of individual queries/probes carried by this request.
    pub fn len(&self) -> usize {
        match self {
            Request::Range(qs) | Request::RangeCount(qs) => qs.len(),
            Request::Knn(ps) => ps.len(),
        }
    }

    /// True when the request carries no queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The response to one [`Request`], shape-matched per variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-box result id lists, parallel to `Request::Range`.
    Range(Vec<Vec<ElementId>>),
    /// Per-box result counts, parallel to `Request::RangeCount`.
    RangeCount(Vec<u64>),
    /// Per-probe `(id, distance)` lists, parallel to `Request::Knn`.
    Knn(Vec<Vec<(ElementId, f32)>>),
}

impl Response {
    /// The range result lists, if this is a `Range` response.
    pub fn into_range(self) -> Option<Vec<Vec<ElementId>>> {
        match self {
            Response::Range(r) => Some(r),
            _ => None,
        }
    }

    /// The per-box counts, if this is a `RangeCount` response.
    pub fn into_range_counts(self) -> Option<Vec<u64>> {
        match self {
            Response::RangeCount(c) => Some(c),
            _ => None,
        }
    }

    /// The kNN result lists, if this is a `Knn` response.
    pub fn into_knn(self) -> Option<Vec<Vec<(ElementId, f32)>>> {
        match self {
            Response::Knn(r) => Some(r),
            _ => None,
        }
    }
}

/// Why a submission was not accepted. Both variants hand the request back
/// so the caller can retry or reroute without cloning up front.
#[derive(Debug)]
pub enum SubmitError {
    /// The service has been shut down (or its dispatcher died).
    ShutDown(Request),
    /// The bounded intake queue is full (returned by
    /// [`ServiceHandle::try_submit`](crate::ServiceHandle::try_submit)
    /// only — the blocking `submit` waits instead). This is the
    /// backpressure signal: the client is producing faster than the
    /// service drains.
    Full(Request),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShutDown(_) => write!(f, "service is shut down"),
            SubmitError::Full(_) => write!(f, "service intake queue is full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a [`Ticket`] produced no response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The service shut down before completing this request.
    ShutDown,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service shut down before completing the request")
    }
}

impl std::error::Error for RecvError {}

/// A completed response plus its measured submit→completion latency.
#[derive(Debug)]
pub(crate) struct Completion {
    pub response: Response,
    pub latency: Duration,
}

/// An in-flight request's completion slot. Obtained from
/// [`ServiceHandle::submit`](crate::ServiceHandle::submit); redeem it with
/// [`Ticket::recv`]. Tickets are independent of the handle that produced
/// them, so a client can pipeline: submit several requests, then collect.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Completion>,
    pub(crate) submitted: Instant,
}

impl Ticket {
    /// Blocks until the response is ready. Errors only if the service shuts
    /// down before completing the request.
    pub fn recv(self) -> Result<Response, RecvError> {
        self.recv_timed().map(|(response, _)| response)
    }

    /// Like [`Ticket::recv`], additionally returning the request's
    /// submit→completion latency as measured by the scheduler.
    pub fn recv_timed(self) -> Result<(Response, Duration), RecvError> {
        self.rx
            .recv()
            .map(|c| (c.response, c.latency))
            .map_err(|_| RecvError::ShutDown)
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_recv(&self) -> Option<Result<Response, RecvError>> {
        match self.rx.try_recv() {
            Ok(c) => Some(Ok(c.response)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(RecvError::ShutDown)),
        }
    }

    /// When the request was submitted (for caller-side latency accounting).
    pub fn submitted_at(&self) -> Instant {
        self.submitted
    }
}
