//! # simspatial-service
//!
//! The concurrent query service: many independent clients, one spatial
//! dataset, kernel-sized batches.
//!
//! Everything below this crate is batch-first but single-caller: a
//! [`QueryEngine`](simspatial_index::QueryEngine) or
//! [`ShardedEngine`](simspatial_index::ShardedEngine) executes one batch
//! at a time through `&mut self`. The paper's target workload, though, is
//! *many* clients issuing dense range/kNN probes against one dataset — and
//! the roadmap's north star is serving heavy concurrent traffic. This
//! crate is that front door:
//!
//! * **[`ServiceHandle`]** — cloneable, thread-safe submission: clients
//!   send [`Request`]s (`Range`, `RangeCount`, `Knn` with per-probe `k`)
//!   into a **bounded** intake queue and redeem a [`Ticket`] for the
//!   response. The blocking [`ServiceHandle::submit`] applies
//!   backpressure; [`ServiceHandle::try_submit`] surfaces `Full` for
//!   open-loop clients. Implemented entirely on `std` MPSC channels and
//!   worker threads — no async runtime, matching the workspace's
//!   offline/vendored dependency policy.
//! * **Micro-batching scheduler** ([`SpatialService`]) — one dispatcher
//!   thread drains the queue and *coalesces* concurrent requests (up to
//!   `max_batch`, waiting at most `max_wait` for stragglers) into the wide
//!   SoA batches the kernels are fastest at: one `range_batch` for every
//!   range box in the dispatch, one `knn_batch` per distinct `k`. Results
//!   split back per request in the exact order a serial engine run would
//!   produce.
//! * **The write path** — the paper's workload is an *alternating* stream
//!   of position updates and queries, so the service is read–write:
//!   [`Request::Update`] carries sparse `(id, envelope)` changes,
//!   [`Request::Step`] a whole simulation tick. Every write request is a
//!   **barrier** in the admission order (queries admitted before it see
//!   pre-write state, queries after it see post-write state — exactly a
//!   serial interleaving), and consecutive writes coalesce into one
//!   backend `update_batch` application per dispatch. Read-only backends
//!   reject writes at admission with [`SubmitError::ReadOnly`].
//! * **Backends** ([`ServiceBackend`]) — [`EngineBackend`] executes
//!   inline on the dispatcher (single worker over any
//!   `SpatialIndex + KnnIndex`; writable via a pluggable [`IndexUpdater`]
//!   — [`RebuildUpdater`] or a `simspatial_moving` strategy adapter);
//!   [`ShardedBackend`] pins each shard of a `ShardedEngine` to a
//!   persistent worker thread and scatters routed lanes over channels,
//!   merging through the engine layer's deduplicating sinks —
//!   byte-identical results to serial execution, with per-shard
//!   parallelism across dispatches. Its write path routes update lanes to
//!   the same workers, **migrating** elements whose new envelope crosses
//!   shard boundaries (replicas and id maps stay consistent).
//! * **[`ServiceStats`]** — queue depth and high-water mark, admission /
//!   rejection counters, batch-size histogram (is coalescing working?),
//!   per-request latency percentiles, aggregated predicate counters,
//!   write counters (updates applied, shard migrations, coalesced update
//!   batch sizes), failure telemetry (panics caught, shard restarts and
//!   deaths, deadline expiries, partial-coverage responses, client
//!   retries), and the backend's memory/shard-size accounting (refreshed
//!   after every write, so migrations show up).
//! * **Fault tolerance** — the serving path survives panics by
//!   construction: every shard-worker job and every dispatcher-inline
//!   backend call runs under `catch_unwind`. A panicked shard is
//!   quarantined, restarted from the planner's retained element store
//!   (bounded attempts with exponential backoff, see
//!   [`SupervisorPolicy`]), and finally declared dead — after which
//!   range/count queries **degrade** (skip it and report partial coverage
//!   via [`Reply::shards_skipped`]) while kNN queries touching it **fail
//!   typed** with [`RecvError::WorkerFailed`]. Requests carry deadlines
//!   ([`ServiceConfig::default_deadline`],
//!   [`ServiceHandle::submit_with_deadline`]) checked at admission and
//!   completion; [`ServiceHandle::submit_with_retry`] retries `Full`
//!   rejections with jittered backoff ([`RetryPolicy`] — and documents
//!   why admitted writes are never blindly retried). The whole failure
//!   matrix is exercised deterministically in ordinary tests through
//!   [`FaultPlan`] and [`ChaosBackend`].
//! * **Epoch-published snapshot reads** — every applied write barrier
//!   publishes a monotonically increasing **epoch**; reads submitted at
//!   [`Consistency::Snapshot`] (via [`ServiceHandle::submit_at`]) are
//!   hoisted in front of a dispatch's pending write barriers and answered
//!   from the last published per-shard snapshots (copy-on-publish of the
//!   *touched* shards only), so one slow `Step` no longer stalls the read
//!   fleet. `ReadYourWrites { min_epoch }` floors freshness at the
//!   submitter's last acknowledged write (acks carry the publishing epoch
//!   in [`Reply::epoch`]); `Barrier` keeps the strict pre-epoch ordering
//!   and doubles as the differential oracle the snapshot consistency
//!   suite compares against. Snapshot serving is opt-in on the sharded
//!   backend ([`ShardedBackend::spawn_snapshot`], requiring `Clone`
//!   indexes) and free on [`EngineBackend`] (serial execution already
//!   answers at the published epoch).
//!
//! ## Quick start
//!
//! ```
//! use simspatial_datagen::ElementSoupBuilder;
//! use simspatial_geom::{Aabb, Point3};
//! use simspatial_index::{GridConfig, ShardedEngine, UniformGrid};
//! use simspatial_service::{Request, ServiceConfig, ShardedBackend, SpatialService};
//!
//! let data = ElementSoupBuilder::new().count(2000).seed(11).build();
//! let sharded = ShardedEngine::build(data.elements(), 2, |part| {
//!     UniformGrid::build(part, GridConfig::auto(part))
//! });
//! let service = SpatialService::spawn(ShardedBackend::spawn(sharded), ServiceConfig::default());
//!
//! // Clients clone the handle and submit concurrently; here, one inline.
//! let handle = service.handle();
//! let ticket = handle
//!     .submit(Request::Knn(vec![(Point3::new(10.0, 10.0, 10.0), 5)]))
//!     .unwrap();
//! let neighbours = ticket.recv().unwrap().into_knn().unwrap();
//! assert_eq!(neighbours[0].len(), 5);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```
//!
//! ## Writing through the service
//!
//! A writable backend serves the full simulation loop — updates and the
//! queries that monitor them share one admission path:
//!
//! ```
//! use simspatial_datagen::ElementSoupBuilder;
//! use simspatial_geom::{Aabb, Point3};
//! use simspatial_index::{GridConfig, ShardedEngine, UniformGrid};
//! use simspatial_service::{Request, ServiceConfig, ShardedBackend, SpatialService};
//!
//! let data = ElementSoupBuilder::new().count(2000).seed(11).build();
//! let build = |part: &[simspatial_geom::Element]| UniformGrid::build(part, GridConfig::auto(part));
//! // `with_rebuild` attaches the per-shard write path.
//! let sharded = ShardedEngine::build(data.elements(), 2, build).with_rebuild(build);
//! let service = SpatialService::spawn(ShardedBackend::spawn(sharded), ServiceConfig::default());
//!
//! let handle = service.handle();
//! assert!(handle.is_writable());
//! // Move element 42 — a write barrier: queries admitted after it see it.
//! let target = Aabb::new(Point3::new(5.0, 5.0, 5.0), Point3::new(6.0, 6.0, 6.0));
//! handle.submit(Request::Update(vec![(42, target)])).unwrap().recv().unwrap();
//! let hits = handle
//!     .submit(Request::Range(vec![target]))
//!     .unwrap()
//!     .recv()
//!     .unwrap()
//!     .into_range()
//!     .unwrap();
//! assert!(hits[0].contains(&42));
//! let stats = service.shutdown();
//! assert_eq!(stats.updates_applied, 1);
//! ```

#![warn(missing_docs)]

mod backend;
mod fault;
mod request;
mod service;
mod stats;

pub use backend::{
    BackendTelemetry, BatchReport, EngineBackend, IndexUpdater, QueryRun, QueryRunReport,
    QueryRunResults, RebuildUpdater, ServiceBackend, ShardedBackend, SubBatchOutcome,
    SupervisorPolicy, UpdateReport,
};
pub use fault::{ChaosBackend, FaultKind, FaultPlan, ScheduledFault};
pub use request::{Consistency, RecvError, Reply, Request, Response, SubmitError, Ticket};
pub use service::{RetryPolicy, ServiceConfig, ServiceHandle, SpatialService};
pub use stats::{LatencyHistogram, ServiceStats, TenantStats, BATCH_BUCKETS, LATENCY_BUCKETS};
