//! # simspatial-service
//!
//! The concurrent query service: many independent clients, one spatial
//! dataset, kernel-sized batches.
//!
//! Everything below this crate is batch-first but single-caller: a
//! [`QueryEngine`](simspatial_index::QueryEngine) or
//! [`ShardedEngine`](simspatial_index::ShardedEngine) executes one batch
//! at a time through `&mut self`. The paper's target workload, though, is
//! *many* clients issuing dense range/kNN probes against one dataset — and
//! the roadmap's north star is serving heavy concurrent traffic. This
//! crate is that front door:
//!
//! * **[`ServiceHandle`]** — cloneable, thread-safe submission: clients
//!   send [`Request`]s (`Range`, `RangeCount`, `Knn` with per-probe `k`)
//!   into a **bounded** intake queue and redeem a [`Ticket`] for the
//!   response. The blocking [`ServiceHandle::submit`] applies
//!   backpressure; [`ServiceHandle::try_submit`] surfaces `Full` for
//!   open-loop clients. Implemented entirely on `std` MPSC channels and
//!   worker threads — no async runtime, matching the workspace's
//!   offline/vendored dependency policy.
//! * **Micro-batching scheduler** ([`SpatialService`]) — one dispatcher
//!   thread drains the queue and *coalesces* concurrent requests (up to
//!   `max_batch`, waiting at most `max_wait` for stragglers) into the wide
//!   SoA batches the kernels are fastest at: one `range_batch` for every
//!   range box in the dispatch, one `knn_batch` per distinct `k`. Results
//!   split back per request in the exact order a serial engine run would
//!   produce.
//! * **Backends** ([`ServiceBackend`]) — [`EngineBackend`] executes
//!   inline on the dispatcher (single worker over any
//!   `SpatialIndex + KnnIndex`); [`ShardedBackend`] pins each shard of a
//!   `ShardedEngine` to a persistent worker thread and scatters routed
//!   lanes over channels, merging through the engine layer's
//!   deduplicating sinks — byte-identical results to serial execution,
//!   with per-shard parallelism across dispatches.
//! * **[`ServiceStats`]** — queue depth and high-water mark, admission /
//!   rejection counters, batch-size histogram (is coalescing working?),
//!   per-request latency percentiles, aggregated predicate counters, and
//!   the backend's memory/shard-size accounting.
//!
//! ## Quick start
//!
//! ```
//! use simspatial_datagen::ElementSoupBuilder;
//! use simspatial_geom::{Aabb, Point3};
//! use simspatial_index::{GridConfig, ShardedEngine, UniformGrid};
//! use simspatial_service::{Request, ServiceConfig, ShardedBackend, SpatialService};
//!
//! let data = ElementSoupBuilder::new().count(2000).seed(11).build();
//! let sharded = ShardedEngine::build(data.elements(), 2, |part| {
//!     UniformGrid::build(part, GridConfig::auto(part))
//! });
//! let service = SpatialService::spawn(ShardedBackend::spawn(sharded), ServiceConfig::default());
//!
//! // Clients clone the handle and submit concurrently; here, one inline.
//! let handle = service.handle();
//! let ticket = handle
//!     .submit(Request::Knn(vec![(Point3::new(10.0, 10.0, 10.0), 5)]))
//!     .unwrap();
//! let neighbours = ticket.recv().unwrap().into_knn().unwrap();
//! assert_eq!(neighbours[0].len(), 5);
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

#![warn(missing_docs)]

mod backend;
mod request;
mod service;
mod stats;

pub use backend::{EngineBackend, ServiceBackend, ShardedBackend};
pub use request::{RecvError, Request, Response, SubmitError, Ticket};
pub use service::{ServiceConfig, ServiceHandle, SpatialService};
pub use stats::{LatencyHistogram, ServiceStats, BATCH_BUCKETS, LATENCY_BUCKETS};
