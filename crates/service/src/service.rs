//! The service front door and the micro-batching scheduler.
//!
//! Clients clone a [`ServiceHandle`] and submit [`Request`]s into a
//! **bounded** intake queue (admission control: the blocking
//! [`ServiceHandle::submit`] applies backpressure, the non-blocking
//! [`ServiceHandle::try_submit`] reports `Full`). A single scheduler
//! thread drains the queue, **coalesces** up to `max_batch` concurrent
//! requests (waiting at most `max_wait` for stragglers once the first is
//! in hand), executes the merged batches against the backend, splits the
//! results back per request, and completes each request's [`Ticket`].
//!
//! Coalescing is what converts independent client traffic into the wide
//! SoA batches the kernel layer is fastest at: all range boxes of one
//! dispatch run as **one** `range_batch`, and kNN probes group by `k` into
//! one `knn_batch` per distinct `k`. Per-request result order is identical
//! to a serial engine run, because the coalesced batch preserves each
//! request's query order and the batch plans are deterministic.
//!
//! Shutdown is orderly: [`SpatialService::shutdown`] (and `Drop`) flips
//! the admission flag — new submissions fail fast with
//! [`SubmitError::ShutDown`] — then the scheduler drains every request
//! already admitted before exiting, so accepted work is completed, not
//! dropped. (Only a submission that races the flag *and* loses its
//! dispatcher sees its ticket error with `RecvError::ShutDown`.)

use crate::backend::{
    BackendTelemetry, QueryRun, QueryRunResults, ServiceBackend, SubBatchOutcome,
};
use crate::request::{Completion, Consistency, RecvError, Request, Response, SubmitError, Ticket};
use crate::stats::{LatencyHistogram, ServiceStats, BATCH_BUCKETS};
use simspatial_geom::stats::PredicateCounts;
use simspatial_geom::{ElementId, Point3, Shape};
use simspatial_index::UpdateStats;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// SplitMix64 step — the deterministic jitter source for
/// [`ServiceHandle::submit_with_retry`] backoff.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound of the intake queue (requests). `submit` blocks and
    /// `try_submit` rejects once this many requests are pending.
    pub queue_cap: usize,
    /// Maximum requests coalesced into one dispatch.
    pub max_batch: usize,
    /// How long a **lone** request waits for company before dispatching
    /// alone. A dispatch already holding two or more requests never
    /// waits: the scheduler drains whatever is queued and executes.
    pub max_wait: Duration,
    /// Micro-batching on/off. Off = every request dispatches alone
    /// (the baseline the `service` bench compares against).
    pub coalesce: bool,
    /// How often the idle scheduler re-checks the shutdown flag.
    pub idle_poll: Duration,
    /// Deadline applied to every request that does not carry its own
    /// (see [`ServiceHandle::submit_with_deadline`]). `None` = requests
    /// never expire. Expired requests are shed before dispatch when
    /// possible and complete with
    /// [`RecvError::DeadlineExceeded`] either way.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_cap: 1024,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            coalesce: true,
            idle_poll: Duration::from_millis(20),
            default_deadline: None,
        }
    }
}

impl ServiceConfig {
    /// Returns the config with coalescing disabled.
    pub fn no_coalesce(mut self) -> Self {
        self.coalesce = false;
        self
    }

    /// Returns the config with the given intake queue bound.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Returns the config with the given coalescing window.
    pub fn with_batching(mut self, max_batch: usize, max_wait: Duration) -> Self {
        self.max_batch = max_batch.max(1);
        self.max_wait = max_wait;
        self
    }

    /// Returns the config with the given default request deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }
}

/// Backoff discipline for [`ServiceHandle::submit_with_retry`]: how many
/// times a [`SubmitError::Full`] rejection is retried and how the jittered
/// exponential backoff between attempts grows.
///
/// Only the *pre-admission* `Full` rejection is ever retried — the request
/// was never accepted, so resubmitting cannot double-apply anything.
/// **Once admitted, a write is never blindly retried** by the service or
/// by this helper: every admitted write is a barrier in the admission
/// order, and a ticket error (e.g. [`RecvError::DeadlineExceeded`] at
/// completion time) does not mean the write was not applied — a blind
/// resubmit could apply it twice, interleaved with other clients' writes.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum retry attempts after the initial submission.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Upper bound on the exponential backoff (before jitter).
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter sequence (each sleep is scaled to
    /// 50–100% of the capped backoff, decorrelating competing clients).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 8,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(10),
            jitter_seed: 0x5EED,
        }
    }
}

/// One queued request plus its completion channel, admission timestamp and
/// (optional) absolute deadline.
///
/// The envelope doubles as the **exactly-once completion guard**: a ticket
/// is completed either explicitly through [`Envelope::complete`] (which
/// takes the reply sender) or, if the envelope is dropped with the sender
/// still in place — scheduler unwind, drain abort, any exit path — by the
/// `Drop` impl, with a typed error. An admitted ticket therefore never
/// hangs and never receives two completions.
struct Envelope {
    request: Request,
    consistency: Consistency,
    reply: Option<mpsc::Sender<Completion>>,
    submitted: Instant,
    deadline: Option<Instant>,
    shared: Arc<Shared>,
}

impl Envelope {
    /// Completes the ticket exactly once and disarms the drop-guard.
    fn complete(mut self, result: Result<Response, RecvError>, shards_skipped: u32, epoch: u64) {
        let latency = self.submitted.elapsed();
        if let Some(reply) = self.reply.take() {
            // A dropped ticket (client gave up) is not an error.
            let _ = reply.send(Completion {
                result,
                latency,
                shards_skipped,
                epoch,
            });
        }
    }
}

impl Drop for Envelope {
    fn drop(&mut self) {
        let Some(reply) = self.reply.take() else {
            return; // completed normally
        };
        // Straggler path: the scheduler died (dispatcher panic) or exited
        // without serving this envelope. Classify by the service's dead
        // flag, set before unwinding envelopes drop (see `DeadGuard`).
        let err = if self.shared.dead.load(Ordering::Acquire) {
            RecvError::WorkerFailed { shard: 0 }
        } else {
            RecvError::ShutDown
        };
        let _ = reply.send(Completion {
            result: Err(err),
            latency: self.submitted.elapsed(),
            shards_skipped: 0,
            epoch: 0,
        });
        if let Ok(mut stats) = self.shared.stats.lock() {
            stats.completed += 1;
            stats.failed_requests += 1;
        }
    }
}

/// Scheduler-side counters, only ever touched under the lock by the
/// dispatcher thread (briefly, once per dispatch) and by stats snapshots —
/// the submit hot path uses the lock-free atomics on [`Shared`] instead.
#[derive(Default)]
struct StatsInner {
    completed: u64,
    dispatches: u64,
    coalesced_requests: u64,
    batch_hist: [u64; BATCH_BUCKETS],
    exec_elapsed_s: f64,
    results: u64,
    counts: PredicateCounts,
    latency: LatencyHistogram,
    updates_applied: u64,
    migrations: u64,
    updates_skipped: u64,
    // Write-amplification counters (see `UpdateStats` for semantics).
    updates_shipped: u64,
    structural_touches: u64,
    updates_absorbed: u64,
    shard_rebuilds: u64,
    rebuilds_avoided: u64,
    elements_inserted: u64,
    elements_removed: u64,
    update_dispatches: u64,
    coalesced_updates: u64,
    update_hist: [u64; BATCH_BUCKETS],
    /// Backend memory/shard gauges: captured at spawn, refreshed by the
    /// dispatcher after every update application (migrations move elements
    /// and shrink/grow shards).
    memory_bytes: usize,
    shard_sizes: Vec<usize>,
    /// Backend panics that unwound to the dispatcher thread and were
    /// caught there (distinct from the panics the backend supervises
    /// internally, which arrive via `telemetry`).
    sched_panics: u64,
    /// Requests completed with [`RecvError::DeadlineExceeded`].
    deadline_expired: u64,
    /// Successful range/count responses with partial shard coverage.
    partial_responses: u64,
    /// Requests completed with [`RecvError::WorkerFailed`].
    failed_requests: u64,
    /// Epoch gauges/counters, refreshed every dispatch (see
    /// [`ServiceStats`] for semantics). All zero on a backend without
    /// snapshot support.
    current_epoch: u64,
    epochs_published: u64,
    snapshot_reads: u64,
    stale_reads: u64,
    snapshot_clone_bytes: u64,
    /// Latest backend failure counters, refreshed every dispatch.
    telemetry: BackendTelemetry,
}

/// State shared by every handle, the service, and the scheduler thread.
struct Shared {
    open: AtomicBool,
    /// Set when the dispatcher died abnormally (unwinding panic) or the
    /// backend was poisoned by a write-path panic — stragglers then
    /// complete with [`RecvError::WorkerFailed`] instead of `ShutDown`.
    dead: AtomicBool,
    /// Whether the backend applies write batches; write requests are
    /// rejected at admission otherwise.
    writable: bool,
    /// Whether the backend supports membership changes (`Insert`/`Remove`
    /// with planner-side id allocation); such requests are rejected at
    /// admission otherwise.
    membership: bool,
    /// Deadline stamped onto requests that do not carry their own.
    default_deadline: Option<Duration>,
    /// The intake queue bound, surfaced in [`SubmitError::Full`] so
    /// rejected clients can scale their backoff to actual congestion.
    queue_cap: usize,
    queue_depth: AtomicUsize,
    // Admission-path counters are atomics so producer submits never
    // contend with the dispatcher's per-dispatch stats update.
    submitted: AtomicU64,
    rejected: AtomicU64,
    max_queue_depth: AtomicUsize,
    /// Client-side `submit_with_retry` backoff sleeps taken, fleet-wide.
    retries_attempted: AtomicU64,
    stats: Mutex<StatsInner>,
}

impl Shared {
    fn note_admitted(&self, depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServiceStats {
        let inner = self.stats.lock().expect("stats lock");
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: inner.completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Acquire),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            dispatches: inner.dispatches,
            coalesced_requests: inner.coalesced_requests,
            batch_hist: inner.batch_hist,
            exec_elapsed_s: inner.exec_elapsed_s,
            results: inner.results,
            counts: inner.counts,
            latency: inner.latency,
            updates_applied: inner.updates_applied,
            migrations: inner.migrations,
            updates_skipped: inner.updates_skipped,
            updates_shipped: inner.updates_shipped,
            structural_touches: inner.structural_touches,
            updates_absorbed: inner.updates_absorbed,
            shard_rebuilds: inner.shard_rebuilds,
            rebuilds_avoided: inner.rebuilds_avoided,
            elements_inserted: inner.elements_inserted,
            elements_removed: inner.elements_removed,
            update_dispatches: inner.update_dispatches,
            coalesced_updates: inner.coalesced_updates,
            update_hist: inner.update_hist,
            memory_bytes: inner.memory_bytes,
            shard_sizes: inner.shard_sizes.clone(),
            panics_caught: inner.sched_panics + inner.telemetry.panics_caught,
            shard_restarts: inner.telemetry.shard_restarts,
            shards_dead: inner.telemetry.shards_dead,
            worker_steals: inner.telemetry.worker_steals,
            worker_busy_ns: inner.telemetry.worker_busy_ns.clone(),
            deadline_expired: inner.deadline_expired,
            retries_attempted: self.retries_attempted.load(Ordering::Relaxed),
            partial_responses: inner.partial_responses,
            failed_requests: inner.failed_requests,
            current_epoch: inner.current_epoch,
            epochs_published: inner.epochs_published,
            snapshot_reads: inner.snapshot_reads,
            stale_reads: inner.stale_reads,
            snapshot_clone_bytes: inner.snapshot_clone_bytes,
            tenants: Vec::new(),
        }
    }
}

/// A cloneable client-side handle: submit requests, read stats. All clones
/// share one service; dropping handles never stops the service (see
/// [`SpatialService::shutdown`]).
pub struct ServiceHandle {
    tx: mpsc::SyncSender<Envelope>,
    shared: Arc<Shared>,
}

impl Clone for ServiceHandle {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
        }
    }
}

impl ServiceHandle {
    /// Submits a request, **blocking** while the intake queue is full
    /// (admission-control backpressure). Returns the completion ticket,
    /// or the request back if the service is shut down (or the request is
    /// a write and the backend is read-only). The config's
    /// `default_deadline` (if any) applies.
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, Consistency::Barrier, None, true)
    }

    /// [`ServiceHandle::submit`] with an explicit per-request deadline
    /// (measured from now, overriding the config default). An expired
    /// request completes with [`RecvError::DeadlineExceeded`] — shed
    /// before the backend sees it when it expires in the queue.
    pub fn submit_with_deadline(
        &self,
        request: Request,
        deadline: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, Consistency::Barrier, Some(deadline), true)
    }

    /// Non-blocking submit: returns [`SubmitError::Full`] (with the
    /// request) instead of waiting when the queue is at capacity.
    pub fn try_submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, Consistency::Barrier, None, false)
    }

    /// [`ServiceHandle::try_submit`] with an explicit per-request deadline.
    pub fn try_submit_with_deadline(
        &self,
        request: Request,
        deadline: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, Consistency::Barrier, Some(deadline), false)
    }

    /// [`ServiceHandle::submit`] with an explicit [`Consistency`] mode.
    /// The plain `submit`/`try_submit` family is pinned to
    /// [`Consistency::Barrier`] (the pre-epoch semantics), so existing
    /// callers observe no change; reads that can tolerate bounded
    /// staleness should pass [`Consistency::Snapshot`] here and stop
    /// paying for write barriers they never asked to observe. Writes
    /// ignore the mode (every write is always a barrier and publishes an
    /// epoch); on a backend without snapshot support all modes behave as
    /// `Barrier` and replies report epoch 0.
    pub fn submit_at(
        &self,
        request: Request,
        consistency: Consistency,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, consistency, None, true)
    }

    /// Non-blocking [`ServiceHandle::submit_at`].
    pub fn try_submit_at(
        &self,
        request: Request,
        consistency: Consistency,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, consistency, None, false)
    }

    /// [`ServiceHandle::submit_at`] with an explicit per-request deadline.
    pub fn submit_at_with_deadline(
        &self,
        request: Request,
        consistency: Consistency,
        deadline: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, consistency, Some(deadline), true)
    }

    /// Non-blocking [`ServiceHandle::submit_at_with_deadline`].
    pub fn try_submit_at_with_deadline(
        &self,
        request: Request,
        consistency: Consistency,
        deadline: Duration,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(request, consistency, Some(deadline), false)
    }

    /// Non-blocking submit that retries [`SubmitError::Full`] rejections
    /// with jittered exponential backoff (see [`RetryPolicy`]). Safe for
    /// writes too: `Full` means the request was **never admitted**, so
    /// resubmitting cannot double-apply it. Admitted requests are never
    /// retried by this helper (see the [`RetryPolicy`] docs for why a
    /// blind post-admission write retry would be unsafe). `ShutDown` and
    /// `ReadOnly` rejections are returned immediately.
    ///
    /// The backoff scales to the congestion the rejection reported
    /// ([`SubmitError::congestion`]): a queue rejecting at a transient
    /// burst peak sleeps roughly half as long as one pinned at sustained
    /// overload, so recovering services refill quickly while overloaded
    /// ones are not hammered.
    pub fn submit_with_retry(
        &self,
        request: Request,
        policy: &RetryPolicy,
    ) -> Result<Ticket, SubmitError> {
        let mut state = policy.jitter_seed;
        let mut attempt = 0u32;
        let mut request = request;
        loop {
            match self.try_submit(request) {
                Ok(ticket) => return Ok(ticket),
                Err(e @ SubmitError::Full { .. }) if attempt < policy.max_retries => {
                    attempt += 1;
                    self.shared
                        .retries_attempted
                        .fetch_add(1, Ordering::Relaxed);
                    let shift = (attempt - 1).min(10);
                    let capped = (policy.base_backoff * (1u32 << shift)).min(policy.max_backoff);
                    // Scale to reported congestion (50% floor: a rejection
                    // always means *some* pressure), then jitter to
                    // 50–100% so competing clients decorrelate instead of
                    // retrying in lockstep.
                    let scaled = capped.mul_f64(0.5 + 0.5 * e.congestion());
                    let frac =
                        0.5 + 0.5 * ((splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64);
                    std::thread::sleep(scaled.mul_f64(frac));
                    request = e.into_request();
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn submit_inner(
        &self,
        request: Request,
        consistency: Consistency,
        deadline: Option<Duration>,
        blocking: bool,
    ) -> Result<Ticket, SubmitError> {
        if !self.shared.open.load(Ordering::Acquire) {
            return Err(SubmitError::ShutDown(request));
        }
        if request.is_write() && !self.shared.writable {
            return Err(SubmitError::ReadOnly(request));
        }
        if request.is_membership() && !self.shared.membership {
            return Err(SubmitError::ReadOnly(request));
        }
        let (reply, rx) = mpsc::channel();
        let submitted = Instant::now();
        let deadline = deadline
            .or(self.shared.default_deadline)
            .map(|d| submitted + d);
        let env = Envelope {
            request,
            consistency,
            reply: Some(reply),
            submitted,
            deadline,
            shared: Arc::clone(&self.shared),
        };
        let depth = self.shared.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
        if blocking {
            match self.tx.send(env) {
                Ok(()) => {
                    self.shared.note_admitted(depth);
                    Ok(Ticket { rx, submitted })
                }
                Err(mpsc::SendError(mut env)) => {
                    self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                    // Hand the request back un-completed: dropping the
                    // reply sender here must not fire the straggler guard.
                    env.reply = None;
                    Err(SubmitError::ShutDown(std::mem::replace(
                        &mut env.request,
                        Request::Range(Vec::new()),
                    )))
                }
            }
        } else {
            match self.tx.try_send(env) {
                Ok(()) => {
                    self.shared.note_admitted(depth);
                    Ok(Ticket { rx, submitted })
                }
                Err(mpsc::TrySendError::Full(mut env)) => {
                    // Undo our own provisional increment; what remains is
                    // the congestion the rejected client should back off
                    // against.
                    let depth = self
                        .shared
                        .queue_depth
                        .fetch_sub(1, Ordering::AcqRel)
                        .saturating_sub(1);
                    self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                    env.reply = None;
                    Err(SubmitError::Full {
                        request: std::mem::replace(&mut env.request, Request::Range(Vec::new())),
                        depth,
                        capacity: self.shared.queue_cap,
                        high_water: self.shared.max_queue_depth.load(Ordering::Relaxed),
                    })
                }
                Err(mpsc::TrySendError::Disconnected(mut env)) => {
                    self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                    env.reply = None;
                    Err(SubmitError::ShutDown(std::mem::replace(
                        &mut env.request,
                        Request::Range(Vec::new()),
                    )))
                }
            }
        }
    }

    /// True while the service accepts submissions.
    pub fn is_open(&self) -> bool {
        self.shared.open.load(Ordering::Acquire)
    }

    /// Current intake queue depth (admitted, not yet drained by the
    /// dispatcher). A lock-free gauge — cheap enough for admission-control
    /// front ends to read per request.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth.load(Ordering::Acquire)
    }

    /// The intake queue bound this service was configured with
    /// ([`ServiceConfig::queue_cap`]). `queue_depth() / queue_capacity()`
    /// is the congestion fraction backoff hints should scale with.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_cap
    }

    /// True when the backend applies write requests (`Update`/`Step`);
    /// false means such submissions return [`SubmitError::ReadOnly`].
    pub fn is_writable(&self) -> bool {
        self.shared.writable
    }

    /// True when the backend also supports membership changes
    /// (`Insert`/`Remove`); false means such submissions return
    /// [`SubmitError::ReadOnly`] even on a writable service.
    pub fn supports_membership(&self) -> bool {
        self.shared.membership
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.snapshot()
    }
}

/// The scheduler state living on the dispatcher thread.
struct Scheduler<B: ServiceBackend> {
    backend: B,
    shared: Arc<Shared>,
    cfg: ServiceConfig,
    // Dispatch scratch, reused across cycles.
    pending: Vec<Envelope>,
    responses: Vec<Option<Response>>,
    /// The coalesced query run under construction/execution: every range
    /// box and every per-`k` kNN probe group of the dispatch, handed to the
    /// backend in ONE `query_run` call so a parallel backend can overlap
    /// the independent sub-batches.
    run: QueryRun,
    run_out: QueryRunResults,
    /// `(pending idx, first box, box count)` per range-family request.
    range_req: Vec<(usize, usize, usize)>,
    /// `(k, pending idx, probe idx within request, point)` per kNN probe.
    knn_flat: Vec<(usize, usize, usize, Point3)>,
    /// `(flat start, flat end)` per kNN group of the current run, parallel
    /// to `run.knn`.
    knn_groups: Vec<(usize, usize)>,
    /// Retired probe buffers recycled into the next run's groups.
    knn_spare: Vec<Vec<Point3>>,
    /// Flattened `(id, geometry)` write batch of the current update run.
    updates: Vec<(ElementId, Shape)>,
    /// Per-pending-request failure slot for the current dispatch: a
    /// request with a failure set is excluded from backend batches and
    /// completes with that error.
    failures: Vec<Option<RecvError>>,
    /// Per-pending-request dead-shards-skipped count (partial coverage).
    skipped: Vec<u32>,
    /// Per-pending-request epoch stamp for the current dispatch: the
    /// published epoch a read ran against, or the epoch whose publication
    /// made a write visible.
    epochs: Vec<u64>,
    /// Whether the backend can serve published-snapshot reads
    /// ([`ServiceBackend::supports_snapshots`], cached at spawn). When
    /// false the epoch machinery is dormant: no publishes, every request
    /// runs the barrier path, and all epochs report 0.
    snapshots: bool,
    /// The last **published** epoch. The scheduler publishes epoch 0
    /// before serving anything and a new epoch after every write
    /// application, so whenever no write is mid-application the live
    /// dataset equals the published epoch's state.
    epoch: u64,
    /// Successful `publish` calls over the service lifetime. Exactly
    /// `epoch + 1` while healthy (epoch 0 plus one per write barrier) —
    /// the chaos suite asserts this to prove a publish interrupted by a
    /// shard panic is retried exactly once, never skipped or doubled.
    epochs_published: u64,
    /// Backend panics caught while publishing (folded into `sched_panics`
    /// at the next dispatch-stats flush).
    publish_panics: u64,
    /// Set when a backend panic unwound to the dispatcher on a write path
    /// the backend could not recover: the dataset state is unknown, so
    /// every subsequent request fails fast with
    /// [`RecvError::WorkerFailed`] until shutdown.
    poisoned: bool,
}

/// Accounting accumulated across the runs of one dispatch, folded into
/// [`StatsInner`] in a single critical section at the end.
#[derive(Default)]
struct DispatchTotals {
    exec_elapsed_s: f64,
    results: u64,
    counts: PredicateCounts,
    update: UpdateStats,
    /// Coalesced update counts per backend application this dispatch
    /// (feeds the update batch-size histogram).
    update_runs: Vec<usize>,
    /// Backend panics that unwound into the dispatcher and were caught.
    sched_panics: u64,
    /// Reads served from a published snapshot this dispatch.
    snapshot_reads: u64,
    /// Snapshot reads hoisted over at least one pending write barrier.
    stale_reads: u64,
}

/// Declared in [`Scheduler::run`] before the dispatch loop: if the
/// dispatcher thread unwinds past it (a panic the per-call `catch_unwind`s
/// did not absorb), the guard marks the service dead **before** the
/// scheduler's pending envelopes drop — locals drop before function
/// parameters — so their straggler completions classify as
/// [`RecvError::WorkerFailed`], not a clean shutdown, and new submissions
/// stop being admitted.
struct DeadGuard {
    shared: Arc<Shared>,
    armed: bool,
}

impl Drop for DeadGuard {
    fn drop(&mut self) {
        if self.armed {
            self.shared.dead.store(true, Ordering::Release);
            self.shared.open.store(false, Ordering::Release);
            if let Ok(mut stats) = self.shared.stats.lock() {
                stats.sched_panics += 1;
            }
        }
    }
}

impl<B: ServiceBackend> Scheduler<B> {
    fn new(backend: B, shared: Arc<Shared>, cfg: ServiceConfig) -> Self {
        let snapshots = backend.supports_snapshots();
        Self {
            backend,
            shared,
            cfg,
            pending: Vec::new(),
            responses: Vec::new(),
            run: QueryRun::default(),
            run_out: QueryRunResults::default(),
            range_req: Vec::new(),
            knn_flat: Vec::new(),
            knn_groups: Vec::new(),
            knn_spare: Vec::new(),
            updates: Vec::new(),
            failures: Vec::new(),
            skipped: Vec::new(),
            epochs: Vec::new(),
            snapshots,
            epoch: 0,
            epochs_published: 0,
            publish_panics: 0,
            poisoned: false,
        }
    }

    fn run(mut self, rx: mpsc::Receiver<Envelope>) {
        let mut guard = DeadGuard {
            shared: Arc::clone(&self.shared),
            armed: true,
        };
        // Publish the initial epoch before serving anything: snapshot
        // readers always have a consistent epoch to answer from, even
        // before the first write barrier.
        self.publish_epoch(0);
        loop {
            match rx.recv_timeout(self.cfg.idle_poll) {
                Ok(env) => self.collect_and_dispatch(env, &rx),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !self.shared.open.load(Ordering::Acquire) {
                        break;
                    }
                }
                // Every handle AND the owning service are gone: nothing can
                // ever submit again.
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Orderly drain: everything admitted before the flag flipped (and
        // any sender that was blocked on the bounded queue and completes
        // while we drain) still gets served.
        while let Ok(env) = rx.try_recv() {
            self.collect_and_dispatch(env, &rx);
        }
        self.backend.shutdown();
        guard.armed = false;
    }

    /// Eagerly drains up to `max_batch - 1` more queued requests behind
    /// `first`, then dispatches the coalesced batch. The scheduler never
    /// stalls a batch it already holds: only a **lone** request waits (up
    /// to `max_wait`) for company — once at least two requests are in
    /// hand, an empty queue triggers immediate dispatch, so pipelined
    /// closed-loop traffic coalesces without paying added latency.
    fn collect_and_dispatch(&mut self, first: Envelope, rx: &mpsc::Receiver<Envelope>) {
        self.pending.clear();
        self.pending.push(first);
        if self.cfg.coalesce && self.cfg.max_batch > 1 {
            let deadline = Instant::now() + self.cfg.max_wait;
            while self.pending.len() < self.cfg.max_batch {
                match rx.try_recv() {
                    Ok(env) => self.pending.push(env),
                    Err(mpsc::TryRecvError::Empty) => {
                        if self.pending.len() > 1 {
                            break; // have a batch: go, don't trade latency
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(env) => self.pending.push(env),
                            Err(_) => break,
                        }
                    }
                    Err(mpsc::TryRecvError::Disconnected) => break,
                }
            }
        }
        self.shared
            .queue_depth
            .fetch_sub(self.pending.len(), Ordering::AcqRel);
        self.dispatch();
    }

    /// Executes one coalesced dispatch. The pending requests are processed
    /// as consecutive **runs** in admission order: maximal runs of query
    /// requests coalesce into backend query batches exactly as before, and
    /// maximal runs of write requests coalesce into **one** backend
    /// `update_batch` application each. Runs execute strictly in order, so
    /// every write request is a barrier: queries admitted before it see
    /// pre-write state, queries admitted after it see post-write state —
    /// the dispatch is observationally identical to a serial run of the
    /// requests in admission order.
    fn dispatch(&mut self) {
        let n = self.pending.len();
        self.responses.clear();
        self.responses.resize_with(n, || None);
        self.failures.clear();
        self.failures.resize(n, None);
        self.skipped.clear();
        self.skipped.resize(n, 0);
        self.epochs.clear();
        self.epochs.resize(n, self.epoch);
        let mut totals = DispatchTotals::default();

        // ---- Admission-time deadline shed: a request that expired in the
        // queue is excluded from every backend batch below — the backend
        // never sees it.
        let now = Instant::now();
        for (i, env) in self.pending.iter().enumerate() {
            if env.deadline.is_some_and(|d| now >= d) {
                self.failures[i] = Some(RecvError::DeadlineExceeded);
            }
        }

        // ---- Snapshot hoist: reads that asked for (at most) the last
        // published epoch do not belong behind this dispatch's write
        // barriers — they are pulled out of admission order and executed
        // first, as ONE snapshot query run against the published per-shard
        // snapshots. This is what unserializes reads from writes: a
        // hoisted read's latency never includes the write applications
        // queued behind it. `ReadYourWrites` hoists once its floor is
        // published (acks carry the publishing epoch, so an honest client
        // always hoists) and degrades to the barrier path otherwise —
        // strictly fresher than asked. Everything else (`Barrier` reads,
        // all writes) keeps today's strict admission-order semantics.
        let mut barrier_idx: Vec<usize> = Vec::with_capacity(n);
        let mut snap_idx: Vec<usize> = Vec::new();
        if self.snapshots && !self.poisoned {
            let first_write = self
                .pending
                .iter()
                .enumerate()
                .position(|(i, env)| env.request.is_write() && self.failures[i].is_none());
            for (i, env) in self.pending.iter().enumerate() {
                let hoist = !env.request.is_write()
                    && self.failures[i].is_none()
                    && match env.consistency {
                        Consistency::Snapshot => true,
                        Consistency::ReadYourWrites { min_epoch } => min_epoch <= self.epoch,
                        Consistency::Barrier => false,
                    };
                if hoist {
                    snap_idx.push(i);
                    totals.snapshot_reads += 1;
                    if first_write.is_some_and(|w| i > w) {
                        // The read outran at least one write admitted
                        // before it: its answer is (deliberately) stale.
                        totals.stale_reads += 1;
                    }
                } else {
                    barrier_idx.push(i);
                }
            }
        } else {
            barrier_idx.extend(0..n);
        }
        if !snap_idx.is_empty() {
            // Stamped with the epoch they run against (resize above
            // already stamped `self.epoch`; writes below may advance it).
            self.run_query_batch(&snap_idx, &mut totals, true);
        }

        let mut lo = 0usize;
        let mut wrote = false;
        while lo < barrier_idx.len() {
            if self.poisoned {
                // Backend state is unknown after an unrecovered write-path
                // panic: fail everything not yet served, fast.
                for &i in &barrier_idx[lo..] {
                    if self.failures[i].is_none() {
                        self.failures[i] = Some(RecvError::WorkerFailed { shard: 0 });
                    }
                }
                break;
            }
            let write = self.pending[barrier_idx[lo]].request.is_write();
            let mut hi = lo + 1;
            while hi < barrier_idx.len()
                && self.pending[barrier_idx[hi]].request.is_write() == write
            {
                hi += 1;
            }
            let idxs: Vec<usize> = barrier_idx[lo..hi].to_vec();
            if write {
                self.run_update_batch(&idxs, &mut totals);
                wrote = true;
            } else {
                // Barrier reads run against the live dataset, whose state
                // is exactly the last published epoch at this point.
                for &i in &idxs {
                    self.epochs[i] = self.epoch;
                }
                self.run_query_batch(&idxs, &mut totals, false);
            }
            lo = hi;
        }

        // ---- Completion-time deadline check and outcome classification.
        let now = Instant::now();
        let mut deadline_expired = 0u64;
        let mut failed_requests = 0u64;
        let mut partial_responses = 0u64;
        for (i, env) in self.pending.iter().enumerate() {
            if self.failures[i].is_none() && env.deadline.is_some_and(|d| now >= d) {
                self.failures[i] = Some(RecvError::DeadlineExceeded);
            }
            match self.failures[i] {
                Some(RecvError::DeadlineExceeded) => deadline_expired += 1,
                Some(_) => failed_requests += 1,
                None => {
                    if self.skipped[i] > 0 {
                        partial_responses += 1;
                    }
                }
            }
        }
        let telemetry = self.backend.telemetry();

        // ---- Record stats (one short critical section — ticket completion
        // happens after the lock is released, so producer submits never
        // wait behind the reply sends).
        {
            let mut stats = self.shared.stats.lock().expect("stats lock");
            stats.dispatches += 1;
            stats.coalesced_requests += n as u64;
            let bucket = (usize::BITS - 1 - n.leading_zeros()) as usize;
            stats.batch_hist[bucket.min(BATCH_BUCKETS - 1)] += 1;
            stats.exec_elapsed_s += totals.exec_elapsed_s;
            stats.results += totals.results;
            stats.counts.add(&totals.counts);
            stats.updates_applied += totals.update.applied;
            stats.migrations += totals.update.migrations;
            stats.updates_skipped += totals.update.skipped;
            stats.updates_shipped += totals.update.shipped;
            stats.structural_touches += totals.update.structural;
            stats.updates_absorbed += totals.update.absorbed;
            stats.shard_rebuilds += totals.update.rebuilds;
            stats.rebuilds_avoided += totals.update.rebuilds_avoided;
            stats.elements_inserted += totals.update.inserted;
            stats.elements_removed += totals.update.removed;
            for &sz in &totals.update_runs {
                stats.update_dispatches += 1;
                stats.coalesced_updates += sz as u64;
                let b = (usize::BITS - 1 - sz.max(1).leading_zeros()) as usize;
                stats.update_hist[b.min(BATCH_BUCKETS - 1)] += 1;
            }
            if wrote {
                // Migrations moved elements between shards: refresh the
                // memory/shard gauges from the backend.
                stats.memory_bytes = self.backend.memory_bytes();
                stats.shard_sizes = self.backend.shard_sizes();
            }
            stats.sched_panics += totals.sched_panics + std::mem::take(&mut self.publish_panics);
            stats.deadline_expired += deadline_expired;
            stats.failed_requests += failed_requests;
            stats.partial_responses += partial_responses;
            stats.snapshot_reads += totals.snapshot_reads;
            stats.stale_reads += totals.stale_reads;
            stats.current_epoch = self.epoch;
            stats.epochs_published = self.epochs_published;
            if self.snapshots {
                stats.snapshot_clone_bytes = self.backend.snapshot_clone_bytes();
            }
            stats.telemetry = telemetry;
            stats.completed += n as u64;
            for env in &self.pending {
                stats.latency.record(env.submitted.elapsed());
            }
        }

        // ---- Complete tickets (exactly once, on every path — a request
        // with no failure must have a response; the envelope's drop-guard
        // covers any path that somehow skips this loop).
        for (i, (env, resp)) in self
            .pending
            .drain(..)
            .zip(self.responses.drain(..))
            .enumerate()
        {
            let result = match self.failures[i].take() {
                Some(err) => Err(err),
                None => Ok(resp.expect("every surviving request produced a response")),
            };
            env.complete(result, self.skipped[i], self.epochs[i]);
        }
    }

    /// Publishes epoch `next` on the backend, retrying a publish
    /// interrupted by a caught panic. `publish` is idempotent per epoch
    /// (the backend re-forks only the shards the interrupted pass left
    /// dirty), so the retry completes the same publication rather than
    /// doubling it; the epoch counter and `epochs_published` advance only
    /// on success, exactly once per epoch. A publish that keeps failing
    /// leaves the per-shard snapshots potentially spanning two epochs —
    /// no consistent epoch can be served — so the service poisons.
    fn publish_epoch(&mut self, next: u64) {
        if !self.snapshots || self.poisoned {
            return;
        }
        for _ in 0..3 {
            if catch_unwind(AssertUnwindSafe(|| self.backend.publish(next))).is_ok() {
                self.epoch = next;
                self.epochs_published += 1;
                return;
            }
            self.publish_panics += 1;
            if !self.backend.recover(false) {
                self.poison();
                return;
            }
        }
        self.poison();
    }

    /// Executes one query run (`pending[idxs]`, all non-write): all range
    /// boxes of the run coalesce into one range sub-batch, kNN probes group
    /// by `k` into one sub-batch per distinct `k`, and the whole run goes
    /// to the backend in ONE [`ServiceBackend::query_run`] call — so a
    /// parallel backend can overlap the independent sub-batches — before
    /// results split back per request. With `snap` set the run executes as
    /// [`ServiceBackend::snapshot_query_run`] against the last published
    /// epoch instead of the live dataset.
    fn run_query_batch(&mut self, idxs: &[usize], totals: &mut DispatchTotals, snap: bool) {
        // ---- Build the run: range family.
        self.run.range.clear();
        self.range_req.clear();
        for &i in idxs {
            if self.failures[i].is_some() {
                continue; // shed at admission — the backend never sees it
            }
            if let Request::Range(qs) | Request::RangeCount(qs) = &self.pending[i].request {
                self.range_req.push((i, self.run.range.len(), qs.len()));
                self.run.range.extend_from_slice(qs);
            }
        }

        // ---- Build the run: kNN family.
        self.knn_flat.clear();
        for &i in idxs {
            if self.failures[i].is_some() {
                continue;
            }
            if let Request::Knn(probes) = &self.pending[i].request {
                self.responses[i] = Some(Response::Knn(vec![Vec::new(); probes.len()]));
                for (j, &(p, k)) in probes.iter().enumerate() {
                    self.knn_flat.push((k, i, j, p));
                }
            }
        }
        // Stable order inside each k-group (request order, then probe
        // order) keeps the coalesced batch deterministic.
        self.knn_flat.sort_by_key(|&(k, i, j, _)| (k, i, j));
        self.knn_groups.clear();
        self.knn_spare
            .extend(self.run.knn.drain(..).map(|(_, points)| points));
        let mut g = 0usize;
        while g < self.knn_flat.len() {
            let k = self.knn_flat[g].0;
            let mut end = g;
            while end < self.knn_flat.len() && self.knn_flat[end].0 == k {
                end += 1;
            }
            let mut points = self.knn_spare.pop().unwrap_or_default();
            points.clear();
            points.extend(self.knn_flat[g..end].iter().map(|&(.., p)| p));
            self.knn_groups.push((g, end));
            self.run.knn.push((k, points));
            g = end;
        }
        if self.run.is_empty() {
            return;
        }

        // ---- Execute the whole run through one backend call. Sub-batch
        // panics are caught *inside* `query_run`; a panic that escapes it
        // (routing/merge code) fails the entire run.
        let call = catch_unwind(AssertUnwindSafe(|| {
            if snap {
                self.backend
                    .snapshot_query_run(&self.run, &mut self.run_out)
            } else {
                self.backend.query_run(&self.run, &mut self.run_out)
            }
        }));
        let report = match call {
            Ok(report) => report,
            Err(_) => {
                totals.sched_panics += 1;
                self.fail_requests(&self.range_req.clone(), 0);
                for idx in 0..self.knn_flat.len() {
                    let (_, i, _, _) = self.knn_flat[idx];
                    self.failures[i] = Some(RecvError::WorkerFailed { shard: 0 });
                }
                if !self.backend.recover(false) {
                    self.poison();
                }
                return;
            }
        };
        totals.sched_panics += report.panics;

        // ---- Range outcome.
        let mut range_ok = false;
        match &report.range {
            None => {}
            // Arity mismatch = the backend lost the batch (e.g. an
            // injected dropped response): no per-query results exist.
            Some(SubBatchOutcome::Ran(r)) if self.run_out.range.len() == self.run.range.len() => {
                totals.exec_elapsed_s += r.stats.elapsed_s;
                totals.results += r.stats.results;
                totals.counts.add(&r.stats.counts);
                for &(q, shard) in &r.failed {
                    if let Some(&(i, ..)) = self
                        .range_req
                        .iter()
                        .find(|&&(_, s, l)| (q as usize) >= s && (q as usize) < s + l)
                    {
                        self.failures[i] = Some(RecvError::WorkerFailed { shard });
                    }
                }
                for &(q, n_skipped) in &r.partial {
                    if let Some(&(i, ..)) = self
                        .range_req
                        .iter()
                        .find(|&&(_, s, l)| (q as usize) >= s && (q as usize) < s + l)
                    {
                        self.skipped[i] += n_skipped;
                    }
                }
                range_ok = true;
            }
            Some(_) => self.fail_requests(&self.range_req.clone(), 0),
        }
        if range_ok {
            for &(i, start, len) in &self.range_req {
                if self.failures[i].is_some() {
                    continue;
                }
                let resp = match &self.pending[i].request {
                    Request::Range(_) => Response::Range(
                        (start..start + len)
                            .map(|q| self.run_out.range.query_results(q).to_vec())
                            .collect(),
                    ),
                    Request::RangeCount(_) => Response::RangeCount(
                        (start..start + len)
                            .map(|q| self.run_out.range.query_results(q).len() as u64)
                            .collect(),
                    ),
                    _ => unreachable!("range_req only holds range requests"),
                };
                self.responses[i] = Some(resp);
            }
        }

        // ---- kNN outcomes, group by group.
        for (gi, &(start, end)) in self.knn_groups.iter().enumerate() {
            let outcome = report.knn.get(gi);
            let ran = match outcome {
                Some(SubBatchOutcome::Ran(r)) if self.run_out.knn[gi].len() == end - start => {
                    Some(r)
                }
                _ => None,
            };
            let Some(r) = ran else {
                for &(_, i, _, _) in &self.knn_flat[start..end] {
                    self.failures[i] = Some(RecvError::WorkerFailed { shard: 0 });
                }
                continue;
            };
            totals.exec_elapsed_s += r.stats.elapsed_s;
            totals.results += r.stats.results;
            totals.counts.add(&r.stats.counts);
            // A probe over a dead shard fails its whole request — partial
            // neighbour lists would be silently wrong.
            for &(q, shard) in &r.failed {
                let (_, i, _, _) = self.knn_flat[start + q as usize];
                self.failures[i] = Some(RecvError::WorkerFailed { shard });
            }
            for (slot, &(_, i, j, _)) in self.knn_flat[start..end].iter().enumerate() {
                if self.failures[i].is_some() {
                    continue;
                }
                let list = self.run_out.knn[gi].query_results(slot).to_vec();
                match self.responses[i].as_mut() {
                    Some(Response::Knn(lists)) => lists[j] = list,
                    _ => unreachable!("knn_flat only holds knn requests"),
                }
            }
        }

        if report.poisoned {
            self.poison();
        }
    }

    /// Marks every request of `reqs` (range-request bookkeeping triples)
    /// failed with [`RecvError::WorkerFailed`] on `shard`.
    fn fail_requests(&mut self, reqs: &[(usize, usize, usize)], shard: usize) {
        for &(i, ..) in reqs {
            self.failures[i] = Some(RecvError::WorkerFailed { shard });
        }
    }

    /// Transitions the service into the poisoned terminal state: the
    /// backend could not vouch for its dataset after a write-path panic,
    /// so admission closes and everything still in flight or queued fails
    /// fast. The `dead` flag makes racing stragglers classify as
    /// [`RecvError::WorkerFailed`] rather than a clean shutdown.
    fn poison(&mut self) {
        self.poisoned = true;
        self.shared.dead.store(true, Ordering::Release);
        self.shared.open.store(false, Ordering::Release);
    }

    /// Executes one write run (`pending[idxs]`, all `Update`/`Step`):
    /// flattens every request's updates — in admission order, so duplicate
    /// ids resolve last-write-wins across requests exactly as a serial run
    /// would — into ONE backend `update_batch` application.
    fn run_update_batch(&mut self, idxs: &[usize], totals: &mut DispatchTotals) {
        // A write run executes as ordered **segments**: consecutive
        // geometry writes (`Update`/`Step`/`StepDelta`) flatten into one
        // coalesced backend application, while each membership request
        // (`Insert`/`Remove`) is its own backend call at its admission
        // position — so id allocation and tombstoning stay strictly
        // ordered against the geometry writes around them, and the write
        // barrier an observer sees is identical to serial execution in
        // admission order.
        self.updates.clear();
        let mut seg = 0usize;
        for pos in 0..idxs.len() {
            let i = idxs[pos];
            if self.poisoned {
                for &j in &idxs[pos..] {
                    if self.failures[j].is_none() {
                        self.failures[j] = Some(RecvError::WorkerFailed { shard: 0 });
                    }
                }
                return;
            }
            if self.failures[i].is_some() {
                continue; // shed at admission: the write never happens, so
                          // later queries correctly see state without it
            }
            match &self.pending[i].request {
                Request::Update(pairs) => {
                    self.updates
                        .extend(pairs.iter().map(|&(id, bb)| (id, Shape::Box(bb))));
                    self.responses[i] = Some(Response::Update(pairs.len() as u64));
                    continue;
                }
                Request::Step(envelopes) => {
                    self.updates.extend(
                        envelopes
                            .iter()
                            .enumerate()
                            .map(|(id, &bb)| (id as ElementId, Shape::Box(bb))),
                    );
                    self.responses[i] = Some(Response::Step(envelopes.len() as u64));
                    continue;
                }
                Request::StepDelta(moves) => {
                    self.updates
                        .extend(moves.iter().map(|&(id, bb)| (id, Shape::Box(bb))));
                    self.responses[i] = Some(Response::StepDelta(moves.len() as u64));
                    continue;
                }
                Request::Insert(_) | Request::Remove(_) => {}
                _ => unreachable!("update runs only hold write requests"),
            }
            // Membership barrier: flush the geometry segment admitted
            // before it, then run the membership call itself.
            self.flush_geometry(&idxs[seg..pos], totals);
            if self.poisoned {
                for &j in &idxs[pos..] {
                    if self.failures[j].is_none() {
                        self.failures[j] = Some(RecvError::WorkerFailed { shard: 0 });
                    }
                }
                return;
            }
            self.run_membership(i, totals);
            seg = pos + 1;
        }
        self.flush_geometry(&idxs[seg..], totals);
    }

    /// Applies the flattened geometry writes of the requests in `seg`
    /// as one coalesced backend application. On a shard death the
    /// segment's surviving write requests fail with the typed error — the
    /// write *may* be partially applied (it is applied on every surviving
    /// shard); which requests' entries landed on the dead shard is not
    /// attributable after coalescing, so the whole segment fails. On an
    /// unrecovered dispatcher-level write panic the service poisons.
    /// Every applied (even partially applied) segment **publishes the
    /// next epoch** and stamps it on the segment's surviving requests —
    /// the ack a client receives carries the epoch that made its write
    /// visible to snapshot readers.
    fn flush_geometry(&mut self, seg: &[usize], totals: &mut DispatchTotals) {
        if self.updates.is_empty() {
            return;
        }
        let call = catch_unwind(AssertUnwindSafe(|| {
            self.backend.update_batch(&self.updates)
        }));
        match call {
            Ok(report) => {
                totals.exec_elapsed_s += report.stats.elapsed_s;
                totals.update.add(&report.stats);
                totals.update_runs.push(self.updates.len());
                if let Some(shard) = report.failed {
                    for &i in seg {
                        if self.failures[i].is_none() && self.pending[i].request.is_write() {
                            self.failures[i] = Some(RecvError::WorkerFailed { shard });
                        }
                    }
                }
            }
            Err(_) => {
                totals.sched_panics += 1;
                for &i in seg {
                    if self.failures[i].is_none() && self.pending[i].request.is_write() {
                        self.failures[i] = Some(RecvError::WorkerFailed { shard: 0 });
                    }
                }
                // A panic that unwound out of a *write* is only survivable
                // if the backend can restore index–data consistency
                // (recovery restores consistency, not the write's
                // atomicity — the batch may be partially applied).
                if !self.backend.recover(true) {
                    self.poison();
                }
            }
        }
        self.updates.clear();
        // The live dataset advanced (wholly or, on a shard death,
        // partially): publish the barrier's epoch so snapshot readers see
        // it, then stamp it on the acked writes.
        self.publish_epoch(self.epoch + 1);
        for &i in seg {
            if self.failures[i].is_none() {
                self.epochs[i] = self.epoch;
            }
        }
    }

    /// Runs the membership request at pending index `i` (`Insert` or
    /// `Remove`) as its own backend call, with the same failure discipline
    /// as a geometry segment — scoped to this single request, since the
    /// backend call carries nothing else.
    fn run_membership(&mut self, i: usize, totals: &mut DispatchTotals) {
        let call = match &self.pending[i].request {
            Request::Insert(envelopes) => {
                let shapes: Vec<Shape> = envelopes.iter().map(|&bb| Shape::Box(bb)).collect();
                catch_unwind(AssertUnwindSafe(|| {
                    let (ids, report) = self.backend.insert_batch(&shapes);
                    (Response::Insert(ids), report)
                }))
            }
            Request::Remove(ids) => catch_unwind(AssertUnwindSafe(|| {
                let report = self.backend.remove_batch(ids);
                (Response::Remove(ids.len() as u64), report)
            })),
            _ => unreachable!("run_membership called on a non-membership request"),
        };
        match call {
            Ok((response, report)) => {
                totals.exec_elapsed_s += report.stats.elapsed_s;
                totals.update.add(&report.stats);
                totals.update_runs.push(self.pending[i].request.len());
                if let Some(shard) = report.failed {
                    self.failures[i] = Some(RecvError::WorkerFailed { shard });
                } else {
                    self.responses[i] = Some(response);
                }
            }
            Err(_) => {
                totals.sched_panics += 1;
                self.failures[i] = Some(RecvError::WorkerFailed { shard: 0 });
                if !self.backend.recover(true) {
                    self.poison();
                }
            }
        }
        // Membership is a write barrier like any other: publish its epoch
        // and stamp the ack (see `flush_geometry`).
        self.publish_epoch(self.epoch + 1);
        if self.failures[i].is_none() {
            self.epochs[i] = self.epoch;
        }
    }
}

/// The owning side of a running service: spawns the scheduler thread,
/// hands out [`ServiceHandle`]s, and controls shutdown.
///
/// ```
/// use simspatial_datagen::ElementSoupBuilder;
/// use simspatial_geom::{Aabb, Point3};
/// use simspatial_index::{GridConfig, UniformGrid};
/// use simspatial_service::{EngineBackend, Request, ServiceConfig, SpatialService};
///
/// let data = ElementSoupBuilder::new().count(500).seed(7).build();
/// let backend = EngineBackend::build(data.elements().to_vec(), |d| {
///     UniformGrid::build(d, GridConfig::auto(d))
/// });
/// let service = SpatialService::spawn(backend, ServiceConfig::default());
/// let handle = service.handle();
/// let ticket = handle
///     .submit(Request::Range(vec![Aabb::new(
///         Point3::new(0.0, 0.0, 0.0),
///         Point3::new(30.0, 30.0, 30.0),
///     )]))
///     .unwrap();
/// let lists = ticket.recv().unwrap().into_range().unwrap();
/// assert_eq!(lists.len(), 1);
/// let stats = service.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
pub struct SpatialService {
    tx: mpsc::SyncSender<Envelope>,
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl SpatialService {
    /// Spawns the scheduler thread over `backend` with `config`.
    pub fn spawn<B: ServiceBackend>(backend: B, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            open: AtomicBool::new(true),
            dead: AtomicBool::new(false),
            writable: backend.supports_updates(),
            membership: backend.supports_membership(),
            default_deadline: config.default_deadline,
            queue_cap: config.queue_cap.max(1),
            queue_depth: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            retries_attempted: AtomicU64::new(0),
            stats: Mutex::new(StatsInner {
                memory_bytes: backend.memory_bytes(),
                shard_sizes: backend.shard_sizes(),
                ..StatsInner::default()
            }),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_cap.max(1));
        let sched_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("simspatial-dispatch".into())
            .spawn(move || Scheduler::new(backend, sched_shared, config).run(rx))
            .expect("spawn dispatcher thread");
        Self {
            tx,
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// A new client handle (cheap; clone freely across threads).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.snapshot()
    }

    /// Orderly shutdown: stop admitting, drain and complete everything
    /// already queued, stop the backend workers, and return the final
    /// stats. Subsequent `submit` calls on surviving handles error with
    /// [`SubmitError::ShutDown`].
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        self.shared.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.shared.open.store(false, Ordering::Release);
        if let Some(t) = self.dispatcher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SpatialService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
