//! The service front door and the micro-batching scheduler.
//!
//! Clients clone a [`ServiceHandle`] and submit [`Request`]s into a
//! **bounded** intake queue (admission control: the blocking
//! [`ServiceHandle::submit`] applies backpressure, the non-blocking
//! [`ServiceHandle::try_submit`] reports `Full`). A single scheduler
//! thread drains the queue, **coalesces** up to `max_batch` concurrent
//! requests (waiting at most `max_wait` for stragglers once the first is
//! in hand), executes the merged batches against the backend, splits the
//! results back per request, and completes each request's [`Ticket`].
//!
//! Coalescing is what converts independent client traffic into the wide
//! SoA batches the kernel layer is fastest at: all range boxes of one
//! dispatch run as **one** `range_batch`, and kNN probes group by `k` into
//! one `knn_batch` per distinct `k`. Per-request result order is identical
//! to a serial engine run, because the coalesced batch preserves each
//! request's query order and the batch plans are deterministic.
//!
//! Shutdown is orderly: [`SpatialService::shutdown`] (and `Drop`) flips
//! the admission flag — new submissions fail fast with
//! [`SubmitError::ShutDown`] — then the scheduler drains every request
//! already admitted before exiting, so accepted work is completed, not
//! dropped. (Only a submission that races the flag *and* loses its
//! dispatcher sees its ticket error with `RecvError::ShutDown`.)

use crate::backend::ServiceBackend;
use crate::request::{Completion, Request, Response, SubmitError, Ticket};
use crate::stats::{LatencyHistogram, ServiceStats, BATCH_BUCKETS};
use simspatial_geom::stats::PredicateCounts;
use simspatial_geom::{Aabb, ElementId, Point3, Shape};
use simspatial_index::{BatchResults, KnnBatchResults, UpdateStats};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound of the intake queue (requests). `submit` blocks and
    /// `try_submit` rejects once this many requests are pending.
    pub queue_cap: usize,
    /// Maximum requests coalesced into one dispatch.
    pub max_batch: usize,
    /// How long a **lone** request waits for company before dispatching
    /// alone. A dispatch already holding two or more requests never
    /// waits: the scheduler drains whatever is queued and executes.
    pub max_wait: Duration,
    /// Micro-batching on/off. Off = every request dispatches alone
    /// (the baseline the `service` bench compares against).
    pub coalesce: bool,
    /// How often the idle scheduler re-checks the shutdown flag.
    pub idle_poll: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_cap: 1024,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            coalesce: true,
            idle_poll: Duration::from_millis(20),
        }
    }
}

impl ServiceConfig {
    /// Returns the config with coalescing disabled.
    pub fn no_coalesce(mut self) -> Self {
        self.coalesce = false;
        self
    }

    /// Returns the config with the given intake queue bound.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap.max(1);
        self
    }

    /// Returns the config with the given coalescing window.
    pub fn with_batching(mut self, max_batch: usize, max_wait: Duration) -> Self {
        self.max_batch = max_batch.max(1);
        self.max_wait = max_wait;
        self
    }
}

/// One queued request plus its completion channel and admission timestamp.
struct Envelope {
    request: Request,
    reply: mpsc::Sender<Completion>,
    submitted: Instant,
}

/// Scheduler-side counters, only ever touched under the lock by the
/// dispatcher thread (briefly, once per dispatch) and by stats snapshots —
/// the submit hot path uses the lock-free atomics on [`Shared`] instead.
#[derive(Default)]
struct StatsInner {
    completed: u64,
    dispatches: u64,
    coalesced_requests: u64,
    batch_hist: [u64; BATCH_BUCKETS],
    exec_elapsed_s: f64,
    results: u64,
    counts: PredicateCounts,
    latency: LatencyHistogram,
    updates_applied: u64,
    migrations: u64,
    updates_skipped: u64,
    update_dispatches: u64,
    coalesced_updates: u64,
    update_hist: [u64; BATCH_BUCKETS],
    /// Backend memory/shard gauges: captured at spawn, refreshed by the
    /// dispatcher after every update application (migrations move elements
    /// and shrink/grow shards).
    memory_bytes: usize,
    shard_sizes: Vec<usize>,
}

/// State shared by every handle, the service, and the scheduler thread.
struct Shared {
    open: AtomicBool,
    /// Whether the backend applies write batches; write requests are
    /// rejected at admission otherwise.
    writable: bool,
    queue_depth: AtomicUsize,
    // Admission-path counters are atomics so producer submits never
    // contend with the dispatcher's per-dispatch stats update.
    submitted: AtomicU64,
    rejected: AtomicU64,
    max_queue_depth: AtomicUsize,
    stats: Mutex<StatsInner>,
}

impl Shared {
    fn note_admitted(&self, depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServiceStats {
        let inner = self.stats.lock().expect("stats lock");
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: inner.completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Acquire),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            dispatches: inner.dispatches,
            coalesced_requests: inner.coalesced_requests,
            batch_hist: inner.batch_hist,
            exec_elapsed_s: inner.exec_elapsed_s,
            results: inner.results,
            counts: inner.counts,
            latency: inner.latency,
            updates_applied: inner.updates_applied,
            migrations: inner.migrations,
            updates_skipped: inner.updates_skipped,
            update_dispatches: inner.update_dispatches,
            coalesced_updates: inner.coalesced_updates,
            update_hist: inner.update_hist,
            memory_bytes: inner.memory_bytes,
            shard_sizes: inner.shard_sizes.clone(),
        }
    }
}

/// A cloneable client-side handle: submit requests, read stats. All clones
/// share one service; dropping handles never stops the service (see
/// [`SpatialService::shutdown`]).
pub struct ServiceHandle {
    tx: mpsc::SyncSender<Envelope>,
    shared: Arc<Shared>,
}

impl Clone for ServiceHandle {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
        }
    }
}

impl ServiceHandle {
    /// Submits a request, **blocking** while the intake queue is full
    /// (admission-control backpressure). Returns the completion ticket,
    /// or the request back if the service is shut down (or the request is
    /// a write and the backend is read-only).
    pub fn submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        if !self.shared.open.load(Ordering::Acquire) {
            return Err(SubmitError::ShutDown(request));
        }
        if request.is_write() && !self.shared.writable {
            return Err(SubmitError::ReadOnly(request));
        }
        let (reply, rx) = mpsc::channel();
        let submitted = Instant::now();
        let env = Envelope {
            request,
            reply,
            submitted,
        };
        let depth = self.shared.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
        match self.tx.send(env) {
            Ok(()) => {
                self.shared.note_admitted(depth);
                Ok(Ticket { rx, submitted })
            }
            Err(mpsc::SendError(env)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                Err(SubmitError::ShutDown(env.request))
            }
        }
    }

    /// Non-blocking submit: returns [`SubmitError::Full`] (with the
    /// request) instead of waiting when the queue is at capacity.
    pub fn try_submit(&self, request: Request) -> Result<Ticket, SubmitError> {
        if !self.shared.open.load(Ordering::Acquire) {
            return Err(SubmitError::ShutDown(request));
        }
        if request.is_write() && !self.shared.writable {
            return Err(SubmitError::ReadOnly(request));
        }
        let (reply, rx) = mpsc::channel();
        let submitted = Instant::now();
        let env = Envelope {
            request,
            reply,
            submitted,
        };
        let depth = self.shared.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
        match self.tx.try_send(env) {
            Ok(()) => {
                self.shared.note_admitted(depth);
                Ok(Ticket { rx, submitted })
            }
            Err(mpsc::TrySendError::Full(env)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Full(env.request))
            }
            Err(mpsc::TrySendError::Disconnected(env)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::AcqRel);
                Err(SubmitError::ShutDown(env.request))
            }
        }
    }

    /// True while the service accepts submissions.
    pub fn is_open(&self) -> bool {
        self.shared.open.load(Ordering::Acquire)
    }

    /// True when the backend applies write requests (`Update`/`Step`);
    /// false means such submissions return [`SubmitError::ReadOnly`].
    pub fn is_writable(&self) -> bool {
        self.shared.writable
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.snapshot()
    }
}

/// The scheduler state living on the dispatcher thread.
struct Scheduler<B: ServiceBackend> {
    backend: B,
    shared: Arc<Shared>,
    cfg: ServiceConfig,
    // Dispatch scratch, reused across cycles.
    pending: Vec<Envelope>,
    responses: Vec<Option<Response>>,
    boxes: Vec<Aabb>,
    /// `(pending idx, first box, box count)` per range-family request.
    range_req: Vec<(usize, usize, usize)>,
    range_results: BatchResults,
    /// `(k, pending idx, probe idx within request, point)` per kNN probe.
    knn_flat: Vec<(usize, usize, usize, Point3)>,
    knn_points: Vec<Point3>,
    knn_results: KnnBatchResults,
    /// Flattened `(id, geometry)` write batch of the current update run.
    updates: Vec<(ElementId, Shape)>,
}

/// Accounting accumulated across the runs of one dispatch, folded into
/// [`StatsInner`] in a single critical section at the end.
#[derive(Default)]
struct DispatchTotals {
    exec_elapsed_s: f64,
    results: u64,
    counts: PredicateCounts,
    update: UpdateStats,
    /// Coalesced update counts per backend application this dispatch
    /// (feeds the update batch-size histogram).
    update_runs: Vec<usize>,
}

impl<B: ServiceBackend> Scheduler<B> {
    fn new(backend: B, shared: Arc<Shared>, cfg: ServiceConfig) -> Self {
        Self {
            backend,
            shared,
            cfg,
            pending: Vec::new(),
            responses: Vec::new(),
            boxes: Vec::new(),
            range_req: Vec::new(),
            range_results: BatchResults::new(),
            knn_flat: Vec::new(),
            knn_points: Vec::new(),
            knn_results: KnnBatchResults::new(),
            updates: Vec::new(),
        }
    }

    fn run(mut self, rx: mpsc::Receiver<Envelope>) {
        loop {
            match rx.recv_timeout(self.cfg.idle_poll) {
                Ok(env) => self.collect_and_dispatch(env, &rx),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !self.shared.open.load(Ordering::Acquire) {
                        break;
                    }
                }
                // Every handle AND the owning service are gone: nothing can
                // ever submit again.
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        // Orderly drain: everything admitted before the flag flipped (and
        // any sender that was blocked on the bounded queue and completes
        // while we drain) still gets served.
        while let Ok(env) = rx.try_recv() {
            self.collect_and_dispatch(env, &rx);
        }
        self.backend.shutdown();
    }

    /// Eagerly drains up to `max_batch - 1` more queued requests behind
    /// `first`, then dispatches the coalesced batch. The scheduler never
    /// stalls a batch it already holds: only a **lone** request waits (up
    /// to `max_wait`) for company — once at least two requests are in
    /// hand, an empty queue triggers immediate dispatch, so pipelined
    /// closed-loop traffic coalesces without paying added latency.
    fn collect_and_dispatch(&mut self, first: Envelope, rx: &mpsc::Receiver<Envelope>) {
        self.pending.clear();
        self.pending.push(first);
        if self.cfg.coalesce && self.cfg.max_batch > 1 {
            let deadline = Instant::now() + self.cfg.max_wait;
            while self.pending.len() < self.cfg.max_batch {
                match rx.try_recv() {
                    Ok(env) => self.pending.push(env),
                    Err(mpsc::TryRecvError::Empty) => {
                        if self.pending.len() > 1 {
                            break; // have a batch: go, don't trade latency
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(env) => self.pending.push(env),
                            Err(_) => break,
                        }
                    }
                    Err(mpsc::TryRecvError::Disconnected) => break,
                }
            }
        }
        self.shared
            .queue_depth
            .fetch_sub(self.pending.len(), Ordering::AcqRel);
        self.dispatch();
    }

    /// Executes one coalesced dispatch. The pending requests are processed
    /// as consecutive **runs** in admission order: maximal runs of query
    /// requests coalesce into backend query batches exactly as before, and
    /// maximal runs of write requests coalesce into **one** backend
    /// `update_batch` application each. Runs execute strictly in order, so
    /// every write request is a barrier: queries admitted before it see
    /// pre-write state, queries admitted after it see post-write state —
    /// the dispatch is observationally identical to a serial run of the
    /// requests in admission order.
    fn dispatch(&mut self) {
        let n = self.pending.len();
        self.responses.clear();
        self.responses.resize_with(n, || None);
        let mut totals = DispatchTotals::default();
        let mut lo = 0usize;
        let mut wrote = false;
        while lo < n {
            let write = self.pending[lo].request.is_write();
            let mut hi = lo + 1;
            while hi < n && self.pending[hi].request.is_write() == write {
                hi += 1;
            }
            if write {
                self.run_update_batch(lo, hi, &mut totals);
                wrote = true;
            } else {
                self.run_query_batch(lo, hi, &mut totals);
            }
            lo = hi;
        }

        // ---- Record stats (one short critical section — ticket completion
        // happens after the lock is released, so producer submits never
        // wait behind the reply sends).
        {
            let mut stats = self.shared.stats.lock().expect("stats lock");
            stats.dispatches += 1;
            stats.coalesced_requests += n as u64;
            let bucket = (usize::BITS - 1 - n.leading_zeros()) as usize;
            stats.batch_hist[bucket.min(BATCH_BUCKETS - 1)] += 1;
            stats.exec_elapsed_s += totals.exec_elapsed_s;
            stats.results += totals.results;
            stats.counts.add(&totals.counts);
            stats.updates_applied += totals.update.applied;
            stats.migrations += totals.update.migrations;
            stats.updates_skipped += totals.update.skipped;
            for &sz in &totals.update_runs {
                stats.update_dispatches += 1;
                stats.coalesced_updates += sz as u64;
                let b = (usize::BITS - 1 - sz.max(1).leading_zeros()) as usize;
                stats.update_hist[b.min(BATCH_BUCKETS - 1)] += 1;
            }
            if wrote {
                // Migrations moved elements between shards: refresh the
                // memory/shard gauges from the backend.
                stats.memory_bytes = self.backend.memory_bytes();
                stats.shard_sizes = self.backend.shard_sizes();
            }
            stats.completed += n as u64;
            for env in &self.pending {
                stats.latency.record(env.submitted.elapsed());
            }
        }

        // ---- Complete tickets.
        for (env, resp) in self.pending.drain(..).zip(self.responses.drain(..)) {
            let latency = env.submitted.elapsed();
            // A dropped ticket (client gave up) is not an error.
            let _ = env.reply.send(Completion {
                response: resp.expect("every request family produced a response"),
                latency,
            });
        }
    }

    /// Executes one query run (`pending[lo..hi]`, all non-write): all range
    /// boxes of the run coalesce into ONE backend `range_batch`, kNN probes
    /// group by `k` into one backend batch per distinct `k`, and results
    /// split back per request.
    fn run_query_batch(&mut self, lo: usize, hi: usize, totals: &mut DispatchTotals) {
        // ---- Range family.
        self.boxes.clear();
        self.range_req.clear();
        for (i, env) in self.pending[lo..hi].iter().enumerate() {
            if let Request::Range(qs) | Request::RangeCount(qs) = &env.request {
                self.range_req.push((lo + i, self.boxes.len(), qs.len()));
                self.boxes.extend_from_slice(qs);
            }
        }
        if !self.boxes.is_empty() {
            let stats = self
                .backend
                .range_batch(&self.boxes, &mut self.range_results);
            totals.exec_elapsed_s += stats.elapsed_s;
            totals.results += stats.results;
            totals.counts.add(&stats.counts);
        }
        for &(i, start, len) in &self.range_req {
            let resp = match &self.pending[i].request {
                Request::Range(_) => Response::Range(
                    (start..start + len)
                        .map(|q| self.range_results.query_results(q).to_vec())
                        .collect(),
                ),
                Request::RangeCount(_) => Response::RangeCount(
                    (start..start + len)
                        .map(|q| self.range_results.query_results(q).len() as u64)
                        .collect(),
                ),
                _ => unreachable!("range_req only holds range requests"),
            };
            self.responses[i] = Some(resp);
        }

        // ---- kNN family.
        self.knn_flat.clear();
        for (i, env) in self.pending[lo..hi].iter().enumerate() {
            if let Request::Knn(probes) = &env.request {
                self.responses[lo + i] = Some(Response::Knn(vec![Vec::new(); probes.len()]));
                for (j, &(p, k)) in probes.iter().enumerate() {
                    self.knn_flat.push((k, lo + i, j, p));
                }
            }
        }
        // Stable order inside each k-group (request order, then probe
        // order) keeps the coalesced batch deterministic.
        self.knn_flat.sort_by_key(|&(k, i, j, _)| (k, i, j));
        let mut g = 0usize;
        while g < self.knn_flat.len() {
            let k = self.knn_flat[g].0;
            let mut end = g;
            while end < self.knn_flat.len() && self.knn_flat[end].0 == k {
                end += 1;
            }
            self.knn_points.clear();
            self.knn_points
                .extend(self.knn_flat[g..end].iter().map(|&(_, _, _, p)| p));
            let stats = self
                .backend
                .knn_batch(&self.knn_points, k, &mut self.knn_results);
            totals.exec_elapsed_s += stats.elapsed_s;
            totals.results += stats.results;
            totals.counts.add(&stats.counts);
            for (slot, &(_, i, j, _)) in self.knn_flat[g..end].iter().enumerate() {
                let list = self.knn_results.query_results(slot).to_vec();
                match self.responses[i].as_mut() {
                    Some(Response::Knn(lists)) => lists[j] = list,
                    _ => unreachable!("knn_flat only holds knn requests"),
                }
            }
            g = end;
        }
    }

    /// Executes one write run (`pending[lo..hi]`, all `Update`/`Step`):
    /// flattens every request's updates — in admission order, so duplicate
    /// ids resolve last-write-wins across requests exactly as a serial run
    /// would — into ONE backend `update_batch` application.
    fn run_update_batch(&mut self, lo: usize, hi: usize, totals: &mut DispatchTotals) {
        self.updates.clear();
        for (i, env) in self.pending[lo..hi].iter().enumerate() {
            match &env.request {
                Request::Update(pairs) => {
                    self.updates
                        .extend(pairs.iter().map(|&(id, bb)| (id, Shape::Box(bb))));
                    self.responses[lo + i] = Some(Response::Update(pairs.len() as u64));
                }
                Request::Step(envelopes) => {
                    self.updates.extend(
                        envelopes
                            .iter()
                            .enumerate()
                            .map(|(id, &bb)| (id as ElementId, Shape::Box(bb))),
                    );
                    self.responses[lo + i] = Some(Response::Step(envelopes.len() as u64));
                }
                _ => unreachable!("update runs only hold write requests"),
            }
        }
        if !self.updates.is_empty() {
            let stats = self.backend.update_batch(&self.updates);
            totals.exec_elapsed_s += stats.elapsed_s;
            totals.update.add(&stats);
            totals.update_runs.push(self.updates.len());
        }
    }
}

/// The owning side of a running service: spawns the scheduler thread,
/// hands out [`ServiceHandle`]s, and controls shutdown.
///
/// ```
/// use simspatial_datagen::ElementSoupBuilder;
/// use simspatial_geom::{Aabb, Point3};
/// use simspatial_index::{GridConfig, UniformGrid};
/// use simspatial_service::{EngineBackend, Request, ServiceConfig, SpatialService};
///
/// let data = ElementSoupBuilder::new().count(500).seed(7).build();
/// let backend = EngineBackend::build(data.elements().to_vec(), |d| {
///     UniformGrid::build(d, GridConfig::auto(d))
/// });
/// let service = SpatialService::spawn(backend, ServiceConfig::default());
/// let handle = service.handle();
/// let ticket = handle
///     .submit(Request::Range(vec![Aabb::new(
///         Point3::new(0.0, 0.0, 0.0),
///         Point3::new(30.0, 30.0, 30.0),
///     )]))
///     .unwrap();
/// let lists = ticket.recv().unwrap().into_range().unwrap();
/// assert_eq!(lists.len(), 1);
/// let stats = service.shutdown();
/// assert_eq!(stats.completed, 1);
/// ```
pub struct SpatialService {
    tx: mpsc::SyncSender<Envelope>,
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl SpatialService {
    /// Spawns the scheduler thread over `backend` with `config`.
    pub fn spawn<B: ServiceBackend>(backend: B, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            open: AtomicBool::new(true),
            writable: backend.supports_updates(),
            queue_depth: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            stats: Mutex::new(StatsInner {
                memory_bytes: backend.memory_bytes(),
                shard_sizes: backend.shard_sizes(),
                ..StatsInner::default()
            }),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_cap.max(1));
        let sched_shared = Arc::clone(&shared);
        let dispatcher = std::thread::Builder::new()
            .name("simspatial-dispatch".into())
            .spawn(move || Scheduler::new(backend, sched_shared, config).run(rx))
            .expect("spawn dispatcher thread");
        Self {
            tx,
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// A new client handle (cheap; clone freely across threads).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// A point-in-time snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.snapshot()
    }

    /// Orderly shutdown: stop admitting, drain and complete everything
    /// already queued, stop the backend workers, and return the final
    /// stats. Subsequent `submit` calls on surviving handles error with
    /// [`SubmitError::ShutDown`].
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_inner();
        self.shared.snapshot()
    }

    fn shutdown_inner(&mut self) {
        self.shared.open.store(false, Ordering::Release);
        if let Some(t) = self.dispatcher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SpatialService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
