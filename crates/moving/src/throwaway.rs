//! Short-lived throwaway indexes \[7\].
//!
//! Dittrich et al.'s observation — embraced by the paper's conclusion that
//! the new index class will "trade off query execution time for
//! substantially faster index build time" — is to stop maintaining anything:
//! build the cheapest index that helps, use it for one step's queries,
//! throw it away. A uniform grid is the natural throwaway structure in
//! memory (O(n) build, no tree).

use crate::strategy::{StepCost, UpdateStrategy};
use simspatial_geom::{Aabb, Element, ElementId};
use simspatial_index::{GridConfig, SpatialIndex, UniformGrid};

/// A uniform grid rebuilt from scratch on every step.
#[derive(Debug)]
pub struct ThrowawayGrid {
    grid: UniformGrid,
}

impl ThrowawayGrid {
    /// Builds the first grid (auto resolution).
    pub fn build(elements: &[Element]) -> Self {
        Self {
            grid: UniformGrid::build(elements, GridConfig::auto(elements)),
        }
    }
}

impl UpdateStrategy for ThrowawayGrid {
    fn name(&self) -> &'static str {
        "Grid/throwaway"
    }

    fn apply_step(&mut self, _old: &[Element], new: &[Element]) -> StepCost {
        self.grid = UniformGrid::build(new, GridConfig::auto(new));
        StepCost {
            rebuilds: 1,
            ..Default::default()
        }
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        self.grid.range(data, query)
    }

    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::RangeSink,
    ) {
        self.grid.range_into(data, query, scratch, sink);
    }

    fn knn_into(
        &self,
        data: &[Element],
        p: &simspatial_geom::Point3,
        k: usize,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::KnnSink,
    ) {
        simspatial_index::KnnIndex::knn_into(&self.grid, data, p, k, scratch, sink);
    }

    fn memory_bytes(&self) -> usize {
        self.grid.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::UpdateStrategyKind;

    #[test]
    fn stays_correct_across_steps() {
        crate::testutil::check_strategy_correctness(UpdateStrategyKind::ThrowawayGrid);
    }
}
