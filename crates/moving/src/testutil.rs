//! Shared correctness harness for strategy tests.

use crate::strategy::UpdateStrategyKind;
use simspatial_datagen::{Dataset, ElementSoupBuilder, PlasticityModel};
use simspatial_geom::{Aabb, Point3, QueryScratch};
use simspatial_index::{KnnIndex, LinearScan, SpatialIndex};

/// Runs several plasticity steps over a soup and asserts the strategy's
/// range **and kNN** answers stay identical to a fresh linear scan after
/// every step.
pub(crate) fn check_strategy_correctness(kind: UpdateStrategyKind) {
    let mut data: Dataset = ElementSoupBuilder::new()
        .count(800)
        .universe_side(30.0)
        .seed(21)
        .build();
    let mut strategy = kind.create(data.elements());
    let mut model = PlasticityModel::with_sigma(0.05, 99);
    for step in 0..6u32 {
        let old = data.elements().to_vec();
        let moves = model.sample_step(data.len());
        for (id, d) in moves.iter().enumerate() {
            data.displace(id as u32, *d);
        }
        strategy.apply_step(&old, data.elements());

        let scan = LinearScan::build(data.elements());
        for i in 0..6 {
            let c = Point3::new((i * 4 + step) as f32, (i * 3) as f32, (i * 5) as f32);
            let q = Aabb::new(c, Point3::new(c.x + 6.0, c.y + 5.0, c.z + 4.0));
            let mut a = strategy.range(data.elements(), &q);
            let mut b = scan.range(data.elements(), &q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{} step {step} query {i}", strategy.name());
        }

        let mut scratch = QueryScratch::default();
        for i in 0..3 {
            let p = Point3::new((i * 7 + step) as f32, (i * 6) as f32, (i * 9) as f32);
            let mut got = Vec::new();
            strategy.knn_into(data.elements(), &p, 4, &mut scratch, &mut got);
            let want = scan.knn(data.elements(), &p, 4);
            assert_eq!(got, want, "{} step {step} knn {i}", strategy.name());
        }
    }
}
