//! # simspatial-moving
//!
//! Update strategies for spatial indexes under the paper's second challenge
//! (§4): *massive yet minimal* movement — every element moves every step,
//! each by almost nothing.
//!
//! The §4.1 experiment frames the contest: updating all elements of an
//! R-Tree took 130 s per step while rebuilding it from scratch took 48 s,
//! with the crossover at 38 % of the dataset changing. §4.2 surveys the
//! moving-object machinery (grace windows, buffering, throwaway indexes)
//! and observes that each merely shifts cost from maintenance to query.
//! §4.3 proposes grids, whose per-step cost is only the handful of cell
//! switches the tiny movements cause.
//!
//! Every contender implements [`UpdateStrategy`]: the simulation moves the
//! dataset, hands the strategy the before/after element slices, and then
//! runs its monitoring queries — so maintenance cost and query cost are
//! separately measurable, which is precisely the trade-off the paper says
//! these schemes hide.
//!
//! | Kind | §4 reference | Maintenance | Query burden |
//! |------|--------------|-------------|--------------|
//! | [`UpdateStrategyKind::RTreeReinsert`] | the 130 s path | delete+insert per element | none |
//! | [`UpdateStrategyKind::RTreeBottomUp`] | \[26\] bottom-up | patch in place when possible | none |
//! | [`UpdateStrategyKind::RTreeRebuild`] | the 48 s path | full STR rebuild | none |
//! | [`UpdateStrategyKind::LazyGraceWindow`] | \[18, 30\] | only escapes reinserted | loose boxes ⇒ extra tests |
//! | [`UpdateStrategyKind::BufferedUpdates`] | \[6\] | buffer, flush at threshold | buffer probed per query |
//! | [`UpdateStrategyKind::ThrowawayGrid`] | \[7\] | rebuild cheap grid each step | slight (grid) |
//! | [`UpdateStrategyKind::GridMigrate`] | §4.3 direction | cell switches only | slight (grid) |
//! | [`UpdateStrategyKind::NoIndexScan`] | §4.1 bar | zero | O(n) scan |

#![warn(missing_docs)]

mod buffered;
mod grid_migrate;
mod lazy;
mod rtree_strategies;
mod scan;
pub mod service;
mod strategy;
#[cfg(test)]
pub(crate) mod testutil;
mod throwaway;

pub use buffered::BufferedRTree;
pub use grid_migrate::GridMigrate;
pub use lazy::LazyGraceWindow;
pub use rtree_strategies::{RTreeBottomUp, RTreeRebuild, RTreeReinsert};
pub use scan::NoIndexScan;
pub use service::{
    sharded_strategy_engine, strategy_backend, ShardWriteMode, StrategyIndex, StrategyWrites,
};
pub use strategy::{StepCost, UpdateStrategy, UpdateStrategyKind};
pub use throwaway::ThrowawayGrid;
