//! The update-strategy trait and factory.

use simspatial_geom::{Aabb, Element, ElementId, Point3, QueryScratch, Shape};
use simspatial_index::{KnnIndex, KnnSink, LinearScan, RangeSink};

/// Cost accounting of one maintenance step (wall-clock is measured by the
/// caller around [`UpdateStrategy::apply_step`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepCost {
    /// Structural modifications performed (entries reinserted, cells
    /// switched, nodes rebuilt — strategy-defined, 0 for a pure rebuild's
    /// per-element count is reported as `rebuilds`).
    pub structural_updates: u64,
    /// Full rebuilds performed this step.
    pub rebuilds: u64,
    /// Updates absorbed without touching the structure (grace hits, same
    /// cell, buffered).
    pub absorbed: u64,
}

/// An index-maintenance strategy over a moving dataset.
///
/// Contract: after `apply_step(old, new)` the strategy answers `range`
/// queries *exactly* against the `new` element geometry (every strategy
/// here preserves correctness; what varies is where the time goes).
///
/// `Send` so a strategy can serve as a concurrent service's write path
/// (see [`UpdateStrategy::update_batch`] and the `service` module) — every
/// strategy here is plain owned data.
pub trait UpdateStrategy: Send {
    /// Display name for the harness.
    fn name(&self) -> &'static str;

    /// Reacts to one simulation step. `old` and `new` are the full element
    /// slices before and after the step (same ids, same order).
    fn apply_step(&mut self, old: &[Element], new: &[Element]) -> StepCost;

    /// Applies a sparse coalesced write batch: each `(id, shape)` entry
    /// replaces that element's geometry in `data` (the live slice, which
    /// follows the `id == position` convention; out-of-range ids are
    /// skipped), then brings the maintained structure in sync. Duplicate
    /// ids resolve last-write-wins, matching sequential application.
    ///
    /// The default snapshots the old geometry and reuses
    /// [`UpdateStrategy::apply_step`], so every strategy supports the
    /// service's batched-update admission path unchanged; strategies with
    /// a cheaper sparse path can override.
    fn update_batch(&mut self, data: &mut [Element], updates: &[(ElementId, Shape)]) -> StepCost {
        if updates.is_empty() {
            return StepCost::default();
        }
        let old: Vec<Element> = data.to_vec();
        for &(id, shape) in updates {
            if let Some(e) = data.get_mut(id as usize) {
                e.shape = shape;
            }
        }
        self.apply_step(&old, data)
    }

    /// Range query against current geometry.
    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId>;

    /// Sink-based range query against current geometry — the batch path
    /// query harnesses drive with a reused scratch. The default adapts
    /// [`UpdateStrategy::range`]; strategies backed by a sink-capable index
    /// override it to skip the intermediate vector.
    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn RangeSink,
    ) {
        let _ = scratch;
        for id in self.range(data, query) {
            sink.push(id);
        }
    }

    /// Sink-based kNN against current geometry: emits the `k` nearest
    /// elements to `p` in ascending `(distance, id)` order.
    ///
    /// The default computes the exact answer with a linear scan over the
    /// live `data` slice — correct for *every* strategy, since the scan
    /// needs no maintained structure. Strategies backed by a kNN-capable
    /// index (grids, R-Trees) override it to forward, riding their
    /// structure's pruning instead.
    fn knn_into(
        &self,
        data: &[Element],
        p: &Point3,
        k: usize,
        scratch: &mut QueryScratch,
        sink: &mut dyn KnnSink,
    ) {
        LinearScan::build(data).knn_into(data, p, k, scratch, sink);
    }

    /// Approximate bytes held by the strategy's structures.
    fn memory_bytes(&self) -> usize;
}

/// Factory enumeration of every strategy in the crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStrategyKind {
    /// Delete + reinsert every moved entry in an R-Tree (the 130 s path).
    RTreeReinsert,
    /// Bottom-up R-Tree updates \[26\]: in-place patch when the leaf MBR
    /// still covers the moved entry.
    RTreeBottomUp,
    /// STR-rebuild the R-Tree every step (the 48 s path).
    RTreeRebuild,
    /// Grace windows \[18, 30\]: entries indexed with inflated boxes, only
    /// escapes trigger index work.
    LazyGraceWindow,
    /// Update buffering \[6\]: moved ids parked in a side buffer consulted by
    /// every query; flushed into the index past a threshold.
    BufferedUpdates,
    /// Short-lived throwaway index \[7\]: a cheap uniform grid rebuilt from
    /// scratch each step.
    ThrowawayGrid,
    /// Persistent uniform grid, only cell switches applied (§4.3).
    GridMigrate,
    /// No index at all: linear scan per query (§4.1's bar).
    NoIndexScan,
}

impl UpdateStrategyKind {
    /// Every strategy, in presentation order.
    pub const ALL: [UpdateStrategyKind; 8] = [
        UpdateStrategyKind::RTreeReinsert,
        UpdateStrategyKind::RTreeBottomUp,
        UpdateStrategyKind::RTreeRebuild,
        UpdateStrategyKind::LazyGraceWindow,
        UpdateStrategyKind::BufferedUpdates,
        UpdateStrategyKind::ThrowawayGrid,
        UpdateStrategyKind::GridMigrate,
        UpdateStrategyKind::NoIndexScan,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            UpdateStrategyKind::RTreeReinsert => "RTree/reinsert",
            UpdateStrategyKind::RTreeBottomUp => "RTree/bottom-up",
            UpdateStrategyKind::RTreeRebuild => "RTree/rebuild",
            UpdateStrategyKind::LazyGraceWindow => "RTree/grace-window",
            UpdateStrategyKind::BufferedUpdates => "RTree/buffered",
            UpdateStrategyKind::ThrowawayGrid => "Grid/throwaway",
            UpdateStrategyKind::GridMigrate => "Grid/migrate",
            UpdateStrategyKind::NoIndexScan => "LinearScan",
        }
    }

    /// Builds the strategy over the initial dataset.
    pub fn create(&self, elements: &[Element]) -> Box<dyn UpdateStrategy> {
        match self {
            UpdateStrategyKind::RTreeReinsert => Box::new(crate::RTreeReinsert::build(elements)),
            UpdateStrategyKind::RTreeBottomUp => Box::new(crate::RTreeBottomUp::build(elements)),
            UpdateStrategyKind::RTreeRebuild => Box::new(crate::RTreeRebuild::build(elements)),
            UpdateStrategyKind::LazyGraceWindow => {
                Box::new(crate::LazyGraceWindow::build(elements))
            }
            UpdateStrategyKind::BufferedUpdates => Box::new(crate::BufferedRTree::build(elements)),
            UpdateStrategyKind::ThrowawayGrid => Box::new(crate::ThrowawayGrid::build(elements)),
            UpdateStrategyKind::GridMigrate => Box::new(crate::GridMigrate::build(elements)),
            UpdateStrategyKind::NoIndexScan => Box::new(crate::NoIndexScan::build(elements)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = UpdateStrategyKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), UpdateStrategyKind::ALL.len());
    }
}
