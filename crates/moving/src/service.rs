//! Strategy adapters into the concurrent service's write path.
//!
//! The service's [`EngineBackend`](simspatial_service::EngineBackend)
//! executes queries through `SpatialIndex`/`KnnIndex` and applies write
//! batches through a pluggable
//! [`IndexUpdater`](simspatial_service::IndexUpdater). An
//! [`UpdateStrategy`] is *both halves at once* — it answers range/kNN
//! queries against its maintained structure and knows how to absorb
//! movement — so this module adapts any strategy into that slot:
//!
//! * [`StrategyIndex`] wraps a boxed strategy as a `SpatialIndex +
//!   KnnIndex`, forwarding the sink-based query paths.
//! * [`StrategyWrites`] is the [`IndexUpdater`] that routes coalesced
//!   write batches into [`UpdateStrategy::update_batch`].
//! * [`strategy_backend`] wires both into a writable `EngineBackend`, so a
//!   simulation's maintenance strategy (grid migration, bottom-up R-Tree
//!   updates, buffering, …) serves concurrent clients directly — the
//!   paper's alternating update/query workload through one admission path.
//!
//! ```
//! use simspatial_datagen::ElementSoupBuilder;
//! use simspatial_geom::{Aabb, Point3};
//! use simspatial_moving::service::strategy_backend;
//! use simspatial_moving::UpdateStrategyKind;
//! use simspatial_service::{Request, ServiceConfig, SpatialService};
//!
//! let data = ElementSoupBuilder::new().count(500).seed(21).build();
//! let backend = strategy_backend(data.elements().to_vec(), UpdateStrategyKind::GridMigrate);
//! let service = SpatialService::spawn(backend, ServiceConfig::default());
//! let handle = service.handle();
//! // Move element 4 into a known box, then range-query it back.
//! let target = Aabb::new(Point3::new(2.0, 2.0, 2.0), Point3::new(3.0, 3.0, 3.0));
//! handle.submit(Request::Update(vec![(4, target)])).unwrap().recv().unwrap();
//! let hits = handle
//!     .submit(Request::Range(vec![target]))
//!     .unwrap()
//!     .recv()
//!     .unwrap()
//!     .into_range()
//!     .unwrap();
//! assert!(hits[0].contains(&4));
//! let stats = service.shutdown();
//! assert_eq!(stats.updates_applied, 1);
//! ```

use crate::strategy::{UpdateStrategy, UpdateStrategyKind};
use simspatial_geom::{Aabb, Element, ElementId, Point3, QueryScratch, Shape};
use simspatial_index::{
    KnnIndex, KnnSink, RangeSink, ShardApplyCost, ShardedEngine, SpatialIndex, UpdateStats,
};
use simspatial_service::{EngineBackend, IndexUpdater};
use std::time::Instant;

/// An [`UpdateStrategy`] adapted to the index traits, so strategy-backed
/// structures run everywhere an index does — in particular inside the
/// service's `EngineBackend`. Queries forward to the strategy's sink-based
/// paths; the element count is tracked by the wrapper (strategies never own
/// the dataset).
pub struct StrategyIndex {
    strategy: Box<dyn UpdateStrategy>,
    len: usize,
}

impl StrategyIndex {
    /// Wraps `strategy`, which currently indexes `len` elements.
    pub fn new(strategy: Box<dyn UpdateStrategy>, len: usize) -> Self {
        Self { strategy, len }
    }

    /// Builds the strategy `kind` over `elements` and wraps it.
    pub fn build(kind: UpdateStrategyKind, elements: &[Element]) -> Self {
        Self::new(kind.create(elements), elements.len())
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &dyn UpdateStrategy {
        self.strategy.as_ref()
    }

    /// The wrapped strategy, mutably — the hook incremental shard
    /// executors use to push write lanes into the maintained structure.
    pub fn strategy_mut(&mut self) -> &mut dyn UpdateStrategy {
        self.strategy.as_mut()
    }
}

impl SpatialIndex for StrategyIndex {
    fn name(&self) -> &'static str {
        self.strategy.name()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn RangeSink,
    ) {
        self.strategy.range_into(data, query, scratch, sink);
    }

    fn memory_bytes(&self) -> usize {
        self.strategy.memory_bytes()
    }
}

impl KnnIndex for StrategyIndex {
    fn knn_into(
        &self,
        data: &[Element],
        p: &Point3,
        k: usize,
        scratch: &mut QueryScratch,
        sink: &mut dyn KnnSink,
    ) {
        self.strategy.knn_into(data, p, k, scratch, sink);
    }
}

/// The [`IndexUpdater`] that applies the service's coalesced write batches
/// through [`UpdateStrategy::update_batch`] — grid migration absorbs cell
/// switches, buffered strategies park the moves, rebuild strategies
/// rebuild, all behind the same service request. Remembers the strategy
/// kind so a panic mid-write can be recovered by recreating the strategy
/// over the (partially updated) dataset.
pub struct StrategyWrites {
    kind: UpdateStrategyKind,
}

impl StrategyWrites {
    /// An updater that recreates strategies of `kind` on recovery.
    pub fn new(kind: UpdateStrategyKind) -> Self {
        Self { kind }
    }
}

impl IndexUpdater<StrategyIndex> for StrategyWrites {
    fn apply(
        &mut self,
        index: &mut StrategyIndex,
        data: &mut [Element],
        updates: &[(ElementId, Shape)],
    ) -> UpdateStats {
        let start = Instant::now();
        // Accounting matches the other write paths: `applied` counts
        // distinct known ids (last-write-wins), the rest is `skipped`.
        let mut distinct: std::collections::HashSet<ElementId> = std::collections::HashSet::new();
        for &(id, _) in updates {
            if (id as usize) < data.len() {
                distinct.insert(id);
            }
        }
        let applied = distinct.len() as u64;
        let cost = index.strategy.update_batch(data, updates);
        UpdateStats {
            elapsed_s: start.elapsed().as_secs_f64(),
            applied,
            migrations: cost.structural_updates + cost.rebuilds,
            skipped: updates.len() as u64 - applied,
            shipped: updates.len() as u64,
            structural: cost.structural_updates,
            absorbed: cost.absorbed,
            rebuilds: cost.rebuilds,
            ..UpdateStats::default()
        }
    }

    fn recover(&mut self, index: &mut StrategyIndex, data: &mut [Element]) -> bool {
        // A panic mid-`update_batch` may leave the strategy's structure
        // torn, but the dataset (`data`) is the source of truth: recreate
        // the strategy over it. This restores index–data consistency, not
        // the interrupted write's atomicity (see `IndexUpdater::recover`).
        *index = StrategyIndex::build(self.kind, data);
        true
    }
}

/// A writable service backend over the update strategy `kind`: queries run
/// through the strategy's structure, write batches through its maintenance
/// path. `data` must follow the dataset convention (`element.id ==
/// position`).
pub fn strategy_backend(
    data: Vec<Element>,
    kind: UpdateStrategyKind,
) -> EngineBackend<StrategyIndex> {
    let index = StrategyIndex::build(kind, &data);
    EngineBackend::with_updater(data, index, StrategyWrites::new(kind))
}

/// The in-shard write mode of a strategy-backed sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardWriteMode {
    /// Every write lane rebuilds the shard's strategy structure from its
    /// (updated) element clone — the differential oracle, and the only
    /// mode that handles membership changes inside the lane itself.
    Rebuild,
    /// Geometry-only lanes whose ids all resolve in the shard are pushed
    /// through [`UpdateStrategy::update_batch`] in place, touching only
    /// the dirty cells/nodes; lanes carrying migrations, inserts or
    /// removals — and supervised restarts — fall back to the rebuild path.
    Incremental,
}

/// A strategy-backed [`ShardedEngine`]: each shard holds its own instance
/// of the update strategy `kind` over the shard's element clone, and write
/// lanes are applied per `mode`. `data` must follow the dataset convention
/// (`element.id == position`); shard-local re-identification restores that
/// convention inside every shard, which is what lets position-addressed
/// strategies run there.
pub fn sharded_strategy_engine(
    data: &[Element],
    shards: usize,
    kind: UpdateStrategyKind,
    mode: ShardWriteMode,
) -> ShardedEngine<StrategyIndex> {
    let engine = ShardedEngine::build(data, shards, move |els| StrategyIndex::build(kind, els))
        .with_rebuild(move |els| StrategyIndex::build(kind, els));
    match mode {
        ShardWriteMode::Rebuild => engine,
        ShardWriteMode::Incremental => engine.with_apply(|index, data, updates| {
            let cost = index.strategy_mut().update_batch(data, updates);
            index.len = data.len();
            ShardApplyCost {
                structural: cost.structural_updates,
                absorbed: cost.absorbed,
                rebuilds: cost.rebuilds,
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_index::{LinearScan, QueryEngine};
    use simspatial_service::{Request, ServiceConfig, SpatialService};

    fn soup(n: u32) -> Vec<Element> {
        use simspatial_geom::{Shape, Sphere};
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let x = (h % 997) as f32 / 20.0;
                let y = ((h >> 10) % 997) as f32 / 20.0;
                let z = ((h >> 20) % 997) as f32 / 20.0;
                Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), 0.3)))
            })
            .collect()
    }

    #[test]
    fn every_strategy_serves_reads_and_writes() {
        let data = soup(400);
        let probe = Aabb::new(Point3::new(70.0, 70.0, 70.0), Point3::new(71.0, 71.0, 71.0));
        for kind in UpdateStrategyKind::ALL {
            let service = SpatialService::spawn(
                strategy_backend(data.clone(), kind),
                ServiceConfig::default(),
            );
            let handle = service.handle();
            assert!(handle.is_writable(), "{kind:?}");
            // Move three elements into the probe box, one superseded.
            let updates = vec![
                (11u32, probe),
                (11u32, Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0))),
                (12u32, probe),
                (13u32, probe),
            ];
            handle
                .submit(Request::Update(updates.clone()))
                .unwrap()
                .recv()
                .unwrap();
            let hits = handle
                .submit(Request::Range(vec![probe]))
                .unwrap()
                .recv()
                .unwrap()
                .into_range()
                .unwrap();
            // Element 11's later update moved it away again.
            let mut got = hits[0].clone();
            got.sort_unstable();
            assert_eq!(got, vec![12, 13], "{kind:?}");
            // Oracle: linear scan over the serially updated data.
            let mut updated = data.clone();
            for &(id, bb) in &updates {
                updated[id as usize].shape = Shape::Box(bb);
            }
            let scan = LinearScan::build(&updated);
            let mut engine = QueryEngine::new();
            let mut want = simspatial_index::BatchResults::new();
            engine.range_collect(&scan, &updated, &[probe], &mut want);
            let mut want: Vec<u32> = want.query_results(0).to_vec();
            want.sort_unstable();
            assert_eq!(got, want, "{kind:?}");
            let stats = service.shutdown();
            assert_eq!(stats.updates_applied, 3, "{kind:?}");
            assert_eq!(stats.updates_skipped, 1, "{kind:?}");
        }
    }

    #[test]
    fn update_batch_default_skips_unknown_ids() {
        let mut data = soup(50);
        let mut strategy = UpdateStrategyKind::NoIndexScan.create(&data);
        let cost = strategy.update_batch(
            &mut data,
            &[(999, Shape::Box(Aabb::new(Point3::ORIGIN, Point3::ORIGIN)))],
        );
        let _ = cost;
        assert_eq!(data.len(), 50);
    }
}
