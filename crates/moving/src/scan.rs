//! The no-index strategy: maintain nothing, scan everything.
//!
//! §4.1: "using no index, i.e., a linear scan over the dataset, may be
//! faster" when too few queries amortise the maintenance. Experiment E13
//! finds that crossover.

use crate::strategy::{StepCost, UpdateStrategy};
use simspatial_geom::{Aabb, Element, ElementId};
use simspatial_index::{LinearScan, SpatialIndex};

/// Zero-maintenance linear scan.
#[derive(Debug)]
pub struct NoIndexScan {
    scan: LinearScan,
}

impl NoIndexScan {
    /// "Builds" the strategy (nothing to build).
    pub fn build(elements: &[Element]) -> Self {
        Self {
            scan: LinearScan::build(elements),
        }
    }
}

impl UpdateStrategy for NoIndexScan {
    fn name(&self) -> &'static str {
        "LinearScan"
    }

    fn apply_step(&mut self, _old: &[Element], new: &[Element]) -> StepCost {
        self.scan = LinearScan::build(new);
        StepCost {
            absorbed: new.len() as u64,
            ..Default::default()
        }
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        self.scan.range(data, query)
    }

    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::RangeSink,
    ) {
        self.scan.range_into(data, query, scratch, sink);
    }

    fn knn_into(
        &self,
        data: &[Element],
        p: &simspatial_geom::Point3,
        k: usize,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::KnnSink,
    ) {
        simspatial_index::KnnIndex::knn_into(&self.scan, data, p, k, scratch, sink);
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use crate::strategy::UpdateStrategyKind;

    #[test]
    fn stays_correct_across_steps() {
        crate::testutil::check_strategy_correctness(UpdateStrategyKind::NoIndexScan);
    }
}
