//! Incremental grid migration — the paper's §4.3 favourite.
//!
//! "Using grids will considerably lower the overhead of updates. Clearly the
//! small movement means that only few elements switch grid cell in every
//! step, thereby requiring few updates to the data structure."
//!
//! A persistent center-placed [`UniformGrid`]: each step compares old and
//! new cell coordinates per element and touches the structure only on a
//! switch. With the paper's 0.04 µm steps and cells of a few µm, switches
//! are a small fraction of the dataset — `StepCost::absorbed` vs
//! `structural_updates` shows the ratio directly.

use crate::strategy::{StepCost, UpdateStrategy};
use simspatial_geom::{Aabb, Element, ElementId, Shape};
use simspatial_index::{GridConfig, GridPlacement, SpatialIndex, UniformGrid};

/// A persistent uniform grid maintained by cell migration.
#[derive(Debug)]
pub struct GridMigrate {
    grid: UniformGrid,
}

impl GridMigrate {
    /// Builds the grid with the analytical auto resolution, center placement.
    pub fn build(elements: &[Element]) -> Self {
        let mut config = GridConfig::auto(elements);
        config.placement = GridPlacement::Center;
        Self {
            grid: UniformGrid::build(elements, config),
        }
    }

    /// Builds with an explicit cell side (resolution ablation, E7/E9).
    pub fn with_cell_side(elements: &[Element], cell_side: f32) -> Self {
        let config = GridConfig::with_cell_side(cell_side, GridPlacement::Center);
        Self {
            grid: UniformGrid::build(elements, config),
        }
    }

    /// The realised cell side.
    pub fn cell_side(&self) -> f32 {
        self.grid.cell_side()
    }
}

impl UpdateStrategy for GridMigrate {
    fn name(&self) -> &'static str {
        "Grid/migrate"
    }

    fn apply_step(&mut self, old: &[Element], new: &[Element]) -> StepCost {
        // The whole step goes to the grid in one call, which applies the
        // per-pair migrations and counts switches vs absorptions inline.
        let (structural, absorbed) = self.grid.update_batch(old, new);
        StepCost {
            structural_updates: structural as u64,
            absorbed: absorbed as u64,
            ..Default::default()
        }
    }

    /// Sparse write path: each updated element migrates individually, so a
    /// batch of K updates costs O(K) regardless of the dataset size — the
    /// trait default would snapshot and diff the whole slice. This is what
    /// makes grid-backed incremental shard executors cheap on delta ticks.
    fn update_batch(&mut self, data: &mut [Element], updates: &[(ElementId, Shape)]) -> StepCost {
        let mut structural = 0u64;
        let mut absorbed = 0u64;
        for &(id, shape) in updates {
            let Some(e) = data.get_mut(id as usize) else {
                continue; // out-of-range ids are skipped, as documented
            };
            let old = e.clone();
            e.shape = shape;
            // Duplicate ids resolve last-write-wins because each migration
            // starts from the element's current (already-updated) cell.
            if self.grid.update(&old, e) {
                structural += 1;
            } else {
                absorbed += 1;
            }
        }
        StepCost {
            structural_updates: structural,
            absorbed,
            ..Default::default()
        }
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        self.grid.range(data, query)
    }

    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::RangeSink,
    ) {
        self.grid.range_into(data, query, scratch, sink);
    }

    fn knn_into(
        &self,
        data: &[Element],
        p: &simspatial_geom::Point3,
        k: usize,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::KnnSink,
    ) {
        simspatial_index::KnnIndex::knn_into(&self.grid, data, p, k, scratch, sink);
    }

    fn memory_bytes(&self) -> usize {
        self.grid.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::UpdateStrategyKind;
    use simspatial_datagen::{ElementSoupBuilder, PlasticityModel};

    #[test]
    fn stays_correct_across_steps() {
        crate::testutil::check_strategy_correctness(UpdateStrategyKind::GridMigrate);
    }

    #[test]
    fn small_steps_cause_few_switches() {
        let data = ElementSoupBuilder::new()
            .count(2000)
            .universe_side(50.0)
            .seed(31)
            .build();
        let mut s = GridMigrate::with_cell_side(data.elements(), 2.0);
        let mut cur = data.clone();
        let mut model = PlasticityModel::paper_calibrated(7); // 0.04 steps
        let old = cur.elements().to_vec();
        for (id, d) in model.sample_step(cur.len()).iter().enumerate() {
            cur.displace(id as u32, *d);
        }
        let cost = s.apply_step(&old, cur.elements());
        // Expected switch rate ≈ 3 · (mean step / cell) ≈ 6 %; allow slack.
        let rate = cost.structural_updates as f64 / 2000.0;
        assert!(rate < 0.15, "switch rate too high: {rate}");
        assert!(cost.absorbed > 1000);
    }

    #[test]
    fn large_steps_cause_many_switches() {
        let data = ElementSoupBuilder::new()
            .count(500)
            .universe_side(50.0)
            .seed(32)
            .build();
        let mut s = GridMigrate::with_cell_side(data.elements(), 0.5);
        let mut cur = data.clone();
        let mut model = PlasticityModel::with_sigma(2.0, 8);
        let old = cur.elements().to_vec();
        for (id, d) in model.sample_step(cur.len()).iter().enumerate() {
            cur.displace(id as u32, *d);
        }
        let cost = s.apply_step(&old, cur.elements());
        assert!(
            cost.structural_updates as f64 / 500.0 > 0.5,
            "big steps should switch cells: {cost:?}"
        );
    }
}
