//! The three plain R-Tree maintenance disciplines of §4.1.

use crate::strategy::{StepCost, UpdateStrategy};
use simspatial_geom::{Aabb, Element, ElementId};
use simspatial_index::{RTree, RTreeConfig};

/// Delete + reinsert every moved entry — the strategy the paper measured at
/// 130 s/step on its neural-plasticity run.
#[derive(Debug)]
pub struct RTreeReinsert {
    tree: RTree,
}

impl RTreeReinsert {
    /// Bulk-loads the initial tree.
    pub fn build(elements: &[Element]) -> Self {
        Self {
            tree: RTree::bulk_load(elements, RTreeConfig::default()),
        }
    }
}

impl UpdateStrategy for RTreeReinsert {
    fn name(&self) -> &'static str {
        "RTree/reinsert"
    }

    fn apply_step(&mut self, old: &[Element], new: &[Element]) -> StepCost {
        let mut cost = StepCost::default();
        for (o, n) in old.iter().zip(new.iter()) {
            debug_assert_eq!(o.id, n.id);
            let (ob, nb) = (o.aabb(), n.aabb());
            if ob == nb {
                cost.absorbed += 1;
                continue;
            }
            let updated = self.tree.update(o.id, &ob, nb);
            debug_assert!(updated, "entry {} missing from tree", o.id);
            cost.structural_updates += 1;
        }
        cost
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        self.tree.range_exact(data, query)
    }

    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::RangeSink,
    ) {
        self.tree.range_exact_into(data, query, scratch, sink);
    }

    fn knn_into(
        &self,
        data: &[Element],
        p: &simspatial_geom::Point3,
        k: usize,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::KnnSink,
    ) {
        simspatial_index::KnnIndex::knn_into(&self.tree, data, p, k, scratch, sink);
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }
}

/// Bottom-up updates \[26\]: entries whose new box still fits the leaf MBR
/// are patched in place.
#[derive(Debug)]
pub struct RTreeBottomUp {
    tree: RTree,
}

impl RTreeBottomUp {
    /// Bulk-loads the initial tree.
    pub fn build(elements: &[Element]) -> Self {
        Self {
            tree: RTree::bulk_load(elements, RTreeConfig::default()),
        }
    }
}

impl UpdateStrategy for RTreeBottomUp {
    fn name(&self) -> &'static str {
        "RTree/bottom-up"
    }

    fn apply_step(&mut self, old: &[Element], new: &[Element]) -> StepCost {
        let mut cost = StepCost::default();
        for (o, n) in old.iter().zip(new.iter()) {
            let (ob, nb) = (o.aabb(), n.aabb());
            if ob == nb {
                cost.absorbed += 1;
                continue;
            }
            let updated = self.tree.update_bottom_up(o.id, &ob, nb);
            debug_assert!(updated, "entry {} missing from tree", o.id);
            cost.structural_updates += 1;
        }
        cost
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        self.tree.range_exact(data, query)
    }

    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::RangeSink,
    ) {
        self.tree.range_exact_into(data, query, scratch, sink);
    }

    fn knn_into(
        &self,
        data: &[Element],
        p: &simspatial_geom::Point3,
        k: usize,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::KnnSink,
    ) {
        simspatial_index::KnnIndex::knn_into(&self.tree, data, p, k, scratch, sink);
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }
}

/// Full STR rebuild each step — the paper's 48 s alternative, which wins
/// once more than ~38 % of the dataset moves.
#[derive(Debug)]
pub struct RTreeRebuild {
    tree: RTree,
}

impl RTreeRebuild {
    /// Bulk-loads the initial tree.
    pub fn build(elements: &[Element]) -> Self {
        Self {
            tree: RTree::bulk_load(elements, RTreeConfig::default()),
        }
    }
}

impl UpdateStrategy for RTreeRebuild {
    fn name(&self) -> &'static str {
        "RTree/rebuild"
    }

    fn apply_step(&mut self, _old: &[Element], new: &[Element]) -> StepCost {
        self.tree.rebuild(new);
        StepCost {
            rebuilds: 1,
            ..Default::default()
        }
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        self.tree.range_exact(data, query)
    }

    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::RangeSink,
    ) {
        self.tree.range_exact_into(data, query, scratch, sink);
    }

    fn knn_into(
        &self,
        data: &[Element],
        p: &simspatial_geom::Point3,
        k: usize,
        scratch: &mut simspatial_geom::QueryScratch,
        sink: &mut dyn simspatial_index::KnnSink,
    ) {
        simspatial_index::KnnIndex::knn_into(&self.tree, data, p, k, scratch, sink);
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::UpdateStrategyKind;
    use crate::testutil::check_strategy_correctness;
    use simspatial_datagen::{ElementSoupBuilder, PlasticityModel};

    #[test]
    fn reinsert_stays_correct() {
        check_strategy_correctness(UpdateStrategyKind::RTreeReinsert);
    }

    #[test]
    fn bottom_up_stays_correct() {
        check_strategy_correctness(UpdateStrategyKind::RTreeBottomUp);
    }

    #[test]
    fn rebuild_stays_correct() {
        check_strategy_correctness(UpdateStrategyKind::RTreeRebuild);
    }

    #[test]
    fn costs_reflect_disciplines() {
        let data = ElementSoupBuilder::new()
            .count(200)
            .universe_side(20.0)
            .seed(3)
            .build();
        let mut moved = data.clone();
        let mut model = PlasticityModel::with_sigma(0.02, 5);
        let moves = model.sample_step(moved.len());
        for (id, d) in moves.iter().enumerate() {
            moved.displace(id as u32, *d);
        }
        let mut re = RTreeReinsert::build(data.elements());
        let c = re.apply_step(data.elements(), moved.elements());
        assert_eq!(c.structural_updates + c.absorbed, 200);
        assert_eq!(c.rebuilds, 0);

        let mut rb = RTreeRebuild::build(data.elements());
        let c = rb.apply_step(data.elements(), moved.elements());
        assert_eq!(c.rebuilds, 1);
        assert_eq!(c.structural_updates, 0);
    }
}
