//! Buffered updates \[6\].
//!
//! §4.2: "Buffering the updates to reduce operations on the index similarly
//! shifts the burden to query execution: when computing the query result,
//! buffer and index need to be checked, thereby increasing the overhead."
//!
//! Moved elements are parked in a dirty set keyed by the (stale) box the
//! index still holds for them; queries consult the index for clean elements
//! and scan the dirty set, and once the dirty set passes a threshold it is
//! flushed into the index wholesale.

use crate::strategy::{StepCost, UpdateStrategy};
use simspatial_geom::{predicates, Aabb, Element, ElementId};
use simspatial_index::{RTree, RTreeConfig};
use std::collections::HashMap;

/// An R-Tree with an update buffer.
#[derive(Debug)]
pub struct BufferedRTree {
    tree: RTree,
    /// Dirty elements: id → the stale box still indexed for them.
    dirty: HashMap<ElementId, Aabb>,
    /// Flush once `dirty.len() > flush_fraction · n`.
    flush_fraction: f32,
    len: usize,
}

impl BufferedRTree {
    /// Default flush threshold: 10 % of the dataset.
    pub const DEFAULT_FLUSH_FRACTION: f32 = 0.10;

    /// Builds with the default flush threshold.
    pub fn build(elements: &[Element]) -> Self {
        Self::with_flush_fraction(elements, Self::DEFAULT_FLUSH_FRACTION)
    }

    /// Builds with an explicit flush threshold in `(0, 1]`.
    pub fn with_flush_fraction(elements: &[Element], flush_fraction: f32) -> Self {
        assert!(
            flush_fraction > 0.0 && flush_fraction <= 1.0,
            "flush fraction must be in (0, 1]"
        );
        Self {
            tree: RTree::bulk_load(elements, RTreeConfig::default()),
            dirty: HashMap::new(),
            flush_fraction,
            len: elements.len(),
        }
    }

    /// Elements currently buffered.
    pub fn buffered(&self) -> usize {
        self.dirty.len()
    }

    fn flush(&mut self, new: &[Element]) -> u64 {
        let mut applied = 0u64;
        for (id, stale) in std::mem::take(&mut self.dirty) {
            let fresh = new[id as usize].aabb();
            let updated = self.tree.update(id, &stale, fresh);
            debug_assert!(updated, "buffered entry {id} missing");
            applied += 1;
        }
        applied
    }
}

impl UpdateStrategy for BufferedRTree {
    fn name(&self) -> &'static str {
        "RTree/buffered"
    }

    fn apply_step(&mut self, old: &[Element], new: &[Element]) -> StepCost {
        let mut cost = StepCost::default();
        for (o, n) in old.iter().zip(new.iter()) {
            let (ob, nb) = (o.aabb(), n.aabb());
            if ob == nb {
                cost.absorbed += 1;
                continue;
            }
            // First move records the box the index still holds; subsequent
            // moves keep that original stale box.
            self.dirty.entry(o.id).or_insert(ob);
            cost.absorbed += 1;
        }
        let threshold = (self.flush_fraction * self.len as f32).ceil() as usize;
        if self.dirty.len() > threshold {
            cost.structural_updates += self.flush(new);
        }
        cost
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        // Index side: candidates by (possibly stale) stored boxes. Dirty
        // hits are dropped here — their stale position is meaningless.
        let mut out: Vec<ElementId> = self
            .tree
            .range_bbox(query)
            .into_iter()
            .filter(|id| !self.dirty.contains_key(id))
            .filter(|&id| predicates::element_in_range(&data[id as usize], query))
            .collect();
        // Buffer side: every dirty element is tested against live geometry.
        for &id in self.dirty.keys() {
            if predicates::element_in_range(&data[id as usize], query) {
                out.push(id);
            }
        }
        out
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
            + self.dirty.len() * (std::mem::size_of::<ElementId>() + std::mem::size_of::<Aabb>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::UpdateStrategyKind;
    use simspatial_datagen::{ElementSoupBuilder, PlasticityModel};

    #[test]
    fn stays_correct_across_steps() {
        crate::testutil::check_strategy_correctness(UpdateStrategyKind::BufferedUpdates);
    }

    #[test]
    fn buffer_fills_then_flushes() {
        let data = ElementSoupBuilder::new()
            .count(200)
            .universe_side(30.0)
            .seed(4)
            .build();
        let mut s = BufferedRTree::with_flush_fraction(data.elements(), 0.5);
        let mut cur = data.clone();
        let mut model = PlasticityModel::with_sigma(0.05, 6);

        // Step 1: every element moves → buffer holds all, above 50 % → flush.
        let old = cur.elements().to_vec();
        for (id, d) in model.sample_step(cur.len()).iter().enumerate() {
            cur.displace(id as u32, *d);
        }
        let cost = s.apply_step(&old, cur.elements());
        assert_eq!(cost.structural_updates, 200, "full flush expected");
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn queries_see_buffered_elements() {
        let data = ElementSoupBuilder::new()
            .count(50)
            .universe_side(20.0)
            .seed(5)
            .build();
        // Huge threshold: never flushes.
        let mut s = BufferedRTree::with_flush_fraction(data.elements(), 1.0);
        let mut cur = data.clone();
        let old = cur.elements().to_vec();
        // Teleport element 0 far away.
        cur.displace(0, simspatial_geom::Vec3::new(15.0, 0.0, 0.0));
        s.apply_step(&old, cur.elements());
        assert!(s.buffered() >= 1);
        // Query at the new location must see it; at the old location not.
        let new_box = cur.elements()[0].aabb().inflate(0.01);
        assert!(s.range(cur.elements(), &new_box).contains(&0));
        let old_box = old[0].aabb().inflate(0.01);
        let hits = s.range(cur.elements(), &old_box);
        assert!(!hits.contains(&0) || new_box.intersects(&old_box));
    }
}
