//! Grace-window (lazy) updates — LUR-tree-style \[18\], QU-Trade/loose-box
//! family \[30\].
//!
//! §4.2: "instead of using a tight bounding box, objects are packed in a
//! looser grace window. With this, the index does not have to be updated if
//! an object only moves in the grace window, thereby reducing the number of
//! updates. Still updates are required frequently and, by introducing an
//! imprecision in the index structure, the burden is shifted to the query
//! execution where objects need to be tested for intersection with the
//! query."
//!
//! The shifted burden is directly measurable here: candidates per query grow
//! with the window, while `StepCost::absorbed` shows the saved maintenance.

use crate::strategy::{StepCost, UpdateStrategy};
use simspatial_geom::{predicates, Aabb, Element, ElementId};
use simspatial_index::{RTree, RTreeConfig};

/// An R-Tree whose entries carry grace windows.
#[derive(Debug)]
pub struct LazyGraceWindow {
    tree: RTree,
    /// The grace box currently indexed for each element.
    windows: Vec<Aabb>,
    margin: f32,
}

impl LazyGraceWindow {
    /// Default margin: liberal relative to the paper's 0.04 µm steps —
    /// roughly 12 steps of slack.
    pub const DEFAULT_MARGIN: f32 = 0.5;

    /// Builds with the default margin.
    pub fn build(elements: &[Element]) -> Self {
        Self::with_margin(elements, Self::DEFAULT_MARGIN)
    }

    /// Builds with an explicit grace margin (the E11 ablation sweeps this).
    pub fn with_margin(elements: &[Element], margin: f32) -> Self {
        assert!(
            margin > 0.0 && margin.is_finite(),
            "margin must be positive"
        );
        let windows: Vec<Aabb> = elements.iter().map(|e| e.aabb().inflate(margin)).collect();
        let tree = RTree::bulk_load_entries(
            windows
                .iter()
                .enumerate()
                .map(|(i, b)| (*b, i as ElementId))
                .collect(),
            RTreeConfig::default(),
        );
        Self {
            tree,
            windows,
            margin,
        }
    }

    /// The grace margin in force.
    pub fn margin(&self) -> f32 {
        self.margin
    }
}

impl UpdateStrategy for LazyGraceWindow {
    fn name(&self) -> &'static str {
        "RTree/grace-window"
    }

    fn apply_step(&mut self, _old: &[Element], new: &[Element]) -> StepCost {
        let mut cost = StepCost::default();
        for e in new {
            let bbox = e.aabb();
            let window = self.windows[e.id as usize];
            if window.contains(&bbox) {
                cost.absorbed += 1; // still inside the grace window
                continue;
            }
            let fresh = bbox.inflate(self.margin);
            let updated = self.tree.update(e.id, &window, fresh);
            debug_assert!(updated, "grace entry {} missing", e.id);
            self.windows[e.id as usize] = fresh;
            cost.structural_updates += 1;
        }
        cost
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        // Grace boxes are supersets of true boxes ⇒ the candidate set is
        // complete; every candidate needs the exact test (the query burden).
        self.tree
            .range_bbox(query)
            .into_iter()
            .filter(|&id| predicates::element_in_range(&data[id as usize], query))
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes() + self.windows.capacity() * std::mem::size_of::<Aabb>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::UpdateStrategyKind;
    use simspatial_datagen::{ElementSoupBuilder, PlasticityModel};

    #[test]
    fn stays_correct_across_steps() {
        crate::testutil::check_strategy_correctness(UpdateStrategyKind::LazyGraceWindow);
    }

    #[test]
    fn small_moves_are_absorbed() {
        let data = ElementSoupBuilder::new()
            .count(300)
            .universe_side(30.0)
            .seed(8)
            .build();
        let mut s = LazyGraceWindow::with_margin(data.elements(), 0.5);
        let mut moved = data.clone();
        let mut model = PlasticityModel::with_sigma(0.01, 2); // tiny steps
        let moves = model.sample_step(moved.len());
        for (id, d) in moves.iter().enumerate() {
            moved.displace(id as u32, *d);
        }
        let cost = s.apply_step(data.elements(), moved.elements());
        assert_eq!(cost.structural_updates, 0, "tiny steps must be absorbed");
        assert_eq!(cost.absorbed, 300);
    }

    #[test]
    fn escapes_trigger_updates() {
        let data = ElementSoupBuilder::new()
            .count(100)
            .universe_side(30.0)
            .seed(9)
            .build();
        let mut s = LazyGraceWindow::with_margin(data.elements(), 0.1);
        let mut moved = data.clone();
        let mut model = PlasticityModel::with_sigma(2.0, 3); // huge steps
        let moves = model.sample_step(moved.len());
        for (id, d) in moves.iter().enumerate() {
            moved.displace(id as u32, *d);
        }
        let cost = s.apply_step(data.elements(), moved.elements());
        assert!(
            cost.structural_updates > 50,
            "large steps must escape: {cost:?}"
        );
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn zero_margin_rejected() {
        let data = ElementSoupBuilder::new().count(10).seed(1).build();
        LazyGraceWindow::with_margin(data.elements(), 0.0);
    }
}
