//! Partition-Based Spatial-Merge join over a uniform grid (PBSM \[23\]).
//!
//! §3.3: "An approach based on a grid (similar to PBSM \[15\]) optimized for
//! memory may not necessarily speed up the join, but will certainly speed up
//! the preprocessing/indexing and thus the overall join."
//!
//! Elements (inflated by eps/2 each, realised as one eps inflation on one
//! side) are replicated into every grid cell they overlap; each cell joins
//! its residents pairwise. A pair spanning several shared cells would be
//! reported repeatedly, so PBSM's classic *reference-point* rule is applied:
//! a pair is emitted only by the cell containing the lexicographic low
//! corner of their overlap region.

use crate::canonical;
use simspatial_geom::{predicates, stats, Aabb, Element, ElementId, Point3, SoaAabbs};

pub(crate) fn join(data: &[Element], eps: f32) -> Vec<(ElementId, ElementId)> {
    if data.len() < 2 {
        return Vec::new();
    }
    let bounds = Aabb::union_all(data.iter().map(Element::aabb)).inflate(eps.max(1e-6));
    // Resolution: a few elements per cell on average, never smaller than the
    // largest inflated element (bounds replication).
    let n = data.len() as f32;
    let spacing = (bounds.volume().max(f32::MIN_POSITIVE) / n).cbrt();
    let max_extent = data
        .iter()
        .map(|e| {
            let ext = e.aabb().extent();
            ext.x.max(ext.y).max(ext.z)
        })
        .fold(0.0f32, f32::max);
    let cell = (2.0 * spacing).max(max_extent + eps).max(1e-6);

    let dims = [
        ((bounds.extent().x / cell).ceil() as usize).max(1),
        ((bounds.extent().y / cell).ceil() as usize).max(1),
        ((bounds.extent().z / cell).ceil() as usize).max(1),
    ];
    let coord = |p: &Point3| -> [usize; 3] {
        let rel = *p - bounds.min;
        [
            ((rel.x / cell) as isize).clamp(0, dims[0] as isize - 1) as usize,
            ((rel.y / cell) as isize).clamp(0, dims[1] as isize - 1) as usize,
            ((rel.z / cell) as isize).clamp(0, dims[2] as isize - 1) as usize,
        ]
    };
    let index = |c: [usize; 3]| (c[2] * dims[1] + c[1]) * dims[0] + c[0];

    // Partition phase: replicate each element into the cells its *inflated*
    // box overlaps; the cell slab stores the plain (un-inflated) box in SoA
    // form so the join phase runs the shared mask kernel over it.
    //
    // Cell-slab assignment is embarrassingly parallel: the compute-heavy
    // part (exact bounds, inflation, coordinate quantisation) runs
    // data-parallel over element chunks; only the scatter into the slabs is
    // a sequential pass. Mirrors `UniformGrid::bulk_insert`. On a single
    // thread, scatter directly — no staged entry list.
    let mut cells: Vec<SoaAabbs> = vec![SoaAabbs::new(); dims[0] * dims[1] * dims[2]];
    let inflated: Vec<Aabb> = data.iter().map(|e| e.aabb().inflate(eps)).collect();
    if simspatial_geom::parallel::num_threads() <= 1 {
        for e in data {
            let b = inflated[e.id as usize];
            let plain = e.aabb();
            let (lo, hi) = (coord(&b.min), coord(&b.max));
            for z in lo[2]..=hi[2] {
                for y in lo[1]..=hi[1] {
                    for x in lo[0]..=hi[0] {
                        cells[index([x, y, z])].push(plain, e.id);
                    }
                }
            }
        }
    } else {
        let assigned = simspatial_geom::parallel::par_map_chunks(data, 2048, |_, chunk| {
            let mut entries: Vec<(u32, Aabb, ElementId)> = Vec::with_capacity(chunk.len());
            for e in chunk {
                let b = inflated[e.id as usize];
                let plain = e.aabb();
                let (lo, hi) = (coord(&b.min), coord(&b.max));
                for z in lo[2]..=hi[2] {
                    for y in lo[1]..=hi[1] {
                        for x in lo[0]..=hi[0] {
                            entries.push((index([x, y, z]) as u32, plain, e.id));
                        }
                    }
                }
            }
            entries
        });
        for chunk in assigned {
            for (cell, plain, id) in chunk {
                cells[cell as usize].push(plain, id);
            }
        }
    }

    // Join phase: pairwise within each cell through the batched kernel
    // (one inflated probe box against the cell's remaining residents),
    // reference-point deduplication.
    let mut out = Vec::new();
    let mut hits: Vec<(u32, ElementId)> = Vec::new();
    {
        for (ci, slab) in cells.iter().enumerate() {
            for k in 0..slab.len() {
                let a = slab.id_at(k);
                // One box inflated by eps suffices for the within-eps
                // filter; the kernel tests it against every remaining
                // resident's plain box in one pass.
                stats::record_element_tests((slab.len() - k - 1) as u64);
                hits.clear();
                slab.intersect_from_into(k + 1, &inflated[a as usize], &mut hits);
                for &(_, b) in &hits {
                    // Reference point: low corner of the overlap of the
                    // *replicated* (inflated) boxes — present in every
                    // shared cell, so exactly one cell owns it.
                    let ov = inflated[a as usize]
                        .intersection(&inflated[b as usize])
                        .expect("replicated boxes of a filtered pair must overlap");
                    if index(coord(&ov.min)) != ci {
                        continue;
                    }
                    if predicates::elements_within(&data[a as usize], &data[b as usize], eps) {
                        out.push(canonical(a, b));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested;
    use simspatial_geom::{Shape, Sphere};

    fn grid_of_spheres(side: u32, spacing: f32, r: f32) -> Vec<Element> {
        let mut out = Vec::new();
        let mut id = 0;
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    out.push(Element::new(
                        id,
                        Shape::Sphere(Sphere::new(
                            Point3::new(x as f32 * spacing, y as f32 * spacing, z as f32 * spacing),
                            r,
                        )),
                    ));
                    id += 1;
                }
            }
        }
        out
    }

    #[test]
    fn matches_nested_loop_on_lattice() {
        // Lattice spacing 1, radius 0.45: only axis-neighbours (gap 0.1)
        // join at eps 0.2.
        let data = grid_of_spheres(5, 1.0, 0.45);
        let a = {
            let mut v = join(&data, 0.2);
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut b = nested::join(&data, 0.2);
        b.sort_unstable();
        assert_eq!(a, b);
        // 3 axes × 5×5×4 adjacent pairs.
        assert_eq!(a.len(), 3 * 5 * 5 * 4);
    }

    #[test]
    fn pair_spanning_cells_reported_once() {
        // Two big overlapping spheres spanning many cells.
        let data = vec![
            Element::new(
                0,
                Shape::Sphere(Sphere::new(Point3::new(0.0, 0.0, 0.0), 3.0)),
            ),
            Element::new(
                1,
                Shape::Sphere(Sphere::new(Point3::new(1.0, 0.0, 0.0), 3.0)),
            ),
            Element::new(
                2,
                Shape::Sphere(Sphere::new(Point3::new(40.0, 0.0, 0.0), 0.1)),
            ),
        ];
        let pairs = join(&data, 0.0);
        assert_eq!(pairs, vec![(0, 1)]);
    }
}
