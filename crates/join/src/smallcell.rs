//! Small-cell grid join with neighbour-cell comparison (§4.3).
//!
//! The paper's research direction for joining under massive updates:
//! "Using grids where objects are quickly assigned to grid cells ... Only
//! objects in grid cells need to be compared with each other. ... elements
//! may not be assigned to all intersecting cells, but elements in
//! neighboring cells need to be compared with each other to limit
//! replication."
//!
//! Each element is placed in exactly one cell (by centroid — O(1) assignment
//! and O(1) migration when it moves, the whole point for simulations). A
//! pair can then only join if their cells are within a Chebyshev radius
//! derived from the largest element extent and eps, so each cell is compared
//! against a bounded neighbourhood. No replication, no dedup.

use crate::canonical;
use simspatial_geom::{predicates, stats, Aabb, Element, ElementId, Point3, SoaAabbs};

pub(crate) fn join(data: &[Element], eps: f32) -> Vec<(ElementId, ElementId)> {
    join_with_cell_factor(data, eps, 1.0)
}

/// The small-cell join with the cell side scaled by `factor` relative to
/// the element-scale default — the knob of ablation A3 (§4.3 discusses
/// exactly this: cells below the element size force replication or wider
/// neighbourhoods; cells above it degenerate toward PBSM).
pub fn join_with_cell_factor(
    data: &[Element],
    eps: f32,
    factor: f32,
) -> Vec<(ElementId, ElementId)> {
    assert!(
        factor > 0.0 && factor.is_finite(),
        "cell factor must be positive"
    );
    if data.len() < 2 {
        return Vec::new();
    }
    let bounds = Aabb::union_all(data.iter().map(Element::aabb));
    let n = data.len() as f32;
    let spacing = (bounds.volume().max(f32::MIN_POSITIVE) / n).cbrt();
    // Small cells: around the element scale, not the query scale.
    let mean_extent = data
        .iter()
        .map(|e| {
            let ext = e.aabb().extent();
            ext.x.max(ext.y).max(ext.z)
        })
        .sum::<f32>()
        / n;
    let cell = (mean_extent.max(spacing) * factor).max(1e-6);

    // Correctness radius: two within-eps elements' *centroids* are at most
    // (half_a + half_b + eps) apart; bound by the max half extents.
    let max_half = data
        .iter()
        .map(|e| {
            let ext = e.aabb().extent();
            ext.x.max(ext.y).max(ext.z) * 0.5
        })
        .fold(0.0f32, f32::max);
    let reach = 2.0 * max_half + eps;
    let radius = (reach / cell).ceil() as isize;

    let dims = [
        ((bounds.extent().x / cell).ceil() as usize).max(1),
        ((bounds.extent().y / cell).ceil() as usize).max(1),
        ((bounds.extent().z / cell).ceil() as usize).max(1),
    ];
    let coord = |p: &Point3| -> [isize; 3] {
        let rel = *p - bounds.min;
        [
            ((rel.x / cell) as isize).clamp(0, dims[0] as isize - 1),
            ((rel.y / cell) as isize).clamp(0, dims[1] as isize - 1),
            ((rel.z / cell) as isize).clamp(0, dims[2] as isize - 1),
        ]
    };
    let index = |c: [isize; 3]| (c[2] as usize * dims[1] + c[1] as usize) * dims[0] + c[0] as usize;

    // Each element lands in exactly one cell; the cell slab stores its
    // bounding box in SoA form so pair filtering runs the batched kernel.
    // The assignment phase (exact bounds + centroid quantisation) runs
    // data-parallel over element chunks; the scatter stays sequential. On
    // a single thread, scatter directly — no staged entry list.
    let mut cells: Vec<SoaAabbs> = vec![SoaAabbs::new(); dims[0] * dims[1] * dims[2]];
    if simspatial_geom::parallel::num_threads() <= 1 {
        for e in data {
            cells[index(coord(&e.center()))].push(e.aabb(), e.id);
        }
    } else {
        let assigned = simspatial_geom::parallel::par_map_chunks(data, 2048, |_, chunk| {
            chunk
                .iter()
                .map(|e| (index(coord(&e.center())) as u32, e.aabb(), e.id))
                .collect::<Vec<(u32, Aabb, ElementId)>>()
        });
        for chunk in assigned {
            for (cell, bbox, id) in chunk {
                cells[cell as usize].push(bbox, id);
            }
        }
    }

    let mut out = Vec::new();
    let mut hits: Vec<(u32, ElementId)> = Vec::new();
    let refine = |a: ElementId, b: ElementId, out: &mut Vec<(ElementId, ElementId)>| {
        if predicates::elements_within(&data[a as usize], &data[b as usize], eps) {
            out.push(canonical(a, b));
        }
    };

    for z in 0..dims[2] as isize {
        for y in 0..dims[1] as isize {
            for x in 0..dims[0] as isize {
                let here = index([x, y, z]);
                let slab = &cells[here];
                if slab.is_empty() {
                    continue;
                }
                // Within-cell pairs: each resident's eps-inflated box is one
                // batched probe against the rest of its own slab.
                for k in 0..slab.len() {
                    let (bbox, a) = slab.get(k);
                    let probe = bbox.inflate(eps);
                    stats::record_element_tests((slab.len() - k - 1) as u64);
                    hits.clear();
                    slab.intersect_from_into(k + 1, &probe, &mut hits);
                    for &(_, b) in &hits {
                        refine(a, b, &mut out);
                    }
                }
                // Cross-cell pairs: visit each unordered cell pair once by
                // only looking at lexicographically greater neighbours.
                for dz in -radius..=radius {
                    for dy in -radius..=radius {
                        for dx in -radius..=radius {
                            if (dz, dy, dx) <= (0, 0, 0) {
                                continue; // covered by the mirror visit
                            }
                            let (nx, ny, nz) = (x + dx, y + dy, z + dz);
                            if nx < 0
                                || ny < 0
                                || nz < 0
                                || nx >= dims[0] as isize
                                || ny >= dims[1] as isize
                                || nz >= dims[2] as isize
                            {
                                continue;
                            }
                            let there = &cells[index([nx, ny, nz])];
                            if there.is_empty() {
                                continue;
                            }
                            for k in 0..slab.len() {
                                let (bbox, a) = slab.get(k);
                                let probe = bbox.inflate(eps);
                                stats::record_element_tests(there.len() as u64);
                                hits.clear();
                                there.intersect_from_into(0, &probe, &mut hits);
                                for &(_, b) in &hits {
                                    refine(a, b, &mut out);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested;
    use simspatial_geom::{Shape, Sphere};

    fn scattered(n: u32, r: f32) -> Vec<Element> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let x = (h % 199) as f32 / 10.0;
                let y = ((h >> 10) % 199) as f32 / 10.0;
                let z = ((h >> 20) % 199) as f32 / 10.0;
                Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let data = scattered(400, 0.3);
        for eps in [0.0f32, 0.5, 1.2] {
            let mut a = join(&data, eps);
            a.sort_unstable();
            a.dedup();
            let mut b = nested::join(&data, eps);
            b.sort_unstable();
            assert_eq!(a, b, "eps {eps}");
        }
    }

    #[test]
    fn mixed_sizes_respect_reach() {
        // A big sphere whose surface reaches a small far one: the centroid
        // cells are distant, but the radius bound must still compare them.
        let mut data = scattered(50, 0.2);
        data.push(Element::new(
            50,
            Shape::Sphere(Sphere::new(Point3::new(10.0, 10.0, 10.0), 6.0)),
        ));
        let mut a = join(&data, 0.1);
        a.sort_unstable();
        a.dedup();
        let mut b = nested::join(&data, 0.1);
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
