//! Nested-loop self-join: the quadratic baseline.
//!
//! §4.3: "Not using any index structure results in a nested loop join with
//! n² comparisons." It is nonetheless the ground truth every other
//! algorithm is validated against, and — per the paper — the only option
//! whose *maintenance* cost under massive updates is zero.

use crate::canonical;
use simspatial_geom::{predicates, Element, ElementId};

/// All pairs within `eps`, by exhaustive comparison (bbox filter + exact
/// refine per pair).
pub(crate) fn join(data: &[Element], eps: f32) -> Vec<(ElementId, ElementId)> {
    let mut out = Vec::new();
    for i in 0..data.len() {
        let (a, bbox_a) = (&data[i], data[i].aabb());
        for b in &data[i + 1..] {
            if predicates::bboxes_within(&bbox_a, &b.aabb(), eps)
                && predicates::elements_within(a, b, eps)
            {
                out.push(canonical(a.id, b.id));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_geom::{Point3, Shape, Sphere};

    fn spheres(xs: &[f32]) -> Vec<Element> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| {
                Element::new(
                    i as ElementId,
                    Shape::Sphere(Sphere::new(Point3::new(x, 0.0, 0.0), 0.4)),
                )
            })
            .collect()
    }

    #[test]
    fn adjacent_spheres_join() {
        // Spheres at 0, 1, 3 with radius 0.4: only 0–1 intersect-ish at
        // eps 0.3 (gap 0.2); 1–3 gap is 1.2.
        let data = spheres(&[0.0, 1.0, 3.0]);
        assert_eq!(join(&data, 0.3), vec![(0, 1)]);
        assert!(join(&data, 0.1).is_empty());
        assert_eq!(join(&data, 1.3).len(), 2); // adds 1–3
        assert_eq!(join(&data, 3.0).len(), 3); // all pairs
    }

    #[test]
    fn self_pairs_never_reported() {
        let data = spheres(&[0.0, 0.0, 0.0]);
        let pairs = join(&data, 0.0);
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }
}
