//! # simspatial-join
//!
//! In-memory spatial **self-join** algorithms for the workloads of §2.2 of
//! the paper — above all synapse detection: "wherever two neurons are within
//! a given distance of each other, they will form a synapse" — and the
//! intersection detection that n-body style simulations run every step.
//!
//! The paper's analysis (§3.2/§4.3):
//!
//! * the **nested loop** join is quadratic — unusable beyond toy sizes;
//! * the **sweep line** "does not ensure that only spatially close objects
//!   are compared" (it prunes one dimension only);
//! * disk-descended index joins drag in update-hostile structures; TOUCH
//!   \[21\] showed hierarchical **data-oriented partitioning** wins in memory
//!   but "depends on a costly data-oriented partitioning & indexing step";
//! * **grids** are the research direction: "only objects in grid cells need
//!   to be compared with each other"; with cells smaller than the smallest
//!   element, same-cell pairs intersect "by definition", at the price of
//!   replication — which neighbouring-cell comparison limits.
//!
//! All five are here, behind one entry point ([`self_join`]) returning
//! identical, canonicalised pair sets, so the benchmark harness (experiment
//! E10) measures nothing but the algorithmic difference.
//!
//! ```
//! use simspatial_datagen::ElementSoupBuilder;
//! use simspatial_join::{self_join, JoinAlgorithm, JoinConfig};
//!
//! let data = ElementSoupBuilder::new().count(500).seed(1).build();
//! let config = JoinConfig::within(1.0);
//! let truth = self_join(data.elements(), &config, JoinAlgorithm::NestedLoop);
//! let fast = self_join(data.elements(), &config, JoinAlgorithm::PbsmGrid);
//! assert_eq!(truth, fast);
//! ```

#![warn(missing_docs)]

mod nested;
mod pairwise;
mod pbsm;
mod smallcell;
mod sweep;
mod treejoin;

use simspatial_geom::{Element, ElementId};

pub use pairwise::{join_pair, PairAlgorithm};

/// Distance threshold of a join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinConfig {
    /// Two elements join when their exact geometries are within `eps`
    /// (`eps == 0` degenerates to an intersection join).
    pub eps: f32,
}

impl JoinConfig {
    /// An intersection self-join (collision detection).
    pub fn intersecting() -> Self {
        Self { eps: 0.0 }
    }

    /// A within-distance self-join (synapse detection).
    pub fn within(eps: f32) -> Self {
        assert!(eps >= 0.0 && eps.is_finite(), "eps must be non-negative");
        Self { eps }
    }
}

/// The join algorithms under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// O(n²) nested loop — ground truth and the paper's lower bar.
    NestedLoop,
    /// Plane sweep along x.
    PlaneSweep,
    /// Partition-Based Spatial-Merge \[23\]: replicated grid cells, pairs
    /// deduplicated by the reference-point rule.
    PbsmGrid,
    /// Synchronized hierarchical traversal of an STR-packed R-Tree — the
    /// data-oriented partitioning family TOUCH \[21\] descends from.
    TreeJoin,
    /// Center-placed fine grid with neighbour-cell comparison (§4.3's
    /// research direction).
    SmallCellGrid,
}

impl JoinAlgorithm {
    /// All algorithms, in presentation order.
    pub const ALL: [JoinAlgorithm; 5] = [
        JoinAlgorithm::NestedLoop,
        JoinAlgorithm::PlaneSweep,
        JoinAlgorithm::PbsmGrid,
        JoinAlgorithm::TreeJoin,
        JoinAlgorithm::SmallCellGrid,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            JoinAlgorithm::NestedLoop => "NestedLoop",
            JoinAlgorithm::PlaneSweep => "PlaneSweep",
            JoinAlgorithm::PbsmGrid => "PBSM-Grid",
            JoinAlgorithm::TreeJoin => "TreeJoin",
            JoinAlgorithm::SmallCellGrid => "SmallCellGrid",
        }
    }
}

/// Runs the spatial self-join: every unordered pair `(a, b)`, `a < b`, whose
/// exact geometries lie within `config.eps`. The result is sorted and
/// duplicate-free regardless of algorithm, so outputs compare bit-for-bit.
pub fn self_join(
    data: &[Element],
    config: &JoinConfig,
    algorithm: JoinAlgorithm,
) -> Vec<(ElementId, ElementId)> {
    let mut pairs = match algorithm {
        JoinAlgorithm::NestedLoop => nested::join(data, config.eps),
        JoinAlgorithm::PlaneSweep => sweep::join(data, config.eps),
        JoinAlgorithm::PbsmGrid => pbsm::join(data, config.eps),
        JoinAlgorithm::TreeJoin => treejoin::join(data, config.eps),
        JoinAlgorithm::SmallCellGrid => smallcell::join(data, config.eps),
    };
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// The small-cell grid join with an explicit cell-size factor (1.0 = the
/// element-scale default). Exposed for the A3 cell-sizing ablation; the
/// result is canonicalised like [`self_join`]'s.
pub fn self_join_small_cell_with_factor(
    data: &[Element],
    config: &JoinConfig,
    cell_factor: f32,
) -> Vec<(ElementId, ElementId)> {
    let mut pairs = smallcell::join_with_cell_factor(data, config.eps, cell_factor);
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Canonicalises a pair as `(min, max)`.
#[inline]
pub(crate) fn canonical(a: ElementId, b: ElementId) -> (ElementId, ElementId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_datagen::{ClusteredConfig, ElementSoupBuilder, NeuronDatasetBuilder};

    fn assert_all_agree(data: &[Element], eps: f32) {
        let config = JoinConfig::within(eps);
        let truth = self_join(data, &config, JoinAlgorithm::NestedLoop);
        for algo in [
            JoinAlgorithm::PlaneSweep,
            JoinAlgorithm::PbsmGrid,
            JoinAlgorithm::TreeJoin,
            JoinAlgorithm::SmallCellGrid,
        ] {
            let got = self_join(data, &config, algo);
            assert_eq!(
                got,
                truth,
                "{} diverges from nested loop (eps={eps})",
                algo.name()
            );
        }
    }

    #[test]
    fn uniform_data_all_algorithms_agree() {
        let d = ElementSoupBuilder::new()
            .count(600)
            .universe_side(40.0)
            .seed(11)
            .build();
        assert_all_agree(d.elements(), 0.0);
        assert_all_agree(d.elements(), 0.8);
    }

    #[test]
    fn clustered_data_all_algorithms_agree() {
        let d = ElementSoupBuilder::new()
            .count(500)
            .universe_side(40.0)
            .clustered(ClusteredConfig {
                clusters: 5,
                sigma: 1.5,
            })
            .seed(12)
            .build();
        assert_all_agree(d.elements(), 0.5);
    }

    #[test]
    fn neuron_data_all_algorithms_agree() {
        let d = NeuronDatasetBuilder::new()
            .neurons(6)
            .segments_per_neuron(60)
            .universe_side(25.0)
            .seed(13)
            .build();
        assert_all_agree(d.elements(), 0.3);
    }

    #[test]
    fn empty_and_single() {
        let config = JoinConfig::intersecting();
        for algo in JoinAlgorithm::ALL {
            assert!(self_join(&[], &config, algo).is_empty(), "{}", algo.name());
        }
        let d = ElementSoupBuilder::new().count(1).seed(1).build();
        for algo in JoinAlgorithm::ALL {
            assert!(self_join(d.elements(), &config, algo).is_empty());
        }
    }

    #[test]
    fn pairs_are_canonical() {
        let d = ElementSoupBuilder::new()
            .count(300)
            .universe_side(20.0)
            .seed(5)
            .build();
        let pairs = self_join(
            d.elements(),
            &JoinConfig::within(1.0),
            JoinAlgorithm::PbsmGrid,
        );
        assert!(!pairs.is_empty());
        for (a, b) in &pairs {
            assert!(a < b);
        }
        for w in pairs.windows(2) {
            assert!(w[0] < w[1], "sorted, no duplicates");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_eps_rejected() {
        JoinConfig::within(-1.0);
    }
}
