//! Two-dataset (A ⋈ B) distance joins.
//!
//! §2.2 frames the join over pairs of datasets as well as self-joins
//! ("Several approaches have been conceived for joining spatial datasets"),
//! and the synapse use case naturally splits into axon segments of one
//! population against dendrites of another. `join_pair` provides the
//! nested-loop ground truth and a PBSM-style grid implementation; both
//! return `(a_id, b_id)` pairs (ids index the respective input slices).

use simspatial_geom::{predicates, Aabb, Element, ElementId, Point3};

/// Algorithms available for the two-dataset join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairAlgorithm {
    /// O(|A|·|B|) nested loop — ground truth.
    NestedLoop,
    /// PBSM-style grid: both inputs replicated into shared cells,
    /// reference-point deduplication.
    Grid,
}

/// All `(a, b)` pairs with `a ∈ A`, `b ∈ B` whose exact geometries lie
/// within `eps`. Output is sorted and duplicate-free.
pub fn join_pair(
    a: &[Element],
    b: &[Element],
    eps: f32,
    algorithm: PairAlgorithm,
) -> Vec<(ElementId, ElementId)> {
    assert!(eps >= 0.0 && eps.is_finite(), "eps must be non-negative");
    let mut pairs = match algorithm {
        PairAlgorithm::NestedLoop => nested_pair(a, b, eps),
        PairAlgorithm::Grid => grid_pair(a, b, eps),
    };
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn nested_pair(a: &[Element], b: &[Element], eps: f32) -> Vec<(ElementId, ElementId)> {
    let mut out = Vec::new();
    for ea in a {
        let ba = ea.aabb();
        for eb in b {
            if predicates::bboxes_within(&ba, &eb.aabb(), eps)
                && predicates::elements_within(ea, eb, eps)
            {
                out.push((ea.id, eb.id));
            }
        }
    }
    out
}

fn grid_pair(a: &[Element], b: &[Element], eps: f32) -> Vec<(ElementId, ElementId)> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let bounds =
        Aabb::union_all(a.iter().chain(b.iter()).map(Element::aabb)).inflate(eps.max(1e-6));
    let n = (a.len() + b.len()) as f32;
    let spacing = (bounds.volume().max(f32::MIN_POSITIVE) / n).cbrt();
    let max_extent = a
        .iter()
        .chain(b.iter())
        .map(|e| {
            let ext = e.aabb().extent();
            ext.x.max(ext.y).max(ext.z)
        })
        .fold(0.0f32, f32::max);
    let cell = (2.0 * spacing).max(max_extent + eps).max(1e-6);

    let dims = [
        ((bounds.extent().x / cell).ceil() as usize).max(1),
        ((bounds.extent().y / cell).ceil() as usize).max(1),
        ((bounds.extent().z / cell).ceil() as usize).max(1),
    ];
    let coord = |p: &Point3| -> [usize; 3] {
        let rel = *p - bounds.min;
        [
            ((rel.x / cell) as isize).clamp(0, dims[0] as isize - 1) as usize,
            ((rel.y / cell) as isize).clamp(0, dims[1] as isize - 1) as usize,
            ((rel.z / cell) as isize).clamp(0, dims[2] as isize - 1) as usize,
        ]
    };
    let index = |c: [usize; 3]| (c[2] * dims[1] + c[1]) * dims[0] + c[0];

    // Replicate both inputs into the shared grid (A inflated by eps so a
    // single-sided filter suffices at the join).
    let mut cells_a: Vec<Vec<ElementId>> = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
    let mut cells_b: Vec<Vec<ElementId>> = vec![Vec::new(); dims[0] * dims[1] * dims[2]];
    let inflated_a: Vec<Aabb> = a.iter().map(|e| e.aabb().inflate(eps)).collect();
    let scatter = |boxes: &[Aabb], cells: &mut Vec<Vec<ElementId>>, ids: &[Element]| {
        for (e, bbox) in ids.iter().zip(boxes.iter()) {
            let (lo, hi) = (coord(&bbox.min), coord(&bbox.max));
            for z in lo[2]..=hi[2] {
                for y in lo[1]..=hi[1] {
                    for x in lo[0]..=hi[0] {
                        cells[index([x, y, z])].push(e.id);
                    }
                }
            }
        }
    };
    scatter(&inflated_a, &mut cells_a, a);
    let boxes_b: Vec<Aabb> = b.iter().map(Element::aabb).collect();
    scatter(&boxes_b, &mut cells_b, b);

    let mut out = Vec::new();
    for ci in 0..cells_a.len() {
        if cells_a[ci].is_empty() || cells_b[ci].is_empty() {
            continue;
        }
        for &ia in &cells_a[ci] {
            for &ib in &cells_b[ci] {
                let infl = inflated_a[ia as usize];
                let bb = boxes_b[ib as usize];
                if !predicates::element_bbox_in_range(&infl, &bb) {
                    continue;
                }
                // Reference point: the overlap of the replicated regions.
                let ov = infl
                    .intersection(&bb)
                    .expect("filtered pair must overlap after inflation");
                if index(coord(&ov.min)) != ci {
                    continue;
                }
                if predicates::elements_within(&a[ia as usize], &b[ib as usize], eps) {
                    out.push((ia, ib));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_geom::{Shape, Sphere};

    fn spheres(offset: f32, n: u32, r: f32) -> Vec<Element> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let x = (h % 199) as f32 / 10.0 + offset;
                let y = ((h >> 10) % 199) as f32 / 10.0;
                let z = ((h >> 20) % 199) as f32 / 10.0;
                Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
            })
            .collect()
    }

    #[test]
    fn grid_matches_nested() {
        let a = spheres(0.0, 300, 0.3);
        let b = spheres(0.15, 250, 0.3);
        for eps in [0.0f32, 0.4, 1.0] {
            let truth = join_pair(&a, &b, eps, PairAlgorithm::NestedLoop);
            let got = join_pair(&a, &b, eps, PairAlgorithm::Grid);
            assert_eq!(got, truth, "eps {eps}");
            assert!(!truth.is_empty() || eps == 0.0);
        }
    }

    #[test]
    fn pair_ids_index_their_own_inputs() {
        // Same ids on both sides must not be confused: a ⋈ b is not a self-join.
        let a = vec![Element::new(
            0,
            Shape::Sphere(Sphere::new(Point3::new(0.0, 0.0, 0.0), 0.5)),
        )];
        let b = vec![Element::new(
            0,
            Shape::Sphere(Sphere::new(Point3::new(0.4, 0.0, 0.0), 0.5)),
        )];
        let pairs = join_pair(&a, &b, 0.0, PairAlgorithm::Grid);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn empty_inputs() {
        let a = spheres(0.0, 10, 0.2);
        assert!(join_pair(&a, &[], 1.0, PairAlgorithm::Grid).is_empty());
        assert!(join_pair(&[], &a, 1.0, PairAlgorithm::NestedLoop).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_eps_rejected() {
        join_pair(&[], &[], -1.0, PairAlgorithm::Grid);
    }
}
