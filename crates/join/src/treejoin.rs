//! Synchronized hierarchical tree join.
//!
//! The data-oriented-partitioning join family the paper discusses through
//! TOUCH \[21\]: bulk-load an STR R-Tree over the dataset (the "costly
//! data-oriented partitioning & indexing step" §3.3 complains about —
//! measured separately by the harness), then traverse pairs of nodes
//! synchronously, descending only into child pairs whose MBRs are within
//! eps (Brinkhoff-style R-Tree join, self-join specialisation).

use crate::canonical;
use simspatial_geom::{predicates, stats, Element, ElementId};
use simspatial_index::{RTree, RTreeConfig};

pub(crate) fn join(data: &[Element], eps: f32) -> Vec<(ElementId, ElementId)> {
    if data.len() < 2 {
        return Vec::new();
    }
    let tree = RTree::bulk_load(data, RTreeConfig::default());
    let mut out = Vec::new();
    join_nodes(
        &tree,
        data,
        eps,
        tree.root_node(),
        tree.root_node(),
        &mut out,
    );
    out
}

/// Joins the subtrees under `a` and `b` (possibly the same node).
fn join_nodes(
    tree: &RTree,
    data: &[Element],
    eps: f32,
    a: usize,
    b: usize,
    out: &mut Vec<(ElementId, ElementId)>,
) {
    match (tree.node_is_leaf(a), tree.node_is_leaf(b)) {
        (true, true) => {
            // Leaf-leaf: one inflated probe box per entry against the other
            // leaf's SoA slab through the batched mask kernel; survivors
            // refine against exact geometry.
            let ea = tree.node_entries(a);
            let eb = tree.node_entries(b);
            let mut hits: Vec<(u32, ElementId)> = Vec::new();
            for i in 0..ea.len() {
                let (ba, ia) = ea.get(i);
                let probe = ba.inflate(eps);
                let start = if a == b { i + 1 } else { 0 };
                stats::record_element_tests((eb.len() - start) as u64);
                hits.clear();
                eb.intersect_from_into(start, &probe, &mut hits);
                for &(_, ib) in &hits {
                    if ia == ib {
                        continue;
                    }
                    if predicates::elements_within(&data[ia as usize], &data[ib as usize], eps) {
                        out.push(canonical(ia, ib));
                    }
                }
            }
        }
        (false, false) => {
            let ca = tree.node_children(a);
            let cb = tree.node_children(b);
            if a == b {
                for (i, &x) in ca.iter().enumerate() {
                    for &y in &ca[i..] {
                        if stats::tree_test(|| {
                            tree.node_mbr(x).inflate(eps).intersects(&tree.node_mbr(y))
                        }) {
                            join_nodes(tree, data, eps, x, y, out);
                        }
                    }
                }
            } else {
                for &x in ca {
                    for &y in cb {
                        if stats::tree_test(|| {
                            tree.node_mbr(x).inflate(eps).intersects(&tree.node_mbr(y))
                        }) {
                            join_nodes(tree, data, eps, x, y, out);
                        }
                    }
                }
            }
        }
        // STR packs all leaves at one level, but a root leaf paired with an
        // internal node can occur transiently in other builds: descend the
        // internal side.
        (true, false) => {
            for &y in tree.node_children(b) {
                if stats::tree_test(|| tree.node_mbr(a).inflate(eps).intersects(&tree.node_mbr(y)))
                {
                    join_nodes(tree, data, eps, a, y, out);
                }
            }
        }
        (false, true) => join_nodes(tree, data, eps, b, a, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nested;
    use simspatial_geom::{Point3, Shape, Sphere};

    fn scattered(n: u32) -> Vec<Element> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let x = (h % 199) as f32 / 10.0;
                let y = ((h >> 10) % 199) as f32 / 10.0;
                let z = ((h >> 20) % 199) as f32 / 10.0;
                Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), 0.3)))
            })
            .collect()
    }

    #[test]
    fn matches_nested_loop() {
        let data = scattered(400);
        for eps in [0.0f32, 0.4, 1.0] {
            let mut a = join(&data, eps);
            a.sort_unstable();
            a.dedup();
            let mut b = nested::join(&data, eps);
            b.sort_unstable();
            assert_eq!(a, b, "eps {eps}");
        }
    }

    #[test]
    fn self_pair_nodes_do_not_duplicate() {
        // Dense cluster: every pair within eps; result must be exactly C(n,2).
        let data: Vec<Element> = (0..40)
            .map(|i| {
                Element::new(
                    i,
                    Shape::Sphere(Sphere::new(Point3::new(0.0, 0.0, 0.0), 0.1)),
                )
            })
            .collect();
        let mut pairs = join(&data, 0.0);
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 40 * 39 / 2);
    }
}
