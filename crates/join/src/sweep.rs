//! Plane-sweep self-join.
//!
//! Sorts by the x-interval start and compares each element against the
//! elements whose x-intervals overlap it (inflated by eps). Prunes one
//! dimension only — the paper's criticism: "The sweep line approach does
//! not ensure that only spatially close objects are compared" — which the
//! instrumentation makes visible as excess element tests on 3-D data.

use crate::canonical;
use simspatial_geom::{predicates, Aabb, Element, ElementId};

pub(crate) fn join(data: &[Element], eps: f32) -> Vec<(ElementId, ElementId)> {
    let mut items: Vec<(Aabb, ElementId)> = data.iter().map(|e| (e.aabb(), e.id)).collect();
    items.sort_unstable_by(|a, b| a.0.min.x.total_cmp(&b.0.min.x));
    let mut out = Vec::new();
    for i in 0..items.len() {
        let (bbox_i, id_i) = items[i];
        let reach = bbox_i.max.x + eps;
        for &(bbox_j, id_j) in items[i + 1..].iter() {
            if bbox_j.min.x > reach {
                break; // sorted: nothing further can overlap in x
            }
            if predicates::bboxes_within(&bbox_i, &bbox_j, eps)
                && predicates::elements_within(&data[id_i as usize], &data[id_j as usize], eps)
            {
                out.push(canonical(id_i, id_j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simspatial_geom::{Point3, Shape, Sphere};

    #[test]
    fn matches_hand_computed() {
        let data = vec![
            Element::new(
                0,
                Shape::Sphere(Sphere::new(Point3::new(0.0, 0.0, 0.0), 0.5)),
            ),
            Element::new(
                1,
                Shape::Sphere(Sphere::new(Point3::new(0.8, 0.0, 0.0), 0.5)),
            ),
            // Same x as 1 but far in y: x-sweep must compare, refine rejects.
            Element::new(
                2,
                Shape::Sphere(Sphere::new(Point3::new(0.8, 9.0, 0.0), 0.5)),
            ),
        ];
        assert_eq!(join(&data, 0.0), vec![(0, 1)]);
    }

    #[test]
    fn unsorted_input_handled() {
        // Deliberately descending x.
        let data = vec![
            Element::new(
                0,
                Shape::Sphere(Sphere::new(Point3::new(5.0, 0.0, 0.0), 0.4)),
            ),
            Element::new(
                1,
                Shape::Sphere(Sphere::new(Point3::new(4.4, 0.0, 0.0), 0.4)),
            ),
            Element::new(
                2,
                Shape::Sphere(Sphere::new(Point3::new(0.0, 0.0, 0.0), 0.4)),
            ),
        ];
        assert_eq!(join(&data, 0.0), vec![(0, 1)]);
    }
}
