//! # simspatial-storage
//!
//! A **simulated disk** substrate for the `simspatial` workspace.
//!
//! The paper's Figure 2 contrasts the cost breakdown of an R-Tree *on disk*
//! (96.7 % of query time spent reading data from 2014-era striped SAS disks)
//! with the same index *in memory* (3.3 % reading, 95.3 % computing). We have
//! no spinning disks, so — per the reproduction brief's substitution rule —
//! this crate models one:
//!
//! * data pages live in RAM inside a [`PageStore`], but
//! * every access that *would* have touched the device is routed through a
//!   [`BufferPool`] which, on a miss, charges a calibrated [`DiskModel`]
//!   latency against a virtual clock ([`IoStats::disk_time_s`]).
//!
//! A disk-resident index then reports modelled `disk_time` alongside the CPU
//! time the caller measures, which is exactly the decomposition Figure 2
//! plots. The default model is calibrated to the paper's hardware appendix
//! (4 × 300 GB SAS drives striped, 4 KB pages, cold caches between queries).
//!
//! The pool is deliberately single-threaded (`&mut self`): the paper's
//! experiments are sequential query streams, and keeping the substrate free
//! of locks keeps the *measured* CPU component honest.
//!
//! ## Example
//!
//! ```
//! use simspatial_storage::{BufferPool, BufferPoolConfig, DiskModel, PageStore};
//!
//! let mut store = PageStore::new();
//! let id = store.allocate();
//! store.write(id, b"hello");
//!
//! let mut pool = BufferPool::new(BufferPoolConfig {
//!     capacity_pages: 8,
//!     disk: DiskModel::sas_2014(),
//! });
//! let data = pool.read(&store, id).to_vec();
//! assert_eq!(&data[..5], b"hello");
//! assert_eq!(pool.stats().misses, 1);      // cold read hit the "disk"
//! pool.read(&store, id);
//! assert_eq!(pool.stats().hits, 1);        // warm read did not
//! assert!(pool.stats().disk_time_s > 0.0); // modelled latency was charged
//! ```

#![warn(missing_docs)]

mod buffer_pool;
mod disk_model;
mod page;
mod store;

pub use buffer_pool::{BufferPool, BufferPoolConfig};
pub use disk_model::{DiskModel, IoStats};
pub use page::{PageId, PAGE_SIZE};
pub use store::PageStore;
