//! An LRU buffer pool that charges a disk model on misses.

use crate::{DiskModel, IoStats, PageId, PageStore, PAGE_SIZE};
use bytes::Bytes;
use std::collections::HashMap;

/// Configuration of a [`BufferPool`].
#[derive(Debug, Clone, Copy)]
pub struct BufferPoolConfig {
    /// Maximum number of pages cached.
    pub capacity_pages: usize,
    /// Latency model charged on misses and write-backs.
    pub disk: DiskModel,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        // 64 MiB of cache: small relative to the datasets, as in the paper's
        // cold-cache methodology.
        Self {
            capacity_pages: 64 * 1024 * 1024 / PAGE_SIZE,
            disk: DiskModel::default(),
        }
    }
}

/// Doubly linked LRU list entry, stored in a slab indexed by `usize`.
#[derive(Debug, Clone)]
struct Frame {
    page: PageId,
    data: Bytes,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity LRU page cache with modelled miss latency.
///
/// Reads go through [`BufferPool::read`]; a hit costs nothing (beyond the
/// real CPU time of the lookup, which the caller measures), a miss charges
/// the configured [`DiskModel`] against [`IoStats::disk_time_s`] and evicts
/// the least-recently-used frame when full.
#[derive(Debug)]
pub struct BufferPool {
    config: BufferPoolConfig,
    map: HashMap<PageId, usize>,
    frames: Vec<Frame>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    last_fetch: Option<PageId>,
    stats: IoStats,
}

impl BufferPool {
    /// Creates a pool with the given configuration.
    ///
    /// # Panics
    /// Panics if `capacity_pages` is zero.
    pub fn new(config: BufferPoolConfig) -> Self {
        assert!(
            config.capacity_pages > 0,
            "buffer pool needs at least one frame"
        );
        Self {
            config,
            map: HashMap::with_capacity(config.capacity_pages),
            frames: Vec::with_capacity(config.capacity_pages.min(4096)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            last_fetch: None,
            stats: IoStats::default(),
        }
    }

    /// Accumulated I/O statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the statistics (the cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Number of pages currently cached.
    #[inline]
    pub fn cached_pages(&self) -> usize {
        self.map.len()
    }

    /// Drops every cached page — the paper's cold-cache reset "between any
    /// two queries".
    pub fn clear(&mut self) {
        self.map.clear();
        self.frames.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.last_fetch = None;
    }

    /// Reads page `id` from `store`, through the cache.
    ///
    /// Returns the page bytes (always [`PAGE_SIZE`] long). On a miss the
    /// modelled device latency is added to [`IoStats::disk_time_s`]; a miss
    /// on the page immediately following the previously fetched page is
    /// charged the sequential rate.
    pub fn read(&mut self, store: &PageStore, id: PageId) -> &[u8] {
        if let Some(&slot) = self.map.get(&id) {
            self.stats.hits += 1;
            self.touch(slot);
            return &self.frames[slot].data;
        }
        self.stats.misses += 1;
        let sequential = self.last_fetch.is_some_and(|p| p.0 + 1 == id.0);
        if sequential {
            self.stats.sequential_misses += 1;
            self.stats.disk_time_s += self.config.disk.sequential_read_s;
        } else {
            self.stats.disk_time_s += self.config.disk.random_read_s;
        }
        self.last_fetch = Some(id);

        let data = Bytes::copy_from_slice(store.raw(id));
        let slot = self.insert_frame(id, data);
        &self.frames[slot].data
    }

    /// Charges a page write-back (the store itself is updated by the caller;
    /// the pool only models the cost and invalidates its copy).
    pub fn write(&mut self, store: &mut PageStore, id: PageId, data: &[u8]) {
        store.write(id, data);
        self.stats.writes += 1;
        self.stats.disk_time_s += self.config.disk.random_write_s;
        if let Some(&slot) = self.map.get(&id) {
            self.frames[slot].data = Bytes::copy_from_slice(store.raw(id));
            self.touch(slot);
        }
    }

    /// Inserts a frame for `id`, evicting the LRU frame when at capacity.
    fn insert_frame(&mut self, id: PageId, data: Bytes) -> usize {
        if self.map.len() >= self.config.capacity_pages {
            self.evict_lru();
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.frames[s] = Frame {
                    page: id,
                    data,
                    prev: NIL,
                    next: NIL,
                };
                s
            }
            None => {
                self.frames.push(Frame {
                    page: id,
                    data,
                    prev: NIL,
                    next: NIL,
                });
                self.frames.len() - 1
            }
        };
        self.map.insert(id, slot);
        self.push_front(slot);
        slot
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict called on empty pool");
        self.unlink(victim);
        let page = self.frames[victim].page;
        self.map.remove(&page);
        self.frames[victim].data = Bytes::new();
        self.free.push(victim);
    }

    /// Moves `slot` to the MRU position.
    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.frames[slot].prev, self.frames[slot].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.frames[slot].prev = NIL;
        self.frames[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.frames[slot].prev = NIL;
        self.frames[slot].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: usize) -> PageStore {
        let mut s = PageStore::new();
        for i in 0..n {
            let id = s.allocate();
            s.write(id, &[i as u8]);
        }
        s
    }

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(BufferPoolConfig {
            capacity_pages: cap,
            disk: DiskModel::sas_2014(),
        })
    }

    #[test]
    fn hit_after_miss() {
        let store = store_with(4);
        let mut p = pool(2);
        assert_eq!(p.read(&store, PageId(0))[0], 0);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.read(&store, PageId(0))[0], 0);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().reads(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let store = store_with(4);
        let mut p = pool(2);
        p.read(&store, PageId(0));
        p.read(&store, PageId(1));
        p.read(&store, PageId(0)); // 0 is now MRU; 1 is LRU
        p.read(&store, PageId(2)); // evicts 1
        assert_eq!(p.cached_pages(), 2);
        p.reset_stats();
        p.read(&store, PageId(0));
        assert_eq!(p.stats().hits, 1, "page 0 should have survived");
        p.read(&store, PageId(1));
        assert_eq!(p.stats().misses, 1, "page 1 should have been evicted");
    }

    #[test]
    fn sequential_misses_are_cheaper() {
        let store = store_with(10);
        let mut p = pool(16);
        p.read(&store, PageId(3));
        let t_random = p.stats().disk_time_s;
        p.read(&store, PageId(4)); // sequential
        let t_seq = p.stats().disk_time_s - t_random;
        assert_eq!(p.stats().sequential_misses, 1);
        assert!(t_seq < t_random);
    }

    #[test]
    fn clear_makes_cache_cold() {
        let store = store_with(2);
        let mut p = pool(2);
        p.read(&store, PageId(0));
        p.clear();
        p.reset_stats();
        p.read(&store, PageId(0));
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn writes_update_cached_copy() {
        let mut store = store_with(2);
        let mut p = pool(2);
        p.read(&store, PageId(0));
        p.write(&mut store, PageId(0), &[42]);
        assert_eq!(p.read(&store, PageId(0))[0], 42);
        assert_eq!(p.stats().writes, 1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let store = store_with(64);
        let mut p = pool(7);
        for round in 0..3 {
            for i in 0..64 {
                p.read(&store, PageId((i * 13 + round * 7) % 64));
                assert!(p.cached_pages() <= 7);
            }
        }
    }

    #[test]
    fn free_model_charges_nothing() {
        let store = store_with(4);
        let mut p = BufferPool::new(BufferPoolConfig {
            capacity_pages: 2,
            disk: DiskModel::free(),
        });
        for i in 0..4 {
            p.read(&store, PageId(i));
        }
        assert_eq!(p.stats().disk_time_s, 0.0);
        assert_eq!(p.stats().misses, 4);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        BufferPool::new(BufferPoolConfig {
            capacity_pages: 0,
            disk: DiskModel::free(),
        });
    }
}
