//! The backing "device": an append-only array of pages.

use crate::{PageId, PAGE_SIZE};
use bytes::{Bytes, BytesMut};

/// The simulated device contents: a growable array of fixed-size pages.
///
/// `PageStore` holds the bytes but charges no cost — all latency accounting
/// happens in the [`crate::BufferPool`] that mediates access. Keeping the
/// two separate lets the same store be read "from disk" (through a pool with
/// a SAS model) and "from memory" (a free model) in the Figure 2 experiment.
#[derive(Debug, Default, Clone)]
pub struct PageStore {
    pages: Vec<Bytes>,
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of allocated pages.
    #[inline]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when no pages have been allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total allocated bytes (what the paper reports as on-disk size).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Allocates a fresh zeroed page and returns its id.
    pub fn allocate(&mut self) -> PageId {
        let id = PageId(u32::try_from(self.pages.len()).expect("page store exceeds u32 pages"));
        self.pages.push(Bytes::from(vec![0u8; PAGE_SIZE]));
        id
    }

    /// Writes `data` at the start of page `id`, zero-padding the remainder.
    ///
    /// # Panics
    /// Panics if `id` is unallocated or `data` exceeds [`PAGE_SIZE`].
    pub fn write(&mut self, id: PageId, data: &[u8]) {
        assert!(
            data.len() <= PAGE_SIZE,
            "page overflow: {} > {PAGE_SIZE}",
            data.len()
        );
        let mut buf = BytesMut::zeroed(PAGE_SIZE);
        buf[..data.len()].copy_from_slice(data);
        self.pages[id.index()] = buf.freeze();
    }

    /// Raw page contents (always [`PAGE_SIZE`] bytes).
    ///
    /// Direct access bypasses the buffer pool and therefore the cost model;
    /// indexes should only use it through a pool unless they are modelling a
    /// fully memory-resident deployment.
    ///
    /// # Panics
    /// Panics if `id` is unallocated.
    #[inline]
    pub fn raw(&self, id: PageId) -> &[u8] {
        &self.pages[id.index()]
    }

    /// Allocates a page and writes `data` into it in one step.
    pub fn append(&mut self, data: &[u8]) -> PageId {
        let id = self.allocate();
        self.write(id, data);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read() {
        let mut s = PageStore::new();
        assert!(s.is_empty());
        let a = s.allocate();
        let b = s.allocate();
        assert_eq!((a, b), (PageId(0), PageId(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.size_bytes(), 2 * PAGE_SIZE);
        s.write(b, &[1, 2, 3]);
        assert_eq!(&s.raw(b)[..4], &[1, 2, 3, 0]);
        assert_eq!(s.raw(a)[0], 0);
    }

    #[test]
    fn append_is_allocate_plus_write() {
        let mut s = PageStore::new();
        let id = s.append(b"abc");
        assert_eq!(&s.raw(id)[..3], b"abc");
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_write_panics() {
        let mut s = PageStore::new();
        let id = s.allocate();
        s.write(id, &vec![0u8; PAGE_SIZE + 1]);
    }

    #[test]
    fn full_page_write_is_ok() {
        let mut s = PageStore::new();
        let id = s.allocate();
        s.write(id, &vec![7u8; PAGE_SIZE]);
        assert!(s.raw(id).iter().all(|&b| b == 7));
    }
}
