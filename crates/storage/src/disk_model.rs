//! The disk cost model and its accounting.

use serde::{Deserialize, Serialize};

/// A latency model for a (simulated) block device.
///
/// Reads are charged per page: a *random* read pays seek + rotational
/// latency + transfer; a *sequential* read (the page following the last one
/// read) pays transfer only. This two-regime model captures the behaviour
/// that made disk-based spatial indexes obsess over page counts — the
/// phenomenon Figure 2 of the paper quantifies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Cost of a random 4 KB page read, in seconds (seek + rotation + transfer).
    pub random_read_s: f64,
    /// Cost of a sequential 4 KB page read, in seconds (transfer only).
    pub sequential_read_s: f64,
    /// Cost of a random 4 KB page write, in seconds.
    pub random_write_s: f64,
}

impl DiskModel {
    /// The paper's testbed: 4 × 300 GB SAS disks (≈10 k rpm) striped.
    ///
    /// A single 10 k rpm SAS drive randomly reads a 4 KB page in ≈ 8 ms
    /// (≈ 4.5 ms seek + 3 ms rotational + transfer); striping over four
    /// spindles pipelines independent requests, giving ≈ 2 ms effective
    /// latency per random page for a single-threaded query stream with
    /// queue-depth overlap. Sequential bandwidth of the stripe ≈ 400 MB/s
    /// → ≈ 10 µs per 4 KB page.
    ///
    /// Sanity check against the paper: 200 queries over a 200 M-element
    /// STR R-Tree read on the order of 10⁶ mostly-random pages cold, i.e.
    /// ≈ 2000 s — matching the reported 2253 s total with 96.7 % in reads.
    pub fn sas_2014() -> Self {
        Self {
            random_read_s: 2.0e-3,
            sequential_read_s: 1.0e-5,
            random_write_s: 2.0e-3,
        }
    }

    /// A model of a 2014-era SATA SSD, for the paper's closing remark that
    /// new storage media change the constants (but not the in-memory
    /// argument): ≈ 100 µs random read, ≈ 8 µs sequential page.
    pub fn ssd_2014() -> Self {
        Self {
            random_read_s: 1.0e-4,
            sequential_read_s: 8.0e-6,
            random_write_s: 5.0e-4,
        }
    }

    /// A zero-cost model: turns the buffer pool into plain memory access,
    /// useful to measure the pure CPU component of a disk-layout index.
    pub fn free() -> Self {
        Self {
            random_read_s: 0.0,
            sequential_read_s: 0.0,
            random_write_s: 0.0,
        }
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::sas_2014()
    }
}

/// Accumulated I/O accounting for a buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IoStats {
    /// Reads satisfied by the pool without touching the device.
    pub hits: u64,
    /// Reads that had to fetch the page from the device.
    pub misses: u64,
    /// Pages written back to the device.
    pub writes: u64,
    /// Misses that were sequential with respect to the previous fetch.
    pub sequential_misses: u64,
    /// Total modelled device time, in seconds.
    pub disk_time_s: f64,
}

impl IoStats {
    /// Total page reads requested (hits + misses).
    #[inline]
    pub fn reads(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `\[0, 1\]`; zero when no reads occurred.
    pub fn hit_ratio(&self) -> f64 {
        let reads = self.reads();
        if reads == 0 {
            0.0
        } else {
            self.hits as f64 / reads as f64
        }
    }

    /// Component-wise difference (`self` minus `earlier`).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            writes: self.writes - earlier.writes,
            sequential_misses: self.sequential_misses - earlier.sequential_misses,
            disk_time_s: self.disk_time_s - earlier.disk_time_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_ordered_sensibly() {
        let sas = DiskModel::sas_2014();
        let ssd = DiskModel::ssd_2014();
        assert!(sas.random_read_s > ssd.random_read_s);
        assert!(sas.random_read_s > sas.sequential_read_s);
        assert_eq!(DiskModel::free().random_read_s, 0.0);
    }

    #[test]
    fn stats_arithmetic() {
        let a = IoStats {
            hits: 10,
            misses: 30,
            writes: 1,
            sequential_misses: 5,
            disk_time_s: 1.0,
        };
        assert_eq!(a.reads(), 40);
        assert!((a.hit_ratio() - 0.25).abs() < 1e-12);
        let b = IoStats {
            hits: 15,
            misses: 50,
            writes: 2,
            sequential_misses: 9,
            disk_time_s: 2.5,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 5);
        assert_eq!(d.misses, 20);
        assert!((d.disk_time_s - 1.5).abs() < 1e-12);
        assert_eq!(IoStats::default().hit_ratio(), 0.0);
    }
}
