//! Pages and page identifiers.

use serde::{Deserialize, Serialize};

/// Size of a disk page in bytes.
///
/// The paper's experimental appendix sets "page and node size to 4K", the
/// classic disk-oriented choice its §3.3 contrasts with cache-line-sized
/// in-memory nodes.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`crate::PageStore`].
///
/// Stored as a `u32`: the simulated volumes here are far below the 16 TiB
/// this addresses at 4 KB pages, and a compact id keeps serialized node
/// references small (one of the CR-Tree's pointer-compression arguments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl PageId {
    /// The page id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let id = PageId(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "page#17");
        assert!(PageId(1) < PageId(2));
    }
}
