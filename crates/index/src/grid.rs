//! The uniform grid — the paper's favoured in-memory direction.
//!
//! §3.3: "One direction to develop novel spatial indexes for main memory may
//! be to use a single uniform grid and therefore to avoid the tree structure
//! needed for access." And §4.3: "using grids will considerably lower the
//! overhead of updates. Clearly the small movement means that only few
//! elements switch grid cell in every step."
//!
//! Two placement policies cover the design axis the paper discusses:
//!
//! * [`GridPlacement::Replicate`] — an element is listed in every cell its
//!   bounding box overlaps (larger index, queries dedupe);
//! * [`GridPlacement::Center`] — an element is listed only in the cell of
//!   its centroid; queries inflate their search region by the largest
//!   element half-extent (the "looser partitions" alternative).
//!
//! Cell resolution is the grid's one knob; [`GridConfig::auto`] implements
//! the analytical model the paper calls for ("the optimal resolution depends
//! on the distribution of location and size of the spatial elements").
//!
//! ## Cache-conscious layout
//!
//! Each cell stores its candidates as a [`SoaAabbs`] slab: ids plus six
//! contiguous coordinate arrays. A range query walks the overlapped cells
//! and runs the **batched bbox filter** over each slab — a streaming pass
//! over flat `f32` arrays instead of a per-candidate gather through
//! `data[id]` — and only the survivors are refined against exact geometry.
//! This is §3.3's scan-friendly-grid argument applied at the memory-layout
//! level; the measured before/after of exactly this change is
//! `BENCH_batch_kernel.json` (see `crates/bench/benches/batch_kernel.rs`).
//! Replication dedupe uses the generation-stamped
//! [`simspatial_geom::scratch::VisitedTable`] from the thread-local
//! [`simspatial_geom::QueryScratch`], so the repeat query path is
//! allocation-free (no per-query `HashSet`, no candidate vector churn).

use crate::traits::{KnnIndex, KnnSink, RangeSink, SpatialIndex};
use crate::util::KnnHeap;
use simspatial_geom::scratch::{with_scratch, QueryScratch, VisitedTable};
use simspatial_geom::{stats, Aabb, Element, ElementId, Point3, SoaAabbs};

/// Placement policy for volumetric elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPlacement {
    /// Replicate ids into every overlapped cell.
    Replicate,
    /// Single cell by centroid; queries are inflated by the maximum element
    /// half-extent to stay complete.
    Center,
}

/// Configuration of a [`UniformGrid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Edge length of the cubic cells.
    pub cell_side: f32,
    /// Placement policy.
    pub placement: GridPlacement,
}

impl GridConfig {
    /// Explicit resolution.
    pub fn with_cell_side(cell_side: f32, placement: GridPlacement) -> Self {
        assert!(
            cell_side > 0.0 && cell_side.is_finite(),
            "cell side must be positive"
        );
        Self {
            cell_side,
            placement,
        }
    }

    /// The analytical resolution model (§3.3): the cell side is the larger
    /// of (a) the mean element diameter — so replication stays bounded and
    /// center-placement inflation stays tight — and (b) 1.5× the mean
    /// inter-element spacing `(V/n)^⅓` — targeting a small constant number
    /// of elements per occupied cell.
    pub fn auto(elements: &[Element]) -> Self {
        let placement = GridPlacement::Center;
        if elements.is_empty() {
            return Self {
                cell_side: 1.0,
                placement,
            };
        }
        let bounds = Aabb::union_all(elements.iter().map(Element::aabb));
        let n = elements.len() as f32;
        let mean_extent = elements
            .iter()
            .map(|e| {
                let ext = e.aabb().extent();
                ext.x.max(ext.y).max(ext.z)
            })
            .sum::<f32>()
            / n;
        let spacing = (bounds.volume().max(f32::MIN_POSITIVE) / n).cbrt();
        let cell_side = (1.5 * spacing).max(mean_extent).max(1e-6);
        Self {
            cell_side,
            placement,
        }
    }
}

/// A single-resolution uniform grid over element bounding boxes.
///
/// ```
/// use simspatial_datagen::ElementSoupBuilder;
/// use simspatial_geom::{Aabb, Point3};
/// use simspatial_index::{GridConfig, SpatialIndex, UniformGrid};
///
/// let data = ElementSoupBuilder::new().count(2000).seed(3).build();
/// let grid = UniformGrid::build(data.elements(), GridConfig::auto(data.elements()));
/// let q = Aabb::new(Point3::new(10.0, 10.0, 10.0), Point3::new(30.0, 30.0, 30.0));
/// let hits = grid.range(data.elements(), &q);
/// assert!(!hits.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct UniformGrid {
    origin: Point3,
    cell: f32,
    dims: [usize; 3],
    /// Per-cell candidate slabs in structure-of-arrays form.
    cells: Vec<SoaAabbs>,
    placement: GridPlacement,
    len: usize,
    /// Largest half-extent over indexed elements (query inflation bound for
    /// center placement; also the kNN termination slack).
    max_half_extent: f32,
    /// Upper bound on stored ids (sizes the dedupe table).
    id_bound: usize,
    /// Center placement only: `slots[id] = (cell, slot)` directory giving
    /// O(1) entry lookup for the absorbed-update fast path (`u32::MAX`
    /// marks an absent id). Replicate placement stores several replicas per
    /// id and locates them by slab scan instead.
    slots: Vec<(u32, u32)>,
}

/// Absent-entry marker in the center-placement slot directory.
const NO_SLOT: (u32, u32) = (u32::MAX, u32::MAX);

/// Smallest slab for which the kNN batched lower-bound pass is worthwhile.
const MIN_KNN_BATCH: usize = 8;

/// Hard cap on total cells, to keep pathological configs from exhausting
/// memory; the resolution is coarsened to fit.
const MAX_CELLS: usize = 1 << 24; // 16.7 M cells

impl UniformGrid {
    /// Builds a grid over `elements` with the given configuration. The grid
    /// region is the tight bounds of the data, slightly padded so boundary
    /// elements land inside.
    ///
    /// Cell assignment (bounding boxes, centroids, cell coordinates) runs
    /// data-parallel over element chunks; the scatter into cell slabs is a
    /// single sequential pass.
    pub fn build(elements: &[Element], config: GridConfig) -> Self {
        let bounds = Aabb::union_all(elements.iter().map(Element::aabb));
        let mut grid = Self::empty_over(bounds, config, elements.len());
        grid.bulk_insert(elements);
        grid
    }

    /// Creates an empty grid covering `region` (used by the incremental
    /// update strategies, which insert as the simulation streams in).
    pub fn empty_over(region: Aabb, config: GridConfig, expected: usize) -> Self {
        assert!(config.cell_side > 0.0, "cell side must be positive");
        let (origin, extent) = if region.is_empty() {
            (Point3::ORIGIN, simspatial_geom::Vec3::new(1.0, 1.0, 1.0))
        } else {
            // A hair of padding so boundary coordinates round inward; cell
            // coordinates are clamped anyway, so this only balances the
            // boundary cells.
            let e = region.extent();
            let pad = (e.x.max(e.y).max(e.z) * 1e-4).max(1e-6);
            let padded = region.inflate(pad);
            (padded.min, padded.extent())
        };
        let mut cell = config.cell_side;
        let dims_for = |cell: f32| {
            [
                ((extent.x / cell).ceil() as usize).max(1),
                ((extent.y / cell).ceil() as usize).max(1),
                ((extent.z / cell).ceil() as usize).max(1),
            ]
        };
        let mut dims = dims_for(cell);
        while dims[0].saturating_mul(dims[1]).saturating_mul(dims[2]) > MAX_CELLS {
            cell *= 2.0;
            dims = dims_for(cell);
        }
        let total = dims[0] * dims[1] * dims[2];
        Self {
            origin,
            cell,
            dims,
            cells: vec![SoaAabbs::new(); total],
            placement: config.placement,
            len: 0,
            max_half_extent: 0.0,
            id_bound: expected,
            slots: Vec::new(),
        }
    }

    /// O(1) locate of `id`'s entry under center placement.
    #[inline]
    fn slot_of(&self, id: ElementId) -> Option<(usize, usize)> {
        match self.slots.get(id as usize) {
            Some(&(cell, slot)) if (cell, slot) != NO_SLOT => Some((cell as usize, slot as usize)),
            _ => None,
        }
    }

    /// Records `id`'s directory entry (center placement).
    #[inline]
    fn note_slot(&mut self, id: ElementId, cell: usize, slot: usize) {
        let idx = id as usize;
        if self.slots.len() <= idx {
            self.slots.resize(idx + 1, NO_SLOT);
        }
        self.slots[idx] = (cell as u32, slot as u32);
    }

    /// Pushes an entry into a cell slab, maintaining the slot directory.
    #[inline]
    fn cell_push(&mut self, cell: usize, bbox: Aabb, id: ElementId) {
        self.cells[cell].push(bbox, id);
        if self.placement == GridPlacement::Center {
            let slot = self.cells[cell].len() - 1;
            self.note_slot(id, cell, slot);
        }
    }

    /// Swap-removes a slab entry, patching the directory entries of both
    /// the removed id and the entry swapped into its place.
    #[inline]
    fn cell_swap_remove(&mut self, cell: usize, pos: usize) {
        let (_, removed) = self.cells[cell].swap_remove(pos);
        if self.placement == GridPlacement::Center {
            self.slots[removed as usize] = NO_SLOT;
            if pos < self.cells[cell].len() {
                let moved = self.cells[cell].id_at(pos);
                self.note_slot(moved, cell, pos);
            }
        }
    }

    /// The realised cell side (may be coarser than requested if the cap hit).
    pub fn cell_side(&self) -> f32 {
        self.cell
    }

    /// Grid dimensions in cells.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// The placement policy in force.
    pub fn placement(&self) -> GridPlacement {
        self.placement
    }

    /// Number of non-empty cells (diagnostics for the resolution model).
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_empty()).count()
    }

    #[inline]
    fn clamp_coord(&self, p: &Point3) -> [usize; 3] {
        let rel = *p - self.origin;
        [
            ((rel.x / self.cell) as isize).clamp(0, self.dims[0] as isize - 1) as usize,
            ((rel.y / self.cell) as isize).clamp(0, self.dims[1] as isize - 1) as usize,
            ((rel.z / self.cell) as isize).clamp(0, self.dims[2] as isize - 1) as usize,
        ]
    }

    #[inline]
    fn cell_index(&self, c: [usize; 3]) -> usize {
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// The cell coordinate an element centre maps to.
    pub fn cell_of(&self, p: &Point3) -> [usize; 3] {
        self.clamp_coord(p)
    }

    /// Range of cell coordinates overlapped by a box.
    fn cell_range(&self, b: &Aabb) -> ([usize; 3], [usize; 3]) {
        (self.clamp_coord(&b.min), self.clamp_coord(&b.max))
    }

    #[inline]
    fn note_element(&mut self, id: ElementId, bbox: &Aabb) {
        let ext = bbox.extent();
        self.max_half_extent = self.max_half_extent.max(ext.x.max(ext.y).max(ext.z) * 0.5);
        self.id_bound = self.id_bound.max(id as usize + 1);
    }

    /// Bulk-inserts a dataset: the parallel assignment phase computes each
    /// element's bounding box and target cell(s); a sequential pass then
    /// scatters the `(bbox, id)` entries into the cell slabs.
    fn bulk_insert(&mut self, elements: &[Element]) {
        if elements.is_empty() {
            return;
        }
        struct Assigned {
            entries: Vec<(u32, Aabb, ElementId)>,
            max_half: f32,
            max_id: ElementId,
        }
        // Phase 1 (parallel): geometry + cell coordinates per element. This
        // is the compute-heavy part — exact shape bounds and coordinate
        // quantisation — and is embarrassingly parallel.
        let chunks = simspatial_geom::parallel::par_map_chunks(elements, 2048, |_, chunk| {
            let mut out = Assigned {
                entries: Vec::with_capacity(chunk.len()),
                max_half: 0.0,
                max_id: 0,
            };
            for e in chunk {
                let bbox = e.aabb();
                let ext = bbox.extent();
                out.max_half = out.max_half.max(ext.x.max(ext.y).max(ext.z) * 0.5);
                out.max_id = out.max_id.max(e.id);
                match self.placement {
                    GridPlacement::Center => {
                        let c = self.clamp_coord(&e.center());
                        out.entries.push((self.cell_index(c) as u32, bbox, e.id));
                    }
                    GridPlacement::Replicate => {
                        let (lo, hi) = self.cell_range(&bbox);
                        for z in lo[2]..=hi[2] {
                            for y in lo[1]..=hi[1] {
                                for x in lo[0]..=hi[0] {
                                    out.entries.push((
                                        self.cell_index([x, y, z]) as u32,
                                        bbox,
                                        e.id,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            out
        });
        // Phase 2 (sequential): scatter into slabs.
        for chunk in chunks {
            self.max_half_extent = self.max_half_extent.max(chunk.max_half);
            self.id_bound = self.id_bound.max(chunk.max_id as usize + 1);
            for (cell, bbox, id) in chunk.entries {
                self.cell_push(cell as usize, bbox, id);
            }
        }
        self.len += elements.len();
    }

    /// Inserts an element under the configured placement.
    pub fn insert(&mut self, e: &Element) {
        let bbox = e.aabb();
        self.note_element(e.id, &bbox);
        match self.placement {
            GridPlacement::Center => {
                let c = self.clamp_coord(&e.center());
                let idx = self.cell_index(c);
                self.cell_push(idx, bbox, e.id);
            }
            GridPlacement::Replicate => {
                let (lo, hi) = self.cell_range(&bbox);
                for z in lo[2]..=hi[2] {
                    for y in lo[1]..=hi[1] {
                        for x in lo[0]..=hi[0] {
                            let idx = self.cell_index([x, y, z]);
                            self.cells[idx].push(bbox, e.id);
                        }
                    }
                }
            }
        }
        self.len += 1;
    }

    /// Removes an element, given the geometry it was inserted with.
    /// Returns `true` if found.
    pub fn remove(&mut self, id: ElementId, old: &Element) -> bool {
        let mut found = false;
        match self.placement {
            GridPlacement::Center => {
                if let Some((cell, pos)) = self.slot_of(id) {
                    self.cell_swap_remove(cell, pos);
                    found = true;
                }
            }
            GridPlacement::Replicate => {
                let (lo, hi) = self.cell_range(&old.aabb());
                for z in lo[2]..=hi[2] {
                    for y in lo[1]..=hi[1] {
                        for x in lo[0]..=hi[0] {
                            let idx = self.cell_index([x, y, z]);
                            if let Some(pos) = self.cells[idx].position_of_id(id) {
                                self.cells[idx].swap_remove(pos);
                                found = true;
                            }
                        }
                    }
                }
            }
        }
        if found {
            self.len -= 1;
        }
        found
    }

    /// Moves an element from its old to its new geometry. With center
    /// placement and small displacements this is almost always cell-local —
    /// the §4.3 argument for grids under massive minimal movement. Returns
    /// `true` when the element actually changed cells (the stored bounding
    /// box is refreshed either way, keeping the slabs exact).
    pub fn update(&mut self, old: &Element, new: &Element) -> bool {
        debug_assert_eq!(old.id, new.id);
        let new_bbox = new.aabb();
        match self.placement {
            GridPlacement::Center => {
                let co = self.clamp_coord(&old.center());
                let cn = self.clamp_coord(&new.center());
                if co == cn {
                    // Absorbed move: O(1) directory lookup, box rewrite in
                    // place so the stored-box filter keeps seeing live
                    // geometry.
                    if let Some((cell, pos)) = self.slot_of(old.id) {
                        self.cells[cell].set_box(pos, new_bbox);
                        self.note_element(new.id, &new_bbox);
                    }
                    return false;
                }
                if let Some((cell, pos)) = self.slot_of(old.id) {
                    self.cell_swap_remove(cell, pos);
                    let ic = self.cell_index(cn);
                    self.cell_push(ic, new_bbox, new.id);
                    self.note_element(new.id, &new_bbox);
                    true
                } else {
                    false
                }
            }
            GridPlacement::Replicate => {
                let (olo, ohi) = self.cell_range(&old.aabb());
                let (nlo, nhi) = self.cell_range(&new_bbox);
                if (olo, ohi) == (nlo, nhi) {
                    for z in olo[2]..=ohi[2] {
                        for y in olo[1]..=ohi[1] {
                            for x in olo[0]..=ohi[0] {
                                let idx = self.cell_index([x, y, z]);
                                if let Some(pos) = self.cells[idx].position_of_id(old.id) {
                                    self.cells[idx].set_box(pos, new_bbox);
                                }
                            }
                        }
                    }
                    self.note_element(new.id, &new_bbox);
                    return false;
                }
                self.remove(old.id, old);
                self.insert(new);
                self.len -= 1; // insert bumped it; the element is not new
                true
            }
        }
    }

    /// Applies a whole simulation step of movements in one call: `old[i]`
    /// and `new[i]` must describe the same element before/after. Currently
    /// a straight per-pair loop over [`UniformGrid::update`] (the step-level
    /// API exists so callers hand the grid the whole step; a genuinely
    /// vectorised migration pass can slot in behind it). Returns
    /// `(structural_updates, absorbed)` — the §4.3 split between elements
    /// that switched cells and elements whose movement the grid absorbed in
    /// place.
    pub fn update_batch(&mut self, old: &[Element], new: &[Element]) -> (usize, usize) {
        assert_eq!(
            old.len(),
            new.len(),
            "update_batch needs before/after pairs"
        );
        let mut structural = 0usize;
        let mut absorbed = 0usize;
        for (o, n) in old.iter().zip(new.iter()) {
            debug_assert_eq!(o.id, n.id);
            if self.update(o, n) {
                structural += 1;
            } else {
                absorbed += 1;
            }
        }
        (structural, absorbed)
    }

    /// Candidate ids whose **stored** bounding boxes intersect `probe`
    /// (deduplicated under replication), **without** exact refinement.
    /// Under center placement the cell walk is additionally inflated by the
    /// recorded maximum half-extent so every overlapping slab is visited.
    ///
    /// Callers that tolerate staleness (FLAT's seed phase) pass a probe
    /// already inflated by their drift bound; the stored boxes are the
    /// boxes at insert/update time, so the filter is sound against such a
    /// probe. Used by structures that layer their own refinement on top.
    pub fn range_bbox_candidates(&self, probe: &Aabb) -> Vec<ElementId> {
        with_scratch(|scratch| {
            self.collect_candidates(probe, scratch);
            scratch.candidates.clone()
        })
    }

    /// Allocation-free form of [`UniformGrid::range_bbox_candidates`]:
    /// appends candidates to `scratch.candidates`. Under replication the
    /// dedupe pass claims `scratch.visited` for a new epoch.
    pub fn range_bbox_candidates_into(&self, probe: &Aabb, scratch: &mut QueryScratch) {
        self.collect_candidates(probe, scratch);
    }

    /// The batched filter phase: appends to `scratch.candidates` the ids of
    /// stored boxes intersecting `probe`.
    fn collect_candidates(&self, probe: &Aabb, scratch: &mut QueryScratch) {
        let walk = match self.placement {
            GridPlacement::Center => probe.inflate(self.max_half_extent),
            GridPlacement::Replicate => *probe,
        };
        let (lo, hi) = self.cell_range(&walk);
        let dedupe = self.placement == GridPlacement::Replicate;
        if dedupe {
            scratch.visited.begin(self.id_bound);
        }
        let mut scanned = 0u64;
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    let slab = &self.cells[self.cell_index([x, y, z])];
                    if slab.is_empty() {
                        continue;
                    }
                    scanned += slab.len() as u64;
                    if dedupe {
                        let before = scratch.candidates.len();
                        slab.intersect_into(probe, &mut scratch.candidates);
                        // Drop ids already produced by a previously visited
                        // replica cell (generation-stamped, no hashing).
                        let mut keep = before;
                        for i in before..scratch.candidates.len() {
                            let id = scratch.candidates[i];
                            if scratch.visited.mark(id) {
                                scratch.candidates[keep] = id;
                                keep += 1;
                            }
                        }
                        scratch.candidates.truncate(keep);
                    } else {
                        slab.intersect_into(probe, &mut scratch.candidates);
                    }
                }
            }
        }
        // Counter semantics: one element-level test per slab *lane* — the
        // physical batched comparisons. Under replication this counts each
        // replica (the seed counted one test per deduplicated candidate
        // after its sort+dedup pass), so replicated grids report ~r x more
        // element tests than the seed methodology for replication factor r;
        // `elements_scanned` is unchanged (raw lanes, as before).
        stats::record_elements_scanned(scanned);
        stats::record_element_tests(scanned);
    }

    /// The seed implementation's scalar query path, kept as the reference
    /// for differential tests and the before/after kernel benchmark: dump
    /// raw cell candidate lists (sort + dedup under replication), then run
    /// the scalar filter-and-refine predicate per candidate against `data`.
    ///
    /// Compiled only for tests and under the `reference` feature, so release
    /// binaries do not carry the dead oracle code.
    #[cfg(any(test, feature = "reference"))]
    pub fn range_scalar_reference(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        let probe = match self.placement {
            GridPlacement::Center => query.inflate(self.max_half_extent),
            GridPlacement::Replicate => *query,
        };
        let (lo, hi) = self.cell_range(&probe);
        let mut out = Vec::new();
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    out.extend_from_slice(self.cells[self.cell_index([x, y, z])].ids());
                }
            }
        }
        stats::record_elements_scanned(out.len() as u64);
        if self.placement == GridPlacement::Replicate {
            out.sort_unstable();
            out.dedup();
        }
        out.retain(|&id| simspatial_geom::predicates::element_in_range(&data[id as usize], query));
        out
    }
}

impl SpatialIndex for UniformGrid {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Batched filter + scalar refine: the bbox filter streams over the
    /// cell slabs' SoA arrays; only survivors touch `data` for the exact
    /// geometry test, and confirmed hits stream straight into the sink.
    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn RangeSink,
    ) {
        scratch.candidates.clear();
        self.collect_candidates(query, scratch);
        stats::record_element_tests(scratch.candidates.len() as u64);
        for &id in &scratch.candidates {
            if data[id as usize].shape.intersects_aabb(query) {
                sink.push(id);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>()
            + self.cells.capacity() * std::mem::size_of::<SoaAabbs>()
            // The center-placement slot directory added with the SoA slabs.
            + self.slots.capacity() * std::mem::size_of::<(u32, u32)>();
        for c in &self.cells {
            total += c.memory_bytes();
        }
        total
    }
}

impl UniformGrid {
    /// The expanding-shell kNN search core, filling a caller-owned best-k
    /// heap: each visited cell slab first runs the batched `MINDIST` kernel
    /// ([`SoaAabbs::min_dist2_into`]) over its stored boxes; a candidate
    /// pays the exact element-surface distance only when its box lower
    /// bound can still beat the current k-th best. Rings expand outward in
    /// Chebyshev shells and stop once no unvisited ring can improve.
    ///
    /// Shared with [`crate::MultiGrid`], which runs every level's search
    /// against **one** heap so earlier levels' k-th best prunes later
    /// levels.
    pub(crate) fn knn_core(
        &self,
        data: &[Element],
        p: &Point3,
        dists: &mut Vec<f32>,
        visited: &mut VisitedTable,
        best: &mut KnnHeap,
    ) {
        if self.len == 0 {
            return;
        }
        let center = self.clamp_coord(p);
        let max_ring = self.dims[0].max(self.dims[1]).max(self.dims[2]);
        // Under replication an element appears in several cells; the
        // generation-stamped visited table keeps it from being scored (and
        // returned) twice.
        let dedupe = self.placement == GridPlacement::Replicate;
        if dedupe {
            visited.begin(self.id_bound);
        }
        let mut seen = 0usize;
        for ring in 0..=max_ring {
            // Termination: the closest possible element in ring r is at
            // least (r-1)·cell − max_half_extent away (the point may sit
            // at its cell's edge, and an element's surface may extend
            // beyond its centre's cell).
            if best.is_full() {
                let ring_min = (ring as f32 - 1.0) * self.cell - self.max_half_extent;
                if ring_min > best.worst() {
                    break;
                }
            }
            let mut any_cell = false;
            self.for_ring(center, ring, |cell_idx| {
                any_cell = true;
                let slab = &self.cells[cell_idx];
                if slab.is_empty() {
                    return;
                }
                // Batched lower bounds pay off only once there is a
                // k-th best to prune against and the slab is big enough
                // to amortise the kernel pass; otherwise score direct.
                let bounded = best.is_full() && slab.len() >= MIN_KNN_BATCH;
                if bounded {
                    slab.min_dist2_into(p, dists);
                    stats::record_lower_bound_evals(slab.len() as u64);
                }
                for (i, &id) in slab.ids().iter().enumerate() {
                    if dedupe && !visited.mark(id) {
                        continue;
                    }
                    seen += 1;
                    if bounded && best.is_full() {
                        let kth = best.worst();
                        // The stored box contains the element surface,
                        // so lb ≤ exact; a bound beyond the k-th best
                        // cannot improve the result.
                        if dists[i] > kth * kth {
                            continue;
                        }
                    }
                    let d = simspatial_geom::predicates::element_distance(&data[id as usize], p);
                    best.consider(id, d);
                }
            });
            if !any_cell && ring > 0 {
                // Ring fully outside the grid: everything farther is too.
                if best.is_full() {
                    break;
                }
                // Keep expanding only while rings may still clip the grid.
                let beyond = ring > self.dims[0] + self.dims[1] + self.dims[2];
                if beyond {
                    break;
                }
            }
        }
        stats::record_elements_scanned(seen as u64);
    }
}

impl KnnIndex for UniformGrid {
    /// Expanding-shell kNN with batched candidate scoring (see
    /// [`UniformGrid::knn_core`]); the best-k heap, batched distances and
    /// replication-dedupe table all live in the caller's scratch, so repeat
    /// probes allocate nothing.
    fn knn_into(
        &self,
        data: &[Element],
        p: &Point3,
        k: usize,
        scratch: &mut QueryScratch,
        sink: &mut dyn KnnSink,
    ) {
        if k == 0 || self.len == 0 {
            return;
        }
        let QueryScratch {
            dists,
            visited,
            knn_best,
            ..
        } = scratch;
        let mut best = KnnHeap::new(knn_best, k);
        self.knn_core(data, p, dists, visited, &mut best);
        best.emit(sink);
    }
}

#[cfg(any(test, feature = "reference"))]
impl UniformGrid {
    /// The seed implementation's expanding-shell kNN, kept as the reference
    /// for differential tests and the `query_engine` bench: every candidate
    /// in every visited cell is scored with the exact element-surface
    /// distance, one at a time, with no batched lower-bound pass. Selects
    /// under the same ascending `(distance, id)` order as the sink path.
    ///
    /// Compiled only for tests and under the `reference` feature.
    pub fn knn_scalar_reference(
        &self,
        data: &[Element],
        p: &Point3,
        k: usize,
    ) -> Vec<(ElementId, f32)> {
        use crate::util::OrderedF32;
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let center = self.clamp_coord(p);
        let max_ring = self.dims[0].max(self.dims[1]).max(self.dims[2]);
        let mut best: std::collections::BinaryHeap<(OrderedF32, ElementId)> =
            std::collections::BinaryHeap::new();
        let mut seen = 0usize;
        with_scratch(|scratch| {
            let dedupe = self.placement == GridPlacement::Replicate;
            if dedupe {
                scratch.visited.begin(self.id_bound);
            }
            let visited = &mut scratch.visited;
            for ring in 0..=max_ring {
                if best.len() >= k {
                    let kth = best.peek().unwrap().0 .0;
                    let ring_min = (ring as f32 - 1.0) * self.cell - self.max_half_extent;
                    if ring_min > kth {
                        break;
                    }
                }
                let mut any_cell = false;
                self.for_ring(center, ring, |cell_idx| {
                    any_cell = true;
                    for &id in self.cells[cell_idx].ids() {
                        if dedupe && !visited.mark(id) {
                            continue;
                        }
                        seen += 1;
                        let d =
                            simspatial_geom::predicates::element_distance(&data[id as usize], p);
                        let key = (OrderedF32(d), id);
                        if best.len() < k {
                            best.push(key);
                        } else if key < *best.peek().unwrap() {
                            best.pop();
                            best.push(key);
                        }
                    }
                });
                if !any_cell && ring > 0 {
                    if best.len() >= k {
                        break;
                    }
                    if ring > self.dims[0] + self.dims[1] + self.dims[2] {
                        break;
                    }
                }
            }
        });
        stats::record_elements_scanned(seen as u64);
        let mut out: Vec<(ElementId, f32)> = best.into_iter().map(|(d, id)| (id, d.0)).collect();
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

impl UniformGrid {
    /// Visits every in-bounds cell at Chebyshev distance `ring` from `c`.
    fn for_ring(&self, c: [usize; 3], ring: usize, mut f: impl FnMut(usize)) {
        let lo = [
            c[0] as isize - ring as isize,
            c[1] as isize - ring as isize,
            c[2] as isize - ring as isize,
        ];
        let hi = [
            c[0] as isize + ring as isize,
            c[1] as isize + ring as isize,
            c[2] as isize + ring as isize,
        ];
        let in_bounds = |x: isize, d: usize| x >= 0 && x < self.dims[d] as isize;
        for z in lo[2]..=hi[2] {
            if !in_bounds(z, 2) {
                continue;
            }
            for y in lo[1]..=hi[1] {
                if !in_bounds(y, 1) {
                    continue;
                }
                for x in lo[0]..=hi[0] {
                    if !in_bounds(x, 0) {
                        continue;
                    }
                    // Shell only: at least one coordinate on the ring face.
                    let on_face = (z == lo[2] || z == hi[2])
                        || (y == lo[1] || y == hi[1])
                        || (x == lo[0] || x == hi[0]);
                    if ring == 0 || on_face {
                        f(self.cell_index([x as usize, y as usize, z as usize]));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;
    use simspatial_geom::{Shape, Sphere, Vec3};

    fn scattered(n: u32, r: f32) -> Vec<Element> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let x = (h % 997) as f32 / 10.0;
                let y = ((h >> 10) % 997) as f32 / 10.0;
                let z = ((h >> 20) % 997) as f32 / 10.0;
                Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
            })
            .collect()
    }

    fn queries() -> Vec<Aabb> {
        (0..15)
            .map(|i| {
                let c = Point3::new((i * 6) as f32, (i * 5) as f32, (i * 4) as f32);
                Aabb::new(c, Point3::new(c.x + 13.0, c.y + 9.0, c.z + 7.0))
            })
            .collect()
    }

    #[test]
    fn both_placements_match_scan() {
        let data = scattered(3000, 0.6);
        let scan = LinearScan::build(&data);
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let g = UniformGrid::build(&data, GridConfig::with_cell_side(5.0, placement));
            assert_eq!(g.len(), 3000);
            for q in queries() {
                let mut a = g.range(&data, &q);
                let mut b = scan.range(&data, &q);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{placement:?} {q:?}");
            }
        }
    }

    #[test]
    fn batched_path_matches_scalar_reference() {
        let data = scattered(2500, 0.5);
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let g = UniformGrid::build(&data, GridConfig::with_cell_side(4.0, placement));
            for q in queries() {
                let mut a = g.range(&data, &q);
                let mut b = g.range_scalar_reference(&data, &q);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{placement:?} {q:?}");
            }
        }
    }

    #[test]
    fn incremental_build_matches_bulk() {
        let data = scattered(1500, 0.4);
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let config = GridConfig::with_cell_side(5.0, placement);
            let bulk = UniformGrid::build(&data, config);
            let bounds = Aabb::union_all(data.iter().map(Element::aabb));
            let mut inc = UniformGrid::empty_over(bounds, config, data.len());
            for e in &data {
                inc.insert(e);
            }
            assert_eq!(bulk.len(), inc.len());
            for q in queries() {
                let mut a = bulk.range(&data, &q);
                let mut b = inc.range(&data, &q);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{placement:?} {q:?}");
            }
        }
    }

    #[test]
    fn auto_config_matches_scan() {
        let data = scattered(2000, 0.3);
        let g = UniformGrid::build(&data, GridConfig::auto(&data));
        let scan = LinearScan::build(&data);
        for q in queries() {
            let mut a = g.range(&data, &q);
            let mut b = scan.range(&data, &q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn knn_matches_scan() {
        let data = scattered(2500, 0.4);
        let scan = LinearScan::build(&data);
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let g = UniformGrid::build(&data, GridConfig::with_cell_side(4.0, placement));
            for i in 0..8 {
                let p = Point3::new((i * 11) as f32, (i * 9) as f32, (i * 13) as f32);
                let a = g.knn(&data, &p, 6);
                let b = scan.knn(&data, &p, 6);
                assert_eq!(a.len(), 6);
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!((x.1 - y.1).abs() < 1e-4, "{placement:?}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn update_detects_cell_switches() {
        let data = scattered(500, 0.2);
        let mut g = UniformGrid::build(
            &data,
            GridConfig::with_cell_side(10.0, GridPlacement::Center),
        );
        // Tiny move: same cell, no structural update.
        let old = data[0].clone();
        let mut new = old.clone();
        new.translate(Vec3::new(0.001, 0.0, 0.0));
        assert!(!g.update(&old, &new));
        // Large move: must switch cells.
        let mut far = old.clone();
        far.translate(Vec3::new(50.0, 0.0, 0.0));
        assert!(g.update(&old, &far));
        assert_eq!(g.len(), 500);
        // The moved element must now be discoverable at its new position.
        let mut data2: Vec<Element> = data.clone();
        data2[0] = far.clone();
        let hits = g.range(&data2, &far.aabb());
        assert!(hits.contains(&0));
    }

    #[test]
    fn absorbed_update_refreshes_stored_box() {
        // An in-cell move must update the stored bounding box so the
        // batched filter keeps seeing live geometry.
        let data = scattered(200, 0.2);
        let mut g = UniformGrid::build(
            &data,
            GridConfig::with_cell_side(20.0, GridPlacement::Center),
        );
        let mut live = data.clone();
        let old = live[3].clone();
        let mut new = old.clone();
        new.translate(Vec3::new(3.0, 3.0, 3.0)); // big enough to matter, same cell
        let switched = g.update(&old, &new);
        live[3] = new.clone();
        let q = new.aabb();
        let hits = g.range(&live, &q);
        assert!(
            hits.contains(&3),
            "switched={switched}, stale stored box lost the element"
        );
    }

    #[test]
    fn update_batch_matches_sequential_updates() {
        let data = scattered(800, 0.3);
        let moved: Vec<Element> = data
            .iter()
            .map(|e| {
                let mut m = e.clone();
                let h = e.id.wrapping_mul(0x9E3779B9);
                let big = e.id % 11 == 0;
                let s = if big { 12.0 } else { 0.01 };
                m.translate(Vec3::new(
                    (h % 100) as f32 / 100.0 * s,
                    ((h >> 8) % 100) as f32 / 100.0 * s,
                    ((h >> 16) % 100) as f32 / 100.0 * s,
                ));
                m
            })
            .collect();
        let config = GridConfig::with_cell_side(3.0, GridPlacement::Center);
        let mut batched = UniformGrid::build(&data, config);
        let (structural, absorbed) = batched.update_batch(&data, &moved);
        assert_eq!(structural + absorbed, data.len());
        assert!(structural > 0, "some large moves must switch cells");
        assert!(absorbed > 0, "small moves must be absorbed");

        let mut sequential = UniformGrid::build(&data, config);
        let mut seq_structural = 0;
        for (o, n) in data.iter().zip(moved.iter()) {
            if sequential.update(o, n) {
                seq_structural += 1;
            }
        }
        assert_eq!(structural, seq_structural);
        let q = Aabb::new(Point3::new(10.0, 10.0, 10.0), Point3::new(60.0, 60.0, 60.0));
        let mut a = batched.range(&moved, &q);
        let mut b = sequential.range(&moved, &q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn remove_then_query() {
        let data = scattered(300, 0.2);
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let mut g = UniformGrid::build(&data, GridConfig::with_cell_side(8.0, placement));
            assert!(g.remove(7, &data[7]));
            assert!(!g.remove(7, &data[7]), "double remove must fail");
            assert_eq!(g.len(), 299);
            let hits = g.range(&data, &data[7].aabb().inflate(0.1));
            assert!(!hits.contains(&7));
        }
    }

    #[test]
    fn degenerate_single_cell() {
        let data = scattered(50, 0.1);
        let g = UniformGrid::build(
            &data,
            GridConfig::with_cell_side(1e6, GridPlacement::Center),
        );
        assert_eq!(g.dims(), [1, 1, 1]);
        let scan = LinearScan::build(&data);
        let q = queries()[2];
        let mut a = g.range(&data, &q);
        let mut b = scan.range(&data, &q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn cell_cap_coarsens_resolution() {
        let data = scattered(100, 0.1);
        // Absurdly fine request: must be coarsened, not OOM.
        let g = UniformGrid::build(
            &data,
            GridConfig::with_cell_side(1e-5, GridPlacement::Center),
        );
        let total: usize = g.dims().iter().product();
        assert!(total <= super::MAX_CELLS);
        assert!(g.cell_side() > 1e-5);
    }

    #[test]
    fn repeat_queries_reuse_scratch() {
        // Smoke test for the allocation-free repeat path: results stay
        // identical across many repetitions through the shared scratch.
        let data = scattered(1000, 0.4);
        let g = UniformGrid::build(
            &data,
            GridConfig::with_cell_side(4.0, GridPlacement::Replicate),
        );
        let q = queries()[4];
        let first = {
            let mut v = g.range(&data, &q);
            v.sort_unstable();
            v
        };
        for _ in 0..50 {
            let mut v = g.range(&data, &q);
            v.sort_unstable();
            assert_eq!(v, first);
        }
    }

    #[test]
    fn empty_grid() {
        let g = UniformGrid::build(&[], GridConfig::auto(&[]));
        assert!(g.is_empty());
        assert!(g
            .range(&[], &Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)))
            .is_empty());
        assert!(g.knn(&[], &Point3::ORIGIN, 3).is_empty());
    }
}
