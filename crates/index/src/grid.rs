//! The uniform grid — the paper's favoured in-memory direction.
//!
//! §3.3: "One direction to develop novel spatial indexes for main memory may
//! be to use a single uniform grid and therefore to avoid the tree structure
//! needed for access." And §4.3: "using grids will considerably lower the
//! overhead of updates. Clearly the small movement means that only few
//! elements switch grid cell in every step."
//!
//! Two placement policies cover the design axis the paper discusses:
//!
//! * [`GridPlacement::Replicate`] — an element is listed in every cell its
//!   bounding box overlaps (larger index, queries dedupe);
//! * [`GridPlacement::Center`] — an element is listed only in the cell of
//!   its centroid; queries inflate their search region by the largest
//!   element half-extent (the "looser partitions" alternative).
//!
//! Cell resolution is the grid's one knob; [`GridConfig::auto`] implements
//! the analytical model the paper calls for ("the optimal resolution depends
//! on the distribution of location and size of the spatial elements").

use crate::traits::{KnnIndex, SpatialIndex};
use simspatial_geom::{predicates, stats, Aabb, Element, ElementId, Point3};

/// Placement policy for volumetric elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPlacement {
    /// Replicate ids into every overlapped cell.
    Replicate,
    /// Single cell by centroid; queries are inflated by the maximum element
    /// half-extent to stay complete.
    Center,
}

/// Configuration of a [`UniformGrid`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Edge length of the cubic cells.
    pub cell_side: f32,
    /// Placement policy.
    pub placement: GridPlacement,
}

impl GridConfig {
    /// Explicit resolution.
    pub fn with_cell_side(cell_side: f32, placement: GridPlacement) -> Self {
        assert!(cell_side > 0.0 && cell_side.is_finite(), "cell side must be positive");
        Self { cell_side, placement }
    }

    /// The analytical resolution model (§3.3): the cell side is the larger
    /// of (a) the mean element diameter — so replication stays bounded and
    /// center-placement inflation stays tight — and (b) 1.5× the mean
    /// inter-element spacing `(V/n)^⅓` — targeting a small constant number
    /// of elements per occupied cell.
    pub fn auto(elements: &[Element]) -> Self {
        let placement = GridPlacement::Center;
        if elements.is_empty() {
            return Self { cell_side: 1.0, placement };
        }
        let bounds = Aabb::union_all(elements.iter().map(Element::aabb));
        let n = elements.len() as f32;
        let mean_extent = elements
            .iter()
            .map(|e| {
                let ext = e.aabb().extent();
                ext.x.max(ext.y).max(ext.z)
            })
            .sum::<f32>()
            / n;
        let spacing = (bounds.volume().max(f32::MIN_POSITIVE) / n).cbrt();
        let cell_side = (1.5 * spacing).max(mean_extent).max(1e-6);
        Self { cell_side, placement }
    }
}

/// A single-resolution uniform grid over element bounding boxes.
///
/// ```
/// use simspatial_datagen::ElementSoupBuilder;
/// use simspatial_geom::{Aabb, Point3};
/// use simspatial_index::{GridConfig, SpatialIndex, UniformGrid};
///
/// let data = ElementSoupBuilder::new().count(2000).seed(3).build();
/// let grid = UniformGrid::build(data.elements(), GridConfig::auto(data.elements()));
/// let q = Aabb::new(Point3::new(10.0, 10.0, 10.0), Point3::new(30.0, 30.0, 30.0));
/// let hits = grid.range(data.elements(), &q);
/// assert!(!hits.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct UniformGrid {
    origin: Point3,
    cell: f32,
    dims: [usize; 3],
    cells: Vec<Vec<ElementId>>,
    placement: GridPlacement,
    len: usize,
    /// Largest half-extent over indexed elements (query inflation bound for
    /// center placement; also the kNN termination slack).
    max_half_extent: f32,
}

/// Hard cap on total cells, to keep pathological configs from exhausting
/// memory; the resolution is coarsened to fit.
const MAX_CELLS: usize = 1 << 24; // 16.7 M cells

impl UniformGrid {
    /// Builds a grid over `elements` with the given configuration. The grid
    /// region is the tight bounds of the data, slightly padded so boundary
    /// elements land inside.
    pub fn build(elements: &[Element], config: GridConfig) -> Self {
        let bounds = Aabb::union_all(elements.iter().map(Element::aabb));
        let mut grid = Self::empty_over(bounds, config, elements.len());
        for e in elements {
            grid.insert(e);
        }
        grid
    }

    /// Creates an empty grid covering `region` (used by the incremental
    /// update strategies, which insert as the simulation streams in).
    pub fn empty_over(region: Aabb, config: GridConfig, expected: usize) -> Self {
        assert!(config.cell_side > 0.0, "cell side must be positive");
        let (origin, extent) = if region.is_empty() {
            (Point3::ORIGIN, simspatial_geom::Vec3::new(1.0, 1.0, 1.0))
        } else {
            // A hair of padding so boundary coordinates round inward; cell
            // coordinates are clamped anyway, so this only balances the
            // boundary cells.
            let e = region.extent();
            let pad = (e.x.max(e.y).max(e.z) * 1e-4).max(1e-6);
            let padded = region.inflate(pad);
            (padded.min, padded.extent())
        };
        let mut cell = config.cell_side;
        let dims_for = |cell: f32| {
            [
                ((extent.x / cell).ceil() as usize).max(1),
                ((extent.y / cell).ceil() as usize).max(1),
                ((extent.z / cell).ceil() as usize).max(1),
            ]
        };
        let mut dims = dims_for(cell);
        while dims[0].saturating_mul(dims[1]).saturating_mul(dims[2]) > MAX_CELLS {
            cell *= 2.0;
            dims = dims_for(cell);
        }
        let total = dims[0] * dims[1] * dims[2];
        Self {
            origin,
            cell,
            dims,
            cells: vec![Vec::new(); total],
            placement: config.placement,
            len: 0,
            max_half_extent: 0.0,
        }
        .with_capacity_hint(expected)
    }

    fn with_capacity_hint(self, _expected: usize) -> Self {
        self
    }

    /// The realised cell side (may be coarser than requested if the cap hit).
    pub fn cell_side(&self) -> f32 {
        self.cell
    }

    /// Grid dimensions in cells.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// The placement policy in force.
    pub fn placement(&self) -> GridPlacement {
        self.placement
    }

    /// Number of non-empty cells (diagnostics for the resolution model).
    pub fn occupied_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.is_empty()).count()
    }

    #[inline]
    fn clamp_coord(&self, p: &Point3) -> [usize; 3] {
        let rel = *p - self.origin;
        [
            ((rel.x / self.cell) as isize).clamp(0, self.dims[0] as isize - 1) as usize,
            ((rel.y / self.cell) as isize).clamp(0, self.dims[1] as isize - 1) as usize,
            ((rel.z / self.cell) as isize).clamp(0, self.dims[2] as isize - 1) as usize,
        ]
    }

    #[inline]
    fn cell_index(&self, c: [usize; 3]) -> usize {
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// The cell coordinate an element centre maps to.
    pub fn cell_of(&self, p: &Point3) -> [usize; 3] {
        self.clamp_coord(p)
    }

    /// Range of cell coordinates overlapped by a box.
    fn cell_range(&self, b: &Aabb) -> ([usize; 3], [usize; 3]) {
        (self.clamp_coord(&b.min), self.clamp_coord(&b.max))
    }

    /// Inserts an element under the configured placement.
    pub fn insert(&mut self, e: &Element) {
        let bbox = e.aabb();
        let ext = bbox.extent();
        self.max_half_extent = self
            .max_half_extent
            .max(ext.x.max(ext.y).max(ext.z) * 0.5);
        match self.placement {
            GridPlacement::Center => {
                let c = self.clamp_coord(&e.center());
                let idx = self.cell_index(c);
                self.cells[idx].push(e.id);
            }
            GridPlacement::Replicate => {
                let (lo, hi) = self.cell_range(&bbox);
                for z in lo[2]..=hi[2] {
                    for y in lo[1]..=hi[1] {
                        for x in lo[0]..=hi[0] {
                            let idx = self.cell_index([x, y, z]);
                            self.cells[idx].push(e.id);
                        }
                    }
                }
            }
        }
        self.len += 1;
    }

    /// Removes an element, given the geometry it was inserted with.
    /// Returns `true` if found.
    pub fn remove(&mut self, id: ElementId, old: &Element) -> bool {
        let mut found = false;
        match self.placement {
            GridPlacement::Center => {
                let c = self.clamp_coord(&old.center());
                let idx = self.cell_index(c);
                if let Some(pos) = self.cells[idx].iter().position(|&e| e == id) {
                    self.cells[idx].swap_remove(pos);
                    found = true;
                }
            }
            GridPlacement::Replicate => {
                let (lo, hi) = self.cell_range(&old.aabb());
                for z in lo[2]..=hi[2] {
                    for y in lo[1]..=hi[1] {
                        for x in lo[0]..=hi[0] {
                            let idx = self.cell_index([x, y, z]);
                            if let Some(pos) = self.cells[idx].iter().position(|&e| e == id) {
                                self.cells[idx].swap_remove(pos);
                                found = true;
                            }
                        }
                    }
                }
            }
        }
        if found {
            self.len -= 1;
        }
        found
    }

    /// Moves an element from its old to its new geometry. With center
    /// placement and small displacements this is almost always a no-op —
    /// the §4.3 argument for grids under massive minimal movement. Returns
    /// `true` when the element actually changed cells.
    pub fn update(&mut self, old: &Element, new: &Element) -> bool {
        debug_assert_eq!(old.id, new.id);
        match self.placement {
            GridPlacement::Center => {
                let co = self.clamp_coord(&old.center());
                let cn = self.clamp_coord(&new.center());
                if co == cn {
                    return false;
                }
                let io = self.cell_index(co);
                if let Some(pos) = self.cells[io].iter().position(|&e| e == old.id) {
                    self.cells[io].swap_remove(pos);
                    let ic = self.cell_index(cn);
                    self.cells[ic].push(new.id);
                    true
                } else {
                    false
                }
            }
            GridPlacement::Replicate => {
                let (olo, ohi) = self.cell_range(&old.aabb());
                let (nlo, nhi) = self.cell_range(&new.aabb());
                if (olo, ohi) == (nlo, nhi) {
                    return false;
                }
                self.remove(old.id, old);
                self.insert(new);
                self.len -= 1; // insert bumped it; the element is not new
                true
            }
        }
    }

    /// Candidate ids whose cells overlap `query` (deduplicated under
    /// replication), **without** any element tests — the raw filter output.
    /// Under center placement the probe is inflated by the recorded maximum
    /// half-extent, so the candidate set is complete for the geometries the
    /// grid was built over. Used by structures that layer their own
    /// refinement on top (FLAT's seed phase, the join algorithms).
    pub fn range_bbox_candidates(&self, query: &Aabb) -> Vec<ElementId> {
        self.candidates(query)
    }

    fn candidates(&self, query: &Aabb) -> Vec<ElementId> {
        let probe = match self.placement {
            GridPlacement::Center => query.inflate(self.max_half_extent),
            GridPlacement::Replicate => *query,
        };
        let (lo, hi) = self.cell_range(&probe);
        let mut out = Vec::new();
        for z in lo[2]..=hi[2] {
            for y in lo[1]..=hi[1] {
                for x in lo[0]..=hi[0] {
                    let idx = self.cell_index([x, y, z]);
                    out.extend_from_slice(&self.cells[idx]);
                }
            }
        }
        stats::record_elements_scanned(out.len() as u64);
        if self.placement == GridPlacement::Replicate {
            out.sort_unstable();
            out.dedup();
        }
        out
    }
}

impl SpatialIndex for UniformGrid {
    fn name(&self) -> &'static str {
        "Grid"
    }

    fn len(&self) -> usize {
        self.len
    }

    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        self.candidates(query)
            .into_iter()
            .filter(|&id| predicates::element_in_range(&data[id as usize], query))
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>()
            + self.cells.capacity() * std::mem::size_of::<Vec<ElementId>>();
        for c in &self.cells {
            total += c.capacity() * std::mem::size_of::<ElementId>();
        }
        total
    }
}

impl KnnIndex for UniformGrid {
    /// Expanding-shell kNN: visit cells outward in Chebyshev rings from the
    /// query point's cell; stop once the k-th best distance cannot be beaten
    /// by any unvisited ring.
    fn knn(&self, data: &[Element], p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let center = self.clamp_coord(p);
        let max_ring = self.dims[0].max(self.dims[1]).max(self.dims[2]);
        // (distance, id) max-heap of the current best k. Under replication
        // an element appears in several cells; `visited` keeps it from being
        // scored (and returned) twice.
        let mut best: std::collections::BinaryHeap<(OrderedF32, ElementId)> =
            std::collections::BinaryHeap::new();
        let mut visited = std::collections::HashSet::new();
        let mut seen = 0usize;
        for ring in 0..=max_ring {
            // Termination: the closest possible element in ring r is at
            // least (r-1)·cell − max_half_extent away (the point may sit at
            // its cell's edge, and an element's surface may extend beyond
            // its centre's cell).
            if best.len() >= k {
                let kth = best.peek().unwrap().0 .0;
                let ring_min = (ring as f32 - 1.0) * self.cell - self.max_half_extent;
                if ring_min > kth {
                    break;
                }
            }
            let mut any_cell = false;
            self.for_ring(center, ring, |cell_idx| {
                any_cell = true;
                for &id in &self.cells[cell_idx] {
                    if self.placement == GridPlacement::Replicate && !visited.insert(id) {
                        continue;
                    }
                    seen += 1;
                    let d = predicates::element_distance(&data[id as usize], p);
                    if best.len() < k {
                        best.push((OrderedF32(d), id));
                    } else if d < best.peek().unwrap().0 .0 {
                        best.pop();
                        best.push((OrderedF32(d), id));
                    }
                }
            });
            if !any_cell && ring > 0 {
                // Ring fully outside the grid: everything farther is too.
                if best.len() >= k {
                    break;
                }
                // Keep expanding only while rings may still clip the grid.
                let beyond = ring > self.dims[0] + self.dims[1] + self.dims[2];
                if beyond {
                    break;
                }
            }
        }
        stats::record_elements_scanned(seen as u64);
        let mut out: Vec<(ElementId, f32)> =
            best.into_iter().map(|(d, id)| (id, d.0)).collect();
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

impl UniformGrid {
    /// Visits every in-bounds cell at Chebyshev distance `ring` from `c`.
    fn for_ring(&self, c: [usize; 3], ring: usize, mut f: impl FnMut(usize)) {
        let lo = [
            c[0] as isize - ring as isize,
            c[1] as isize - ring as isize,
            c[2] as isize - ring as isize,
        ];
        let hi = [
            c[0] as isize + ring as isize,
            c[1] as isize + ring as isize,
            c[2] as isize + ring as isize,
        ];
        let in_bounds = |x: isize, d: usize| x >= 0 && x < self.dims[d] as isize;
        for z in lo[2]..=hi[2] {
            if !in_bounds(z, 2) {
                continue;
            }
            for y in lo[1]..=hi[1] {
                if !in_bounds(y, 1) {
                    continue;
                }
                for x in lo[0]..=hi[0] {
                    if !in_bounds(x, 0) {
                        continue;
                    }
                    // Shell only: at least one coordinate on the ring face.
                    let on_face = (z == lo[2] || z == hi[2])
                        || (y == lo[1] || y == hi[1])
                        || (x == lo[0] || x == hi[0]);
                    if ring == 0 || on_face {
                        f(self.cell_index([x as usize, y as usize, z as usize]));
                    }
                }
            }
        }
    }
}

/// `f32` wrapper ordered by `total_cmp`, for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF32(f32);

impl Eq for OrderedF32 {}
impl PartialOrd for OrderedF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;
    use simspatial_geom::{Shape, Sphere, Vec3};

    fn scattered(n: u32, r: f32) -> Vec<Element> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let x = (h % 997) as f32 / 10.0;
                let y = ((h >> 10) % 997) as f32 / 10.0;
                let z = ((h >> 20) % 997) as f32 / 10.0;
                Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), r)))
            })
            .collect()
    }

    fn queries() -> Vec<Aabb> {
        (0..15)
            .map(|i| {
                let c = Point3::new((i * 6) as f32, (i * 5) as f32, (i * 4) as f32);
                Aabb::new(c, Point3::new(c.x + 13.0, c.y + 9.0, c.z + 7.0))
            })
            .collect()
    }

    #[test]
    fn both_placements_match_scan() {
        let data = scattered(3000, 0.6);
        let scan = LinearScan::build(&data);
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let g = UniformGrid::build(&data, GridConfig::with_cell_side(5.0, placement));
            assert_eq!(g.len(), 3000);
            for q in queries() {
                let mut a = g.range(&data, &q);
                let mut b = scan.range(&data, &q);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{placement:?} {q:?}");
            }
        }
    }

    #[test]
    fn auto_config_matches_scan() {
        let data = scattered(2000, 0.3);
        let g = UniformGrid::build(&data, GridConfig::auto(&data));
        let scan = LinearScan::build(&data);
        for q in queries() {
            let mut a = g.range(&data, &q);
            let mut b = scan.range(&data, &q);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn knn_matches_scan() {
        let data = scattered(2500, 0.4);
        let scan = LinearScan::build(&data);
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let g = UniformGrid::build(&data, GridConfig::with_cell_side(4.0, placement));
            for i in 0..8 {
                let p = Point3::new((i * 11) as f32, (i * 9) as f32, (i * 13) as f32);
                let a = g.knn(&data, &p, 6);
                let b = scan.knn(&data, &p, 6);
                assert_eq!(a.len(), 6);
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!((x.1 - y.1).abs() < 1e-4, "{placement:?}: {a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn update_detects_cell_switches() {
        let data = scattered(500, 0.2);
        let mut g = UniformGrid::build(&data, GridConfig::with_cell_side(10.0, GridPlacement::Center));
        // Tiny move: same cell, no structural update.
        let old = data[0].clone();
        let mut new = old.clone();
        new.translate(Vec3::new(0.001, 0.0, 0.0));
        assert!(!g.update(&old, &new));
        // Large move: must switch cells.
        let mut far = old.clone();
        far.translate(Vec3::new(50.0, 0.0, 0.0));
        assert!(g.update(&old, &far));
        assert_eq!(g.len(), 500);
        // The moved element must now be discoverable at its new position.
        let mut data2: Vec<Element> = data.clone();
        data2[0] = far.clone();
        let hits = g.range(&data2, &far.aabb());
        assert!(hits.contains(&0));
    }

    #[test]
    fn remove_then_query() {
        let data = scattered(300, 0.2);
        for placement in [GridPlacement::Center, GridPlacement::Replicate] {
            let mut g = UniformGrid::build(&data, GridConfig::with_cell_side(8.0, placement));
            assert!(g.remove(7, &data[7]));
            assert!(!g.remove(7, &data[7]), "double remove must fail");
            assert_eq!(g.len(), 299);
            let hits = g.range(&data, &data[7].aabb().inflate(0.1));
            assert!(!hits.contains(&7));
        }
    }

    #[test]
    fn degenerate_single_cell() {
        let data = scattered(50, 0.1);
        let g = UniformGrid::build(&data, GridConfig::with_cell_side(1e6, GridPlacement::Center));
        assert_eq!(g.dims(), [1, 1, 1]);
        let scan = LinearScan::build(&data);
        let q = queries()[2];
        let mut a = g.range(&data, &q);
        let mut b = scan.range(&data, &q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn cell_cap_coarsens_resolution() {
        let data = scattered(100, 0.1);
        // Absurdly fine request: must be coarsened, not OOM.
        let g = UniformGrid::build(&data, GridConfig::with_cell_side(1e-5, GridPlacement::Center));
        let total: usize = g.dims().iter().product();
        assert!(total <= super::MAX_CELLS);
        assert!(g.cell_side() > 1e-5);
    }

    #[test]
    fn empty_grid() {
        let g = UniformGrid::build(&[], GridConfig::auto(&[]));
        assert!(g.is_empty());
        assert!(g
            .range(&[], &Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)))
            .is_empty());
        assert!(g.knn(&[], &Point3::ORIGIN, 3).is_empty());
    }
}
