//! Common index traits and query instrumentation.
//!
//! The query contract is **batch-first and sink-based**: the required
//! method of [`SpatialIndex`] is [`SpatialIndex::range_into`], which emits
//! result ids into a caller-supplied [`RangeSink`] using caller-supplied
//! [`QueryScratch`] buffers — no allocation per call. Batches go through
//! [`SpatialIndex::range_batch`] (indexes with genuinely batched plans,
//! like the linear scan's one-pass envelope plan, override it). The
//! allocating [`SpatialIndex::range`] remains as a thin compatibility
//! wrapper. See [`crate::engine::QueryEngine`] for the harness that owns
//! scratch, wall-clock and predicate-counter accounting.

use simspatial_geom::scratch::with_scratch;
use simspatial_geom::{stats, Aabb, Element, ElementId, Point3, QueryScratch};

/// A consumer of range-query results.
///
/// Results of one query arrive as a [`RangeSink::begin_query`] call
/// followed by zero or more [`RangeSink::push`] calls; batches announce
/// queries in ascending order. Sinks are how the batch execution layer
/// stays allocation-free: counting, collecting, streaming to a network
/// socket and feeding a join are all just different sinks over the same
/// index plans.
pub trait RangeSink {
    /// Marks the start of results for query `qi` of the batch. Single-query
    /// entry points call this with `qi = 0` exactly once.
    fn begin_query(&mut self, qi: u32) {
        let _ = qi;
    }

    /// Emits one result id for the current query.
    fn push(&mut self, id: ElementId);
}

/// Collecting sink: appends every result, ignoring query boundaries.
impl RangeSink for Vec<ElementId> {
    #[inline]
    fn push(&mut self, id: ElementId) {
        self.push(id);
    }
}

/// A spatial index over a dataset of [`Element`]s.
///
/// Indexes never own the element data: queries receive the live slice so
/// exact refinement always sees current geometry, and so that structures in
/// the FLAT/DLS family — which *depend* on the dataset for execution (§4.3
/// of the paper) — fit the same interface as classic indexes.
///
/// Implementations must emit exactly the ids of elements whose exact
/// geometry intersects the query box (filter + refine), in unspecified
/// order and without duplicates — except where a structure is documented as
/// approximate ([`crate::Lsh`]).
pub trait SpatialIndex {
    /// Short, stable name used by the benchmark harness ("R-Tree", "Grid", …).
    fn name(&self) -> &'static str;

    /// Number of indexed elements.
    fn len(&self) -> usize;

    /// True when no elements are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Emits into `sink` the ids of all elements whose exact geometry
    /// intersects `query` — the core query path every index implements.
    ///
    /// `scratch` provides every transient buffer (candidate lists,
    /// traversal stacks, dedupe tables); implementations clear the buffers
    /// they use on entry, so a caller may reuse one scratch across an
    /// entire batch without resetting between queries. Implementations do
    /// **not** call [`RangeSink::begin_query`]; batch drivers do.
    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn RangeSink,
    );

    /// Executes a whole batch of range queries, announcing each query to
    /// the sink via [`RangeSink::begin_query`] in ascending order.
    ///
    /// The default loops [`SpatialIndex::range_into`]; indexes with
    /// genuinely batched plans (e.g. [`crate::LinearScan`]'s single-pass
    /// envelope plan) override it.
    fn range_batch(
        &self,
        data: &[Element],
        queries: &[Aabb],
        scratch: &mut QueryScratch,
        sink: &mut dyn RangeSink,
    ) {
        for (qi, q) in queries.iter().enumerate() {
            sink.begin_query(qi as u32);
            self.range_into(data, q, scratch, sink);
        }
    }

    /// Allocating convenience wrapper over [`SpatialIndex::range_into`],
    /// kept for compatibility and one-off queries. Uses the thread-local
    /// scratch pool, so repeat calls reuse buffers.
    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId> {
        with_scratch(|scratch| {
            let mut out = Vec::new();
            self.range_into(data, query, scratch, &mut out);
            out
        })
    }

    /// Approximate bytes of memory the index structure occupies (excluding
    /// the element data itself). Used for the index-size comparisons the
    /// paper makes about replication-based schemes.
    fn memory_bytes(&self) -> usize;
}

/// A consumer of k-nearest-neighbour results — the kNN mirror of
/// [`RangeSink`].
///
/// Results of one probe arrive as a [`KnnSink::begin_query`] call followed
/// by the probe's results in ascending `(distance, id)` order; batches
/// announce probes in ascending order. Collecting, counting and
/// shard-merging are all just different sinks over the same index plans.
pub trait KnnSink {
    /// Marks the start of results for probe `qi` of the batch. Single-probe
    /// entry points call this with `qi = 0` exactly once.
    fn begin_query(&mut self, qi: u32) {
        let _ = qi;
    }

    /// Emits one result for the current probe: `id` at exact element-surface
    /// distance `dist`. Within a probe, pushes arrive nearest first.
    fn push(&mut self, id: ElementId, dist: f32);
}

/// Collecting sink: appends every result, ignoring probe boundaries.
impl KnnSink for Vec<(ElementId, f32)> {
    #[inline]
    fn push(&mut self, id: ElementId, dist: f32) {
        self.push((id, dist));
    }
}

/// A structure that answers k-nearest-neighbour queries.
///
/// Deliberately *not* a subtrait of [`SpatialIndex`]: §3.3 of the paper
/// proposes LSH precisely because kNN and range workloads may want different
/// structures, and LSH has no meaningful range interface.
///
/// The contract is **batch-first and sink-based**, mirroring
/// [`SpatialIndex`]: the required method is [`KnnIndex::knn_into`], which
/// emits the `k` nearest elements into a caller-supplied [`KnnSink`] using
/// caller-supplied [`QueryScratch`] buffers (best-k heap storage, traversal
/// queues, batched lower-bound distances) — no allocation per probe once
/// the buffers have grown. Results are selected and emitted under the total
/// order *ascending `(distance, id)`*, which makes ties deterministic and
/// shard merges byte-identical to single-engine execution.
pub trait KnnIndex {
    /// Emits into `sink` the `k` elements nearest to `p` by exact
    /// element-surface distance, nearest first (ties broken by ascending
    /// id). Emits fewer than `k` results only when the dataset is smaller
    /// than `k`. Implementations do **not** call [`KnnSink::begin_query`];
    /// batch drivers do.
    fn knn_into(
        &self,
        data: &[Element],
        p: &Point3,
        k: usize,
        scratch: &mut QueryScratch,
        sink: &mut dyn KnnSink,
    );

    /// Executes a whole batch of kNN probes, announcing each probe to the
    /// sink via [`KnnSink::begin_query`] in ascending order. The default
    /// loops [`KnnIndex::knn_into`] over one shared scratch, so heaps and
    /// candidate buffers are reused across probes.
    fn knn_batch_into(
        &self,
        data: &[Element],
        points: &[Point3],
        k: usize,
        scratch: &mut QueryScratch,
        sink: &mut dyn KnnSink,
    ) {
        for (qi, p) in points.iter().enumerate() {
            sink.begin_query(qi as u32);
            self.knn_into(data, p, k, scratch, sink);
        }
    }

    /// Allocating convenience wrapper over [`KnnIndex::knn_into`], kept for
    /// compatibility and one-off probes. Uses the thread-local scratch pool,
    /// so repeat calls reuse buffers.
    fn knn(&self, data: &[Element], p: &Point3, k: usize) -> Vec<(ElementId, f32)> {
        with_scratch(|scratch| {
            let mut out = Vec::new();
            self.knn_into(data, p, k, scratch, &mut out);
            out
        })
    }
}

impl<T: SpatialIndex + ?Sized> SpatialIndex for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn range_into(
        &self,
        data: &[Element],
        query: &Aabb,
        scratch: &mut QueryScratch,
        sink: &mut dyn RangeSink,
    ) {
        (**self).range_into(data, query, scratch, sink);
    }

    fn range_batch(
        &self,
        data: &[Element],
        queries: &[Aabb],
        scratch: &mut QueryScratch,
        sink: &mut dyn RangeSink,
    ) {
        (**self).range_batch(data, queries, scratch, sink);
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

impl<T: KnnIndex + ?Sized> KnnIndex for Box<T> {
    fn knn_into(
        &self,
        data: &[Element],
        p: &Point3,
        k: usize,
        scratch: &mut QueryScratch,
        sink: &mut dyn KnnSink,
    ) {
        (**self).knn_into(data, p, k, scratch, sink);
    }

    fn knn_batch_into(
        &self,
        data: &[Element],
        points: &[Point3],
        k: usize,
        scratch: &mut QueryScratch,
        sink: &mut dyn KnnSink,
    ) {
        (**self).knn_batch_into(data, points, k, scratch, sink);
    }
}

/// Instrumented result of executing a query batch: wall-clock plus the
/// predicate-counter deltas the paper's Figure 3 breakdown needs.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Wall-clock seconds spent executing the batch.
    pub elapsed_s: f64,
    /// Total results returned.
    pub results: u64,
    /// Predicate counters accumulated during the batch.
    pub counts: stats::PredicateCounts,
}

impl QueryStats {
    /// Tree-level share of all intersection tests, in `\[0, 1\]`.
    pub fn tree_test_share(&self) -> f64 {
        let total = self.counts.total_tests();
        if total == 0 {
            0.0
        } else {
            self.counts.tree_tests as f64 / total as f64
        }
    }
}

/// Instrumented result of applying one coalesced write batch — the update
/// mirror of [`QueryStats`], shared by every write path (sharded update
/// lanes, engine-backend updaters, the service's update dispatches).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Wall-clock seconds spent applying the batch.
    pub elapsed_s: f64,
    /// Element updates applied (after last-write-wins coalescing of
    /// duplicate ids within the batch).
    pub applied: u64,
    /// Elements whose placement in the structure changed: shard migrations
    /// for the sharded engine, structural modifications (cell switches,
    /// reinserted entries, rebuild-touched elements) for strategy-backed
    /// single engines.
    pub migrations: u64,
    /// Updates not applied: ids outside the dataset, plus duplicates
    /// superseded by a later update to the same id in the same batch.
    pub skipped: u64,
    /// Write operations shipped to the storage layer after routing:
    /// per-shard lane entries (updates + migrations in/out) for the
    /// sharded engine, batch entries for a single engine. `shipped /
    /// applied` is the write-amplification factor replication introduces.
    pub shipped: u64,
    /// Structural index work performed while applying the batch: grid cell
    /// switches, R-Tree reinsertions/repairs, and — for shards or
    /// strategies that fell back to a rebuild — every element the rebuild
    /// touched. The denominator of "how much index did K updates dirty".
    pub structural: u64,
    /// Updates absorbed with **no** structural work (same grid cell, inside
    /// a buffered batch or grace window) — the incremental write path's
    /// best case.
    pub absorbed: u64,
    /// Full index (re)builds performed while applying the batch (one per
    /// shard lane in rebuild mode; strategy-internal rebuilds count too).
    pub rebuilds: u64,
    /// Shard lanes applied incrementally that rebuild mode would have
    /// rebuilt — the rebuilds the incremental write path saved.
    pub rebuilds_avoided: u64,
    /// Elements newly inserted into the dataset (planner-allocated ids).
    pub inserted: u64,
    /// Elements removed from the dataset (tombstoned ids).
    pub removed: u64,
    /// Envelope-table entries rewritten while routing the batch. Resident
    /// updates whose new envelope routes to the same shard set skip the
    /// write-back (the stale envelope routes identically), so under a
    /// jitter workload this stays at 0 — the work bound
    /// `tests/incremental_differential.rs` asserts.
    pub envelope_writebacks: u64,
}

impl UpdateStats {
    /// Accumulates another batch's accounting into `self`.
    pub fn add(&mut self, other: &UpdateStats) {
        self.elapsed_s += other.elapsed_s;
        self.applied += other.applied;
        self.migrations += other.migrations;
        self.skipped += other.skipped;
        self.shipped += other.shipped;
        self.structural += other.structural;
        self.absorbed += other.absorbed;
        self.rebuilds += other.rebuilds;
        self.rebuilds_avoided += other.rebuilds_avoided;
        self.inserted += other.inserted;
        self.removed += other.removed;
        self.envelope_writebacks += other.envelope_writebacks;
    }
}

/// Runs a batch of range queries against `index`, collecting wall-clock and
/// predicate-counter deltas. The thread-local counters are reset first.
///
/// Drives the index's **batched plan** ([`SpatialIndex::range_batch`]), so
/// structures with a genuinely batched override — notably
/// [`crate::LinearScan`]'s one-pass envelope plan — are measured on that
/// plan, not on repeated single queries (timings and predicate counts
/// reflect the batch execution the engine would perform in production).
///
/// Compatibility shim over [`crate::engine::QueryEngine`]; new code should
/// hold an engine and reuse its scratch across batches.
pub fn measure_range<I: SpatialIndex + ?Sized>(
    index: &I,
    data: &[Element],
    queries: &[Aabb],
) -> QueryStats {
    stats::reset();
    crate::engine::QueryEngine::new().range_count(index, data, queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;
    use simspatial_geom::{Point3, Shape, Sphere};

    fn tiny_data() -> Vec<Element> {
        (0..10)
            .map(|i| {
                Element::new(
                    i,
                    Shape::Sphere(Sphere::new(Point3::new(i as f32, 0.0, 0.0), 0.25)),
                )
            })
            .collect()
    }

    #[test]
    fn measure_range_counts_results_and_tests() {
        let data = tiny_data();
        let idx = LinearScan::build(&data);
        let q = Aabb::new(Point3::new(-0.5, -1.0, -1.0), Point3::new(2.5, 1.0, 1.0));
        let s = measure_range(&idx, &data, &[q]);
        assert_eq!(s.results, 3); // spheres at 0, 1, 2
        assert!(s.counts.element_tests >= 10, "scan must test every element");
        assert_eq!(s.counts.tree_tests, 0, "a scan has no tree");
        assert_eq!(s.tree_test_share(), 0.0);
    }

    #[test]
    fn empty_batch() {
        let data = tiny_data();
        let idx = LinearScan::build(&data);
        let s = measure_range(&idx, &data, &[]);
        assert_eq!(s.results, 0);
        assert_eq!(s.counts.total_tests(), 0);
    }

    #[test]
    fn range_wrapper_equals_sink_path() {
        let data = tiny_data();
        let idx = LinearScan::build(&data);
        let q = Aabb::new(Point3::new(1.5, -1.0, -1.0), Point3::new(6.5, 1.0, 1.0));
        let legacy = idx.range(&data, &q);
        let mut scratch = QueryScratch::default();
        let mut sunk = Vec::new();
        idx.range_into(&data, &q, &mut scratch, &mut sunk);
        assert_eq!(legacy, sunk);
    }
}
