//! Common index traits and query instrumentation.

use simspatial_geom::{stats, Aabb, Element, ElementId, Point3};
use std::time::Instant;

/// A spatial index over a dataset of [`Element`]s.
///
/// Indexes never own the element data: queries receive the live slice so
/// exact refinement always sees current geometry, and so that structures in
/// the FLAT/DLS family — which *depend* on the dataset for execution (§4.3
/// of the paper) — fit the same interface as classic indexes.
///
/// Implementations must return exactly the ids of elements whose exact
/// geometry intersects the query box (filter + refine), in unspecified
/// order and without duplicates — except where a structure is documented as
/// approximate ([`crate::Lsh`]).
pub trait SpatialIndex {
    /// Short, stable name used by the benchmark harness ("R-Tree", "Grid", …).
    fn name(&self) -> &'static str;

    /// Number of indexed elements.
    fn len(&self) -> usize;

    /// True when no elements are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All element ids whose exact geometry intersects `query`.
    fn range(&self, data: &[Element], query: &Aabb) -> Vec<ElementId>;

    /// Approximate bytes of memory the index structure occupies (excluding
    /// the element data itself). Used for the index-size comparisons the
    /// paper makes about replication-based schemes.
    fn memory_bytes(&self) -> usize;
}

/// A structure that answers k-nearest-neighbour queries.
///
/// Deliberately *not* a subtrait of [`SpatialIndex`]: §3.3 of the paper
/// proposes LSH precisely because kNN and range workloads may want different
/// structures, and LSH has no meaningful range interface.
pub trait KnnIndex {
    /// The `k` elements nearest to `p` by exact element-surface distance,
    /// ordered nearest first, as `(id, distance)` pairs. Returns fewer than
    /// `k` entries only when the dataset is smaller than `k`.
    fn knn(&self, data: &[Element], p: &Point3, k: usize) -> Vec<(ElementId, f32)>;
}

/// Instrumented result of executing a query batch: wall-clock plus the
/// predicate-counter deltas the paper's Figure 3 breakdown needs.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Wall-clock seconds spent executing the batch.
    pub elapsed_s: f64,
    /// Total results returned.
    pub results: u64,
    /// Predicate counters accumulated during the batch.
    pub counts: stats::PredicateCounts,
}

impl QueryStats {
    /// Tree-level share of all intersection tests, in `\[0, 1\]`.
    pub fn tree_test_share(&self) -> f64 {
        let total = self.counts.total_tests();
        if total == 0 {
            0.0
        } else {
            self.counts.tree_tests as f64 / total as f64
        }
    }
}

/// Runs a batch of range queries against `index`, collecting wall-clock and
/// predicate-counter deltas. The thread-local counters are reset first.
pub fn measure_range<I: SpatialIndex + ?Sized>(
    index: &I,
    data: &[Element],
    queries: &[Aabb],
) -> QueryStats {
    stats::reset();
    let before = stats::snapshot();
    let start = Instant::now();
    let mut results = 0u64;
    for q in queries {
        results += index.range(data, q).len() as u64;
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    QueryStats {
        elapsed_s,
        results,
        counts: stats::snapshot().since(&before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;
    use simspatial_geom::{Point3, Shape, Sphere};

    fn tiny_data() -> Vec<Element> {
        (0..10)
            .map(|i| {
                Element::new(
                    i,
                    Shape::Sphere(Sphere::new(Point3::new(i as f32, 0.0, 0.0), 0.25)),
                )
            })
            .collect()
    }

    #[test]
    fn measure_range_counts_results_and_tests() {
        let data = tiny_data();
        let idx = LinearScan::build(&data);
        let q = Aabb::new(Point3::new(-0.5, -1.0, -1.0), Point3::new(2.5, 1.0, 1.0));
        let s = measure_range(&idx, &data, &[q]);
        assert_eq!(s.results, 3); // spheres at 0, 1, 2
        assert!(s.counts.element_tests >= 10, "scan must test every element");
        assert_eq!(s.counts.tree_tests, 0, "a scan has no tree");
        assert_eq!(s.tree_test_share(), 0.0);
    }

    #[test]
    fn empty_batch() {
        let data = tiny_data();
        let idx = LinearScan::build(&data);
        let s = measure_range(&idx, &data, &[]);
        assert_eq!(s.results, 0);
        assert_eq!(s.counts.total_tests(), 0);
    }
}
