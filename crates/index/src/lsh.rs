//! Locality-sensitive hashing for low-dimensional kNN (§3.3).
//!
//! "A possible approach for kNN queries could be to use locality sensitive
//! hashing (LSH, e.g., \[3\]). ... Crucially, LSH avoids a tree structure to
//! organize the data and instead uses several (spatial) hash functions to
//! index each spatial element."
//!
//! This is the p-stable-distribution scheme of Datar et al. specialised to
//! 3-D: each of `L` tables hashes an element centroid through `m` functions
//! `h(p) = ⌊(a·p + b) / w⌋` with Gaussian `a`, and the concatenated integer
//! vector keys a bucket. Queries probe their own bucket in every table plus
//! single-step perturbations (multiprobe), refine candidates by exact
//! element distance, and — since LSH is approximate by nature — fall back
//! to a linear scan only when fewer than `k` candidates surfaced, keeping
//! the API total.
//!
//! **Approximation contract:** `knn` returns `k` elements that are near but
//! not guaranteed nearest; recall is a measured quantity (experiment E8).

use crate::traits::{KnnIndex, KnnSink};
use crate::util::KnnHeap;
use simspatial_geom::{
    predicates, stats, Aabb, Element, ElementId, Point3, QueryScratch, SoaAabbs, Vec3,
};
use std::collections::HashMap;

/// Configuration of an [`Lsh`] index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshConfig {
    /// Number of hash tables `L` (more tables ⇒ higher recall, more memory).
    pub tables: usize,
    /// Hash functions concatenated per table key `m`.
    pub hashes_per_table: usize,
    /// Bucket width `w`, in dataset units.
    pub width: f32,
    /// RNG seed for the hash functions.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            tables: 8,
            hashes_per_table: 3,
            width: 4.0,
            seed: 0x15_4A11,
        }
    }
}

impl LshConfig {
    /// Derives a width from the data: several times the mean inter-element
    /// spacing, so a bucket holds a neighbourhood rather than a point.
    pub fn auto(elements: &[Element]) -> Self {
        let mut cfg = Self::default();
        if elements.is_empty() {
            return cfg;
        }
        let bounds = Aabb::union_all(elements.iter().map(Element::aabb));
        let spacing = (bounds.volume().max(f32::MIN_POSITIVE) / elements.len() as f32).cbrt();
        cfg.width = (2.5 * spacing).max(1e-6);
        cfg
    }

    fn validate(&self) {
        assert!(self.tables >= 1, "need at least one table");
        assert!(
            (1..=8).contains(&self.hashes_per_table),
            "1..=8 hashes per table"
        );
        assert!(self.width > 0.0, "width must be positive");
    }
}

/// One hash function `h(p) = ⌊(a·p + b)/w⌋`.
#[derive(Debug, Clone, Copy)]
struct HashFn {
    a: Vec3,
    b: f32,
}

impl HashFn {
    #[inline]
    fn eval(&self, p: &Point3, w: f32) -> i32 {
        let v = self.a.x * p.x + self.a.y * p.y + self.a.z * p.z + self.b;
        (v / w).floor() as i32
    }
}

/// A multi-table LSH index over element centroids.
#[derive(Debug, Clone)]
pub struct Lsh {
    config: LshConfig,
    /// `tables × hashes_per_table` functions.
    fns: Vec<Vec<HashFn>>,
    /// One bucket map per table, keyed by the mixed integer hash vector.
    tables: Vec<HashMap<u64, Vec<ElementId>>>,
    /// Build-time element bounding boxes in id order: the SoA store the
    /// batched candidate-scoring kernel streams over.
    boxes: SoaAabbs,
    len: usize,
}

impl Lsh {
    /// Builds the index over element centroids.
    pub fn build(elements: &[Element], config: LshConfig) -> Self {
        config.validate();
        let mut state = config.seed | 1;
        let mut next = move || {
            // xorshift64*: deterministic, dependency-free Gaussian-ish via CLT.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut gauss = move || {
            // Sum of 12 uniforms − 6: mean 0, variance 1 (Irwin–Hall CLT).
            let s: f64 = (0..12).map(|_| next()).sum::<f64>() - 6.0;
            s as f32
        };
        let fns: Vec<Vec<HashFn>> = (0..config.tables)
            .map(|_| {
                (0..config.hashes_per_table)
                    .map(|_| HashFn {
                        a: Vec3::new(gauss(), gauss(), gauss()),
                        b: (gauss().abs() % 1.0) * config.width,
                    })
                    .collect()
            })
            .collect();

        let mut tables: Vec<HashMap<u64, Vec<ElementId>>> =
            (0..config.tables).map(|_| HashMap::new()).collect();
        let mut boxes = SoaAabbs::with_capacity(elements.len());
        for e in elements {
            let c = e.center();
            for (t, table_fns) in fns.iter().enumerate() {
                let key = mix_key(table_fns.iter().map(|f| f.eval(&c, config.width)));
                tables[t].entry(key).or_default().push(e.id);
            }
            boxes.push(e.aabb(), e.id);
        }
        Self {
            config,
            fns,
            tables,
            boxes,
            len: elements.len(),
        }
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate memory footprint.
    pub fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>() + self.boxes.memory_bytes();
        for t in &self.tables {
            total += t.len() * (8 + std::mem::size_of::<Vec<ElementId>>());
            for v in t.values() {
                total += v.capacity() * std::mem::size_of::<ElementId>();
            }
        }
        total
    }

    /// Collects candidate ids for a query point into `scratch.candidates`:
    /// own bucket plus ±1 multiprobe perturbations in every table,
    /// deduplicated through the generation-stamped visited table (no
    /// sort + dedup pass, no per-query candidate vector).
    fn candidates_into(&self, p: &Point3, scratch: &mut QueryScratch) {
        let w = self.config.width;
        scratch.candidates.clear();
        scratch.visited.begin(self.len);
        let QueryScratch {
            candidates,
            visited,
            ..
        } = scratch;
        let mut take = |ids: &[ElementId]| {
            for &id in ids {
                if visited.mark(id) {
                    candidates.push(id);
                }
            }
        };
        for (t, table_fns) in self.fns.iter().enumerate() {
            let base: [i32; 8] = {
                let mut b = [0i32; 8];
                for (j, f) in table_fns.iter().enumerate() {
                    b[j] = f.eval(p, w);
                }
                b
            };
            let m = table_fns.len();
            // Exact bucket.
            if let Some(ids) = self.tables[t].get(&mix_key(base[..m].iter().copied())) {
                take(ids);
            }
            // Multiprobe: one coordinate perturbed by ±1.
            for i in 0..m {
                for delta in [-1i32, 1] {
                    let probe =
                        base[..m]
                            .iter()
                            .enumerate()
                            .map(|(j, &h)| if j == i { h + delta } else { h });
                    if let Some(ids) = self.tables[t].get(&mix_key(probe)) {
                        take(ids);
                    }
                }
            }
        }
    }

    /// The seed implementation's scoring path, kept as the reference for
    /// differential tests and the `query_engine` bench: every surfaced
    /// candidate pays the exact element-surface distance; results are the
    /// `k` best by `(distance, id)`.
    ///
    /// Compiled only for tests and under the `reference` feature.
    #[cfg(any(test, feature = "reference"))]
    pub fn knn_scalar_reference(
        &self,
        data: &[Element],
        p: &Point3,
        k: usize,
    ) -> Vec<(ElementId, f32)> {
        use simspatial_geom::scratch::with_scratch;
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(ElementId, f32)> = with_scratch(|scratch| {
            self.candidates_into(p, scratch);
            if scratch.candidates.len() < k {
                scratch.candidates.clear();
                scratch.candidates.extend(0..self.len as ElementId);
            }
            scratch
                .candidates
                .iter()
                .map(|&id| (id, predicates::element_distance(&data[id as usize], p)))
                .collect()
        });
        let k = k.min(scored.len());
        scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

impl KnnIndex for Lsh {
    /// Batched candidate scoring with deferred refinement: one
    /// gather-addressed [`SoaAabbs::min_dist2_gather_into`] pass computes a
    /// box lower bound per surfaced candidate; the exact element-surface
    /// distance is then paid only by candidates whose bound can still beat
    /// the current k-th best. Same results as the seed scoring path
    /// (`knn_scalar_reference`), fewer exact geometry tests. Candidate
    /// list, lower bounds and the best-k heap all live in the caller's
    /// scratch — no allocation per probe.
    fn knn_into(
        &self,
        data: &[Element],
        p: &Point3,
        k: usize,
        scratch: &mut QueryScratch,
        sink: &mut dyn KnnSink,
    ) {
        if k == 0 || self.len == 0 {
            return;
        }
        self.candidates_into(p, scratch);
        if scratch.candidates.len() < k {
            // Too few candidates surfaced: fall back to scoring
            // everything (keeps the result total).
            scratch.candidates.clear();
            scratch.candidates.extend(0..self.len as ElementId);
        }
        let QueryScratch {
            candidates,
            dists,
            knn_best,
            ..
        } = scratch;
        self.boxes.min_dist2_gather_into(p, candidates, dists);
        stats::record_lower_bound_evals(candidates.len() as u64);
        let mut best = KnnHeap::new(knn_best, k);
        for (i, &id) in candidates.iter().enumerate() {
            let w = best.worst();
            // The build-time box contains the element surface, so
            // lb ≤ exact distance: a bound past the k-th best
            // cannot enter the result.
            if best.is_full() && dists[i] > w * w {
                continue;
            }
            let d = predicates::element_distance(&data[id as usize], p);
            best.consider(id, d);
        }
        best.emit(sink);
    }
}

/// Mixes an integer hash vector into one 64-bit bucket key (FxHash-style).
fn mix_key(values: impl Iterator<Item = i32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        h ^= v as u32 as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= h >> 29;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearScan;
    use simspatial_geom::{Shape, Sphere};

    fn scattered(n: u32) -> Vec<Element> {
        (0..n)
            .map(|i| {
                let h = i.wrapping_mul(2654435761);
                let x = (h % 997) as f32 / 10.0;
                let y = ((h >> 10) % 997) as f32 / 10.0;
                let z = ((h >> 20) % 997) as f32 / 10.0;
                Element::new(i, Shape::Sphere(Sphere::new(Point3::new(x, y, z), 0.2)))
            })
            .collect()
    }

    #[test]
    fn returns_k_results() {
        let data = scattered(2000);
        let lsh = Lsh::build(&data, LshConfig::auto(&data));
        let res = lsh.knn(&data, &Point3::new(50.0, 50.0, 50.0), 10);
        assert_eq!(res.len(), 10);
        // Sorted ascending.
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn recall_is_reasonable() {
        let data = scattered(3000);
        let lsh = Lsh::build(&data, LshConfig::auto(&data));
        let scan = LinearScan::build(&data);
        let mut hits = 0usize;
        let mut total = 0usize;
        for i in 0..20 {
            let p = Point3::new((i * 5) as f32, (i * 4) as f32, (i * 3) as f32);
            let approx: std::collections::HashSet<ElementId> = lsh
                .knn(&data, &p, 10)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            for (id, _) in scan.knn(&data, &p, 10) {
                total += 1;
                if approx.contains(&id) {
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.7, "recall too low: {recall}");
    }

    #[test]
    fn tiny_dataset_falls_back() {
        let data = scattered(5);
        let lsh = Lsh::build(&data, LshConfig::default());
        let res = lsh.knn(&data, &Point3::ORIGIN, 5);
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn deterministic() {
        let data = scattered(500);
        let a = Lsh::build(&data, LshConfig::auto(&data));
        let b = Lsh::build(&data, LshConfig::auto(&data));
        let p = Point3::new(30.0, 30.0, 30.0);
        assert_eq!(a.knn(&data, &p, 5), b.knn(&data, &p, 5));
    }

    #[test]
    fn empty() {
        let lsh = Lsh::build(&[], LshConfig::default());
        assert!(lsh.is_empty());
        assert!(lsh.knn(&[], &Point3::ORIGIN, 3).is_empty());
    }
}
